"""Command-line utilities over spio datasets.

Nine subcommands, mirroring what a user pokes at day to day::

    python -m repro.cli info <dataset-dir>
        Manifest, LOD parameters, per-file table.

    python -m repro.cli query <dataset-dir> --box x0 y0 z0 x1 y1 z1 [--level L]
                                            [--attrs a,b] [--where ATTR:LO:HI]
        Spatial query: particles matched, files touched.  On columnar (v4)
        data ``--attrs`` reads only the named column segments and
        ``--where`` pushes a range predicate down to chunk pruning.

    python -m repro.cli write <dataset-dir> --ranks 16 --particles 4096 ...
        Generate and write a synthetic dataset (simulated MPI in-process).

    python -m repro.cli scrub <dataset-dir>
        Verify every checksum/header/count invariant; exit 1 on damage.

    python -m repro.cli repair <dataset-dir> [--dry-run] [--workers N]
        Scrub, then fix what the scrub found: rebuild ``spatial.meta`` /
        ``manifest.json`` from the v3 recovery trailers, truncate torn data
        files to their longest checksum-verified LOD prefix, quarantine the
        unrecoverable rest.  Detects a series root (``series.json``) and
        repairs every indexed timestep.  ``--dry-run`` prints the plan
        without writing a byte.

    python -m repro.cli compact <dataset-dir> [--dry-run] [--workers N]
        Merge a generation chain's many small per-step files into
        consolidated chunk-indexed ones as a new generation, then drop
        generations beyond the retention window (``--keep``, default 2).
        Readers pinned to a retained generation are unaffected.

    python -m repro.cli serve <dataset-dir> --clients 4 --queries 8 ...
        Closed-loop serving demo: start a QueryService over the dataset,
        drive N client threads issuing seeded random box queries through
        the admission/batching pipeline, and print throughput, latency
        percentiles, batch widths, and backend ops saved by cross-query
        staging.  Exits 0 after a clean shutdown.

    python -m repro.cli estimate --machine Theta --procs 262144 ...
        Performance-model estimate for a write at HPC scale.

    python -m repro.cli trace <dataset-dir> [--out trace.json] ...
        Run an instrumented read (or, on an empty directory, a synthetic
        write) and export the merged recorder as a Chrome trace or JSONL.

Exit-code contract (``scrub`` and ``repair``, asserted by the test suite):

* **0** — the dataset verifies clean (scrub), or repair converged without
  losing a particle;
* **1** — damage was found (scrub, or ``repair --dry-run``), or repair had
  to cost data to converge (truncation/quarantine) or could not converge;
* **2** — operational error: the target is not a dataset, arguments are
  invalid, the backend failed — any :class:`~repro.errors.ReproError`,
  which surfaces as a one-line message on stderr.  Tracebacks are reserved
  for actual bugs.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.utils.tables import Table
from repro.utils.units import GB, format_bytes, format_seconds


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.dataset import Dataset

    ds = Dataset.open(args.dataset)
    m = ds.manifest
    print(f"dataset         : {args.dataset}")
    print(f"particles       : {ds.total_particles}")
    print(f"files           : {ds.num_files}")
    print(f"dtype           : {m.dtype}")
    print(f"LOD             : P={m.lod_base} S={m.lod_scale} "
          f"heuristic={m.lod_heuristic}")
    generations = ds.generations()
    if ds.generation > 0 or len(generations) > 1:
        print(f"generation      : {ds.generation} "
              f"(on disk: {', '.join(map(str, generations))})")
    print(f"domain          : {ds.domain()}")
    if ds.metadata.attr_names:
        print(f"indexed attrs   : {', '.join(ds.metadata.attr_names)}")
    for gen in generations or [ds.generation]:
        gds = ds if gen == ds.generation else ds.at_generation(gen)
        cfg = gds.manifest.writer.get("config", {}) or {}
        layout = str(cfg.get("layout", "row"))
        codecs = sorted(
            {
                str(entry.get("codec"))
                for entry in gds.manifest.checksums.values()
                if isinstance(entry, dict) and entry.get("codec") is not None
            }
        )
        version = "v4 (columnar)" if codecs else "v3 (row)"
        line = f"generation {gen:>4}  : format {version}, layout {layout}"
        if codecs:
            line += f", codecs {', '.join(codecs)}"
        print(line)
    table = Table(["box id", "agg rank", "file", "particles", "lo", "hi"])
    for rec in ds.metadata:
        table.add_row(
            [
                rec.box_id,
                rec.agg_rank,
                rec.file_path,
                rec.particle_count,
                "[" + ", ".join(f"{v:.3g}" for v in rec.bounds.lo) + "]",
                "[" + ", ".join(f"{v:.3g}" for v in rec.bounds.hi) + "]",
            ]
        )
    print(table)
    return 0


def _remote_target(args: argparse.Namespace):
    """Build the ``--remote`` read stack over the dataset directory.

    The local directory plays the object store; a simulated transport adds
    RTT/bandwidth/cost physics on top (``--rtt-ms``), and the resilient
    stack (retry, hedging, circuit breaker, RAM cache) wraps it.  Returns
    ``(open_target, transport)`` — the transport is kept so commands can
    print the request/cost ledger afterwards.
    """
    from repro.io.posix import PosixBackend
    from repro.io.remote import OutagePlan, SimulatedTransport
    from repro.io.resilience import Hedger, build_remote_stack
    from repro.io.retry import RetryPolicy

    store = PosixBackend(args.dataset, create=False)
    down = getattr(args, "outage", None)
    slow = getattr(args, "slow", None)
    outages = None
    if down or slow:
        outages = OutagePlan(
            down=((int(down[0]), int(down[1])),) if down else (),
            slow=(
                ((int(slow[0]), int(slow[1]), float(slow[2])),) if slow else ()
            ),
        )
    transport = SimulatedTransport(
        store,
        rtt_s=args.rtt_ms / 1000.0,
        seed=getattr(args, "seed", 0),
        outages=outages,
    )
    cache_bytes = int(args.cache_mb * 2**20)
    stack = build_remote_stack(
        transport,
        ram_cache_bytes=cache_bytes if cache_bytes else 8 << 20,
        disk_cache_dir=None,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.001),
        hedger=Hedger(),
    )
    return stack, transport


def _print_remote_stats(transport) -> None:
    stats = transport.stats
    print(f"remote requests : {stats.requests} "
          f"({stats.timeouts} timeouts, {stats.unavailable} refused)")
    print(f"remote bytes    : {format_bytes(stats.bytes_moved)}")
    print(f"remote cost     : ${stats.cost:.6f}")
    print(f"remote time     : {transport.virtual_time_s * 1e3:.1f} ms simulated")


def _executor(args: argparse.Namespace):
    """The executor the ``--workers`` / ``--process-pool`` flags select."""
    from repro.io.executor import executor_for

    mode = "process" if getattr(args, "process_pool", False) else "thread"
    return executor_for(args.workers, mode=mode)


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.dataset import Dataset
    from repro.domain.box import Box
    from repro.io.resilience import Deadline, deadline_scope

    transport = None
    if args.remote:
        target, transport = _remote_target(args)
        cache_bytes = 0  # the remote stack carries its own RAM tier
    else:
        target, cache_bytes = args.dataset, int(args.cache_mb * 2**20)
    reader = Dataset.open(
        target,
        executor=_executor(args),
        cache_bytes=cache_bytes,
    ).reader()
    box = Box(args.box[:3], args.box[3:])
    attrs = None
    if args.attrs is not None:
        attrs = [a.strip() for a in args.attrs.split(",") if a.strip()]
    where = {}
    for clause in args.where or []:
        parts = clause.split(":")
        if len(parts) != 3:
            print(f"error: --where expects ATTR:LO:HI, got {clause!r}",
                  file=sys.stderr)
            return 2
        try:
            where[parts[0]] = (float(parts[1]), float(parts[2]))
        except ValueError:
            print(f"error: --where bounds must be numbers, got {clause!r}",
                  file=sys.stderr)
            return 2
    deadline = (
        Deadline.after(args.deadline_ms / 1000.0)
        if args.deadline_ms is not None
        else None
    )
    with deadline_scope(deadline):
        plan = reader.plan_box_read(
            box, max_level=args.level, nreaders=args.readers,
            attrs=attrs, where=where or None,
        )
        hits = reader.execute(plan, exact=True)
    print(f"query box       : {box}")
    if plan.attrs is not None:
        print(f"projection      : position, {', '.join(plan.attrs)}"
              if plan.attrs else "projection      : position")
    for name, (lo, hi) in plan.where.items():
        print(f"pushdown        : {name} in [{lo:g}, {hi:g}]")
    print(f"files touched   : {plan.num_files} / {reader.num_files}")
    print(f"particles read  : {plan.total_particles}")
    if plan.chunk_runs:
        print(f"chunk-pruned to : {plan.pruned_particles} particles")
    print(f"particles in box: {len(hits)}")
    row_bytes = plan.result_dtype(reader.dtype).itemsize
    print(f"bytes read      : {format_bytes(plan.bytes_to_read(row_bytes))}")
    if transport is not None:
        _print_remote_stats(transport)
    return 0


def _cmd_write(args: argparse.Namespace) -> int:
    from repro.core import SpatialWriter, WriterConfig
    from repro.domain.box import Box
    from repro.domain.decomposition import PatchDecomposition
    from repro.io.posix import PosixBackend
    from repro.mpi import run_mpi
    from repro.workloads import UintahWorkload

    domain = Box([0, 0, 0], [1, 1, 1])
    decomp = PatchDecomposition.for_nprocs(domain, args.ranks)
    workload = UintahWorkload(
        decomp,
        particles_per_core=args.particles,
        distribution=args.distribution,
        seed=args.seed,
    )
    config = WriterConfig(
        partition_factor=tuple(args.factor),
        adaptive=args.adaptive,
        layout=args.layout,
        codec=args.codec,
    )
    backend = PosixBackend(args.dataset)
    writer = SpatialWriter(config)

    results = run_mpi(
        args.ranks,
        lambda comm: writer.write(
            comm, workload.generate_rank(comm.rank), decomp, backend
        ),
    )
    files = sum(len(r.files_written) for r in results)
    total = sum(r.bytes_written for r in results)
    print(
        f"wrote {files} files ({format_bytes(total)}) from {args.ranks} "
        f"simulated ranks into {args.dataset}"
    )
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.dataset import Dataset

    ds = Dataset(args.dataset, executor=_executor(args))
    report = ds.scrub()
    for line in report.summary_lines():
        print(line)
    return 0 if report.ok else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.dataset import Dataset
    from repro.series.index import SERIES_INDEX_PATH

    ds = Dataset(args.dataset, executor=_executor(args))
    if ds.backend.exists(SERIES_INDEX_PATH):
        from repro.core.repair import repair_series

        report = repair_series(ds, dry_run=args.dry_run)
    else:
        report = ds.repair(dry_run=args.dry_run)
    for line in report.summary_lines():
        print(line)
    return report.exit_code


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.core.compact import compact_dataset
    from repro.dataset import Dataset

    ds = Dataset(args.dataset, executor=_executor(args))
    report = compact_dataset(
        ds,
        target_files=args.target_files,
        keep=args.keep,
        gc=not args.no_gc,
        dry_run=args.dry_run,
    )
    for line in report.summary_lines():
        print(line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    import numpy as np

    from repro.dataset import Dataset
    from repro.domain.box import Box
    from repro.errors import AdmissionError, DeadlineExceededError
    from repro.serve import ClientQuota, QueryService

    transport = None
    if args.remote:
        target, transport = _remote_target(args)
        cache_bytes = 0  # the remote stack carries its own RAM tier
    else:
        target, cache_bytes = args.dataset, int(args.cache_mb * 2**20)
    ds = Dataset.open(
        target,
        strict=not args.degraded,
        executor=_executor(args),
        cache_bytes=cache_bytes,
    )
    domain = ds.domain()
    lo = np.asarray(domain.lo, dtype=np.float64)
    hi = np.asarray(domain.hi, dtype=np.float64)
    span = hi - lo

    results: dict[str, int] = {
        "queries": 0, "particles": 0, "rejected": 0, "deadline": 0,
    }
    results_lock = threading.Lock()
    deadline_s = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
    )

    def client_loop(service: QueryService, name: str, seed: int) -> None:
        rng = np.random.default_rng(seed)
        done = 0
        while done < args.queries:
            blo = lo + rng.uniform(0.0, 0.6, lo.shape) * span
            bhi = np.minimum(blo + rng.uniform(0.2, 0.5, lo.shape) * span, hi)
            try:
                result = service.query(
                    Box(blo, bhi), client=name, deadline_s=deadline_s
                )
            except AdmissionError:
                with results_lock:
                    results["rejected"] += 1
                continue
            except DeadlineExceededError:
                done += 1
                with results_lock:
                    results["deadline"] += 1
                continue
            done += 1
            with results_lock:
                results["queries"] += 1
                results["particles"] += len(result.batch)

    quota = ClientQuota(
        max_inflight=args.max_inflight if args.max_inflight > 0 else None
    )
    with QueryService(
        ds,
        max_workers=args.workers,
        batch_window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        quota=quota,
    ) as service:
        threads = [
            threading.Thread(
                target=client_loop,
                args=(service, f"client-{i}", args.seed + i),
                name=f"serve-client-{i}",
            )
            for i in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close(drain_timeout=30.0)
        stats = service.stats()
    print(f"dataset         : {args.dataset}")
    print(f"clients         : {args.clients} x {args.queries} queries")
    print(f"queries served  : {results['queries']}")
    print(f"particles       : {results['particles']}")
    print(f"rejections      : {results['rejected']} (admission retried)")
    if args.deadline_ms is not None:
        print(f"deadline misses : {results['deadline']}")
    if stats["cancelled"]:
        print(f"cancelled       : {stats['cancelled']} (drain timeout)")
    print(f"batches         : {stats['batches']} "
          f"(mean width {stats['mean_batch_width']:.2f})")
    print(f"staged files    : {stats['staged_files']}")
    print(f"backend ops saved: {stats['ops_saved']}")
    print(f"p50 latency     : {stats['p50_latency_s'] * 1e3:.2f} ms")
    print(f"p99 latency     : {stats['p99_latency_s'] * 1e3:.2f} ms")
    for client, nbytes in sorted(stats["client_bytes"].items()):
        print(f"bytes[{client}] : {format_bytes(nbytes)}")
    if transport is not None:
        _print_remote_stats(transport)
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.perf import MACHINES, simulate_baseline_write, simulate_write

    machine = MACHINES.get(args.machine)
    if machine is None:
        print(f"unknown machine {args.machine!r}; known: {sorted(MACHINES)}",
              file=sys.stderr)
        return 2
    if args.strategy in ("ior-fpp", "ior-shared", "phdf5"):
        est = simulate_baseline_write(machine, args.procs, args.particles, args.strategy)
    else:
        factor = tuple(int(v) for v in args.strategy.split("x"))
        est = simulate_write(machine, args.procs, args.particles, factor)  # type: ignore[arg-type]
    print(f"machine         : {est.machine}")
    print(f"strategy        : {est.strategy}")
    print(f"processes       : {est.nprocs}")
    print(f"files           : {est.n_files}")
    print(f"data            : {format_bytes(est.total_bytes)}")
    print(f"aggregation     : {format_seconds(est.aggregation_time)}")
    print(f"file I/O        : {format_seconds(est.io_time)}")
    print(f"total           : {format_seconds(est.total_time)}")
    print(f"throughput      : {est.throughput / GB:.2f} GB/s")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.format.manifest import MANIFEST_PATH
    from repro.io.posix import PosixBackend
    from repro.obs import (
        Recorder,
        summary_lines,
        write_chrome_trace,
        write_jsonl,
    )

    backend = PosixBackend(args.dataset)
    io_recorder = Recorder(rank=-1)
    backend.attach_recorder(io_recorder)

    if backend.exists(MANIFEST_PATH):
        # Existing dataset: trace a full instrumented read.
        from repro.dataset import Dataset
        from repro.domain.box import Box

        ds = Dataset(
            backend,
            strict=False,
            executor=_executor(args),
            cache_bytes=int(args.cache_mb * 2**20),
        )
        # Re-attach through the facade's backend so a cache wrapper's
        # cache.* counters land in the trace alongside the io.* ones.
        ds.backend.attach_recorder(io_recorder)
        reader = ds.reader()
        if args.box is not None:
            box = Box(args.box[:3], args.box[3:])
            plan = reader.plan_box_read(box, max_level=args.level)
        else:
            plan = reader.plan_full_read(max_level=args.level)
        batch = reader.execute(plan)
        merged = Recorder.merged([reader.recorder, io_recorder])
        report = reader.last_report
        print(f"traced read     : {len(batch)} particles from "
              f"{plan.num_files} files")
        if report is not None and not report.complete:
            print(f"degraded        : {report.partitions_skipped} "
                  f"partitions skipped")
    else:
        # Empty target: trace a synthetic collective write.
        from repro.core import SpatialWriter, WriterConfig
        from repro.domain.box import Box
        from repro.domain.decomposition import PatchDecomposition
        from repro.mpi import run_mpi
        from repro.mpi.world import World
        from repro.workloads import UintahWorkload

        domain = Box([0, 0, 0], [1, 1, 1])
        decomp = PatchDecomposition.for_nprocs(domain, args.ranks)
        workload = UintahWorkload(
            decomp, particles_per_core=args.particles, seed=args.seed
        )
        writer = SpatialWriter(WriterConfig(partition_factor=tuple(args.factor)))
        world = World(args.ranks)
        results = run_mpi(
            args.ranks,
            lambda comm: writer.write(
                comm, workload.generate_rank(comm.rank), decomp, backend
            ),
            world=world,
        )
        merged = Recorder.merged(
            [r.recorder for r in results] + [world.recorder, io_recorder]
        )
        files = sum(len(r.files_written) for r in results)
        print(f"traced write    : {files} files from {args.ranks} "
              f"simulated ranks")

    out = args.out
    if out is None:
        suffix = "jsonl" if args.format == "jsonl" else "json"
        out = os.path.join(args.dataset, f"trace.{suffix}")
    if args.format == "jsonl":
        write_jsonl(merged, out)
    else:
        write_chrome_trace(merged, out)
    print(f"trace written   : {out} ({args.format})")
    for line in summary_lines(merged):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Spatially-aware particle I/O utilities (ICPP 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="describe a dataset")
    p.add_argument("dataset")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("query", help="spatial box query")
    p.add_argument("dataset")
    p.add_argument("--box", nargs=6, type=float, required=True,
                   metavar=("X0", "Y0", "Z0", "X1", "Y1", "Z1"))
    p.add_argument("--level", type=int, default=None, help="max LOD level")
    p.add_argument("--readers", type=int, default=1)
    p.add_argument("--attrs", default=None,
                   help="comma-separated attributes to read (columnar "
                        "projection; position always included)")
    p.add_argument("--where", action="append", default=None,
                   metavar="ATTR:LO:HI",
                   help="attribute range predicate, pushed down to "
                        "chunk pruning (repeatable)")
    p.add_argument("--cache-mb", type=float, default=0.0,
                   help="block-cache budget in MiB (0 disables caching)")
    p.add_argument("--remote", action="store_true",
                   help="read through a simulated remote object store "
                        "(resilient stack: retry, hedge, breaker, cache)")
    p.add_argument("--rtt-ms", type=float, default=50.0,
                   help="simulated remote round-trip time (with --remote)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="end-to-end query deadline in milliseconds")
    p.add_argument("--outage", nargs=2, type=int, default=None,
                   metavar=("START", "STOP"),
                   help="refuse remote requests with ordinals in "
                        "[START, STOP) (with --remote)")
    p.add_argument("--slow", nargs=3, type=float, default=None,
                   metavar=("START", "STOP", "FACTOR"),
                   help="inflate remote latency by FACTOR for request "
                        "ordinals in [START, STOP) (with --remote)")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent per-file reads (1 = serial)")
    p.add_argument("--process-pool", action="store_true",
                   help="run CRC+decode in worker processes instead of "
                        "threads (escapes the GIL; needs --workers > 1)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("write", help="write a synthetic dataset")
    p.add_argument("dataset")
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--particles", type=int, default=4096)
    p.add_argument("--factor", nargs=3, type=int, default=[2, 2, 2])
    p.add_argument("--distribution", default="uniform",
                   choices=["uniform", "clustered", "jet"])
    p.add_argument("--adaptive", action="store_true")
    p.add_argument("--layout", default="row", choices=["row", "columnar"],
                   help="payload layout: row (v3) or columnar (v4)")
    p.add_argument("--codec", default="none",
                   help="columnar per-segment codec (none, shuffle-zlib, "
                        "shuffle-lz4 when available)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_write)

    p = sub.add_parser("scrub", help="verify a dataset's integrity invariants")
    p.add_argument("dataset")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent per-file verification (1 = serial)")
    p.add_argument("--process-pool", action="store_true",
                   help="verify in worker processes instead of threads")
    p.set_defaults(func=_cmd_scrub)

    p = sub.add_parser(
        "repair",
        help="repair a damaged dataset (or series) from its recovery trailers",
    )
    p.add_argument("dataset")
    p.add_argument("--dry-run", action="store_true",
                   help="print the repair plan without writing anything")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent per-file repair work (1 = serial)")
    p.add_argument("--process-pool", action="store_true",
                   help="repair in worker processes instead of threads")
    p.set_defaults(func=_cmd_repair)

    p = sub.add_parser(
        "compact",
        help="merge a generation chain's small files into consolidated ones",
    )
    p.add_argument("dataset")
    p.add_argument("--dry-run", action="store_true",
                   help="print the compaction plan without writing anything")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent read work during the merge (1 = serial)")
    p.add_argument("--process-pool", action="store_true",
                   help="read in worker processes instead of threads")
    p.add_argument("--target-files", type=int, default=None,
                   help="consolidated file count (default: files/8, min 1)")
    p.add_argument("--keep", type=int, default=2,
                   help="generations retained for pinned readers (default 2)")
    p.add_argument("--no-gc", action="store_true",
                   help="skip the retention pass; old generations stay")
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser(
        "serve",
        help="closed-loop multi-client serving demo over a dataset",
    )
    p.add_argument("dataset")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent client threads (default 4)")
    p.add_argument("--queries", type=int, default=8,
                   help="queries issued per client (default 8)")
    p.add_argument("--window-ms", type=float, default=5.0,
                   help="batching window in milliseconds (default 5)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="max queries coalesced per batch (default 16)")
    p.add_argument("--max-inflight", type=int, default=0,
                   help="per-client inflight quota (0 = unlimited)")
    p.add_argument("--workers", type=int, default=4,
                   help="service worker threads (default 4)")
    p.add_argument("--process-pool", action="store_true",
                   help="per-file reads in worker processes instead of "
                        "threads")
    p.add_argument("--cache-mb", type=float, default=0.0,
                   help="shared block-cache budget in MiB (0 disables)")
    p.add_argument("--remote", action="store_true",
                   help="serve through a simulated remote object store "
                        "(resilient stack: retry, hedge, breaker, cache)")
    p.add_argument("--rtt-ms", type=float, default=50.0,
                   help="simulated remote round-trip time (with --remote)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-query end-to-end deadline in milliseconds")
    p.add_argument("--outage", nargs=2, type=int, default=None,
                   metavar=("START", "STOP"),
                   help="refuse remote requests with ordinals in "
                        "[START, STOP) (with --remote)")
    p.add_argument("--slow", nargs=3, type=float, default=None,
                   metavar=("START", "STOP", "FACTOR"),
                   help="inflate remote latency by FACTOR for request "
                        "ordinals in [START, STOP) (with --remote)")
    p.add_argument("--degraded", action="store_true",
                   help="serve degraded reads (skip damaged partitions)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed for the clients' query streams")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("estimate", help="performance-model write estimate")
    p.add_argument("--machine", default="Theta")
    p.add_argument("--procs", type=int, default=262_144)
    p.add_argument("--particles", type=int, default=32_768)
    p.add_argument("--strategy", default="1x2x2",
                   help="PxQxR partition factor or ior-fpp/ior-shared/phdf5")
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser(
        "trace",
        help="run an instrumented read (or synthetic write) and export a trace",
    )
    p.add_argument("dataset")
    p.add_argument("--out", default=None,
                   help="output path (default <dataset>/trace.json[l])")
    p.add_argument("--format", choices=["chrome", "jsonl"], default="chrome")
    p.add_argument("--box", nargs=6, type=float, default=None,
                   metavar=("X0", "Y0", "Z0", "X1", "Y1", "Z1"),
                   help="trace a box query instead of a full read")
    p.add_argument("--level", type=int, default=None, help="max LOD level")
    p.add_argument("--cache-mb", type=float, default=0.0,
                   help="block-cache budget in MiB (0 disables caching)")
    p.add_argument("--ranks", type=int, default=8,
                   help="synthetic-write mode: simulated ranks")
    p.add_argument("--particles", type=int, default=4096,
                   help="synthetic-write mode: particles per rank")
    p.add_argument("--factor", nargs=3, type=int, default=[2, 2, 2],
                   help="synthetic-write mode: partition factor")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="read mode: concurrent per-file reads (1 = serial)")
    p.add_argument("--process-pool", action="store_true",
                   help="read mode: worker processes instead of threads")
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
