"""Geometry substrate: axis-aligned boxes, grids, and domain decompositions."""

from repro.domain.box import Box
from repro.domain.grid import CellGrid
from repro.domain.decomposition import PatchDecomposition, factor_into_grid

__all__ = ["Box", "CellGrid", "PatchDecomposition", "factor_into_grid"]
