"""Regular rectilinear cell grids over a domain box.

A :class:`CellGrid` partitions a :class:`~repro.domain.box.Box` into
``dims = (nx, ny, nz)`` equal axis-aligned cells.  Both the simulation's
patch decomposition and the paper's *aggregation-grid* are cell grids; the
aggregation-grid's cells are the *aggregation partitions*.

Cell assignment is computed by index arithmetic
(``floor((x - lo) / cell_extent)`` with clipping), not by per-box membership
tests, so points exactly on interior faces go to exactly one cell and points
on the domain's closing face land in the last cell instead of escaping.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.domain.box import Box
from repro.errors import DomainError


class CellGrid:
    """``dims``-celled regular grid over ``domain``; cells indexed (i, j, k)."""

    __slots__ = ("domain", "dims", "cell_extent", "_axis_faces")

    def __init__(self, domain: Box, dims: Sequence[int]):
        dims_arr = tuple(int(d) for d in dims)
        if len(dims_arr) != 3 or any(d < 1 for d in dims_arr):
            raise DomainError(f"grid dims must be three positive ints, got {dims!r}")
        if domain.is_empty():
            raise DomainError(f"grid domain must have positive volume, got {domain}")
        self.domain = domain
        self.dims = dims_arr
        self.cell_extent = domain.extent / np.asarray(dims_arr, dtype=np.float64)
        # Interior face coordinates per axis, computed with the *same*
        # arithmetic as cell_box corners (lo + (i/dims) * extent), so point
        # assignment and box membership agree to the last ulp.
        self._axis_faces = tuple(
            domain.lo[a]
            + (np.arange(1, dims_arr[a], dtype=np.float64) / dims_arr[a])
            * domain.extent[a]
            for a in range(3)
        )

    # -- sizes ------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        nx, ny, nz = self.dims
        return nx * ny * nz

    def __len__(self) -> int:
        return self.num_cells

    # -- index arithmetic ----------------------------------------------------------

    def cell_of_points(self, points: np.ndarray) -> np.ndarray:
        """(N, 3) integer cell index of each point, clipped into the grid.

        Points must lie inside the (closed) domain; anything outside raises,
        because an I/O layer must never silently misfile data.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise DomainError(f"points must be (N, 3), got {points.shape}")
        if len(points):
            inside = self.domain.contains_points(points, closed=True)
            if not inside.all():
                bad = points[~inside][0]
                raise DomainError(
                    f"{int((~inside).sum())} point(s) outside grid domain "
                    f"{self.domain}; first: {bad}"
                )
        # searchsorted against the exact cell-face coordinates: a point on an
        # interior face goes to the upper cell (half-open), and a point on
        # the domain's closing face lands in the last cell.
        idx = np.empty((len(points), 3), dtype=np.int64)
        for a in range(3):
            idx[:, a] = np.searchsorted(self._axis_faces[a], points[:, a], side="right")
        return idx

    def flat_cell_of_points(self, points: np.ndarray) -> np.ndarray:
        """Flattened (x-major) cell id of each point."""
        return self.flatten_index(self.cell_of_points(points))

    def flatten_index(self, ijk: np.ndarray) -> np.ndarray:
        """Map (…, 3) integer indices to flat ids: ``i + nx*(j + ny*k)``.

        x-fastest ordering matches the paper's file-count formula
        ``f = (nx/Px) * (ny/Py) * (nz/Pz)`` walking x, then y, then z.
        """
        ijk = np.asarray(ijk)
        nx, ny, _nz = self.dims
        return ijk[..., 0] + nx * (ijk[..., 1] + ny * ijk[..., 2])

    def unflatten_index(self, flat: int) -> tuple[int, int, int]:
        nx, ny, nz = self.dims
        if not 0 <= flat < self.num_cells:
            raise DomainError(f"flat cell id {flat} out of range ({self.num_cells} cells)")
        i = flat % nx
        j = (flat // nx) % ny
        k = flat // (nx * ny)
        return (int(i), int(j), int(k))

    # -- geometry ----------------------------------------------------------------

    def cell_box(self, ijk: Sequence[int]) -> Box:
        """The axis-aligned box of cell (i, j, k).

        Corners are computed from the domain edges (not accumulated cell
        extents) so adjacent cells share bit-identical faces and the last
        cell's top face is exactly the domain's.
        """
        i, j, k = (int(v) for v in ijk)
        dims = self.dims
        if not (0 <= i < dims[0] and 0 <= j < dims[1] and 0 <= k < dims[2]):
            raise DomainError(f"cell index {(i, j, k)} out of range for dims {dims}")
        frac_lo = np.array([i, j, k], dtype=np.float64) / dims
        frac_hi = np.array([i + 1, j + 1, k + 1], dtype=np.float64) / dims
        lo = self.domain.lo + frac_lo * self.domain.extent
        hi = self.domain.lo + frac_hi * self.domain.extent
        return Box(lo, hi)

    def cell_box_flat(self, flat: int) -> Box:
        return self.cell_box(self.unflatten_index(flat))

    def boxes(self) -> list[Box]:
        """All cell boxes in flat order."""
        return [self.cell_box_flat(f) for f in range(self.num_cells)]

    def iter_cells(self) -> Iterator[tuple[tuple[int, int, int], Box]]:
        for flat in range(self.num_cells):
            ijk = self.unflatten_index(flat)
            yield ijk, self.cell_box(ijk)

    def cells_intersecting(self, box: Box) -> list[int]:
        """Flat ids of cells whose volume overlaps ``box`` (fast index math)."""
        lo_idx = np.floor(
            (np.maximum(box.lo, self.domain.lo) - self.domain.lo) / self.cell_extent
        ).astype(int)
        hi_idx = np.ceil(
            (np.minimum(box.hi, self.domain.hi) - self.domain.lo) / self.cell_extent
        ).astype(int)
        lo_idx = np.clip(lo_idx, 0, np.asarray(self.dims) - 1)
        hi_idx = np.clip(hi_idx, 1, self.dims)
        out: list[int] = []
        for k in range(lo_idx[2], hi_idx[2]):
            for j in range(lo_idx[1], hi_idx[1]):
                for i in range(lo_idx[0], hi_idx[0]):
                    if self.cell_box((i, j, k)).intersects(box):
                        out.append(int(self.flatten_index(np.array([i, j, k]))))
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellGrid):
            return NotImplemented
        return self.domain == other.domain and self.dims == other.dims

    def __hash__(self):
        return hash((self.domain, self.dims))

    def __repr__(self) -> str:
        return f"CellGrid(domain={self.domain}, dims={self.dims})"
