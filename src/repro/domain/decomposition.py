"""Simulation-side domain decomposition.

The paper's setting is a uniform-resolution simulation whose domain is split
into one equal patch per process, rank-ordered x-fastest.
:class:`PatchDecomposition` captures that: it is a
:class:`~repro.domain.grid.CellGrid` whose cell (i, j, k) is the patch of
rank ``flatten(i, j, k)``.  :func:`factor_into_grid` produces near-cubic
process grids for a given rank count, mirroring what MPI_Dims_create would
pick for the weak-scaling experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.domain.box import Box
from repro.domain.grid import CellGrid
from repro.errors import DomainError


def factor_into_grid(nprocs: int) -> tuple[int, int, int]:
    """Factor ``nprocs`` into a near-cubic (nx, ny, nz), nx >= ny >= nz.

    Greedy balanced factorization: repeatedly peel the largest prime factor
    onto the currently smallest axis.  For powers of two this reproduces the
    layouts the paper's experiments use (512 -> 8x8x8, 4096 -> 16x16x16,
    262144 -> 64x64x64).
    """
    if nprocs < 1:
        raise DomainError(f"nprocs must be >= 1, got {nprocs}")
    dims = [1, 1, 1]
    for p in _prime_factors_desc(nprocs):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))  # type: ignore[return-value]


def _prime_factors_desc(n: int) -> list[int]:
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return sorted(out, reverse=True)


class PatchDecomposition:
    """One equal axis-aligned patch per rank over a shared domain."""

    def __init__(self, domain: Box, proc_dims: Sequence[int]):
        self.grid = CellGrid(domain, proc_dims)

    @classmethod
    def for_nprocs(cls, domain: Box, nprocs: int) -> "PatchDecomposition":
        """Decomposition with an automatically factored process grid."""
        return cls(domain, factor_into_grid(nprocs))

    @property
    def domain(self) -> Box:
        return self.grid.domain

    @property
    def proc_dims(self) -> tuple[int, int, int]:
        return self.grid.dims

    @property
    def nprocs(self) -> int:
        return self.grid.num_cells

    def patch_of_rank(self, rank: int) -> Box:
        """The axis-aligned patch owned by ``rank``."""
        return self.grid.cell_box_flat(rank)

    def rank_of_cell(self, ijk: Sequence[int]) -> int:
        return int(self.grid.flatten_index(np.asarray(ijk)))

    def cell_of_rank(self, rank: int) -> tuple[int, int, int]:
        return self.grid.unflatten_index(rank)

    def all_patches(self) -> list[Box]:
        return self.grid.boxes()

    def ranks_intersecting(self, box: Box) -> list[int]:
        """Ranks whose patches overlap ``box`` — used by read-side planning."""
        return self.grid.cells_intersecting(box)

    def __repr__(self) -> str:
        return f"PatchDecomposition(domain={self.domain}, proc_dims={self.proc_dims})"
