"""Axis-aligned 3D boxes.

Boxes are the vocabulary of the whole system: per-process patches,
aggregation partitions, bounding boxes in the spatial metadata file, and
read-side box queries are all :class:`Box` instances.

Membership is half-open (``lo <= x < hi``) so that a set of boxes tiling a
domain partitions its particles exactly — no particle is counted twice on a
shared face, and none is lost, which is the conservation invariant the
aggregation pipeline is property-tested against.  The one place half-open
semantics would drop data is the domain's upper boundary; callers that need
it closed pass ``closed=True`` (readers do, when a query touches the domain
edge).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import DomainError


class Box:
    """An axis-aligned box ``[lo, hi)`` in 3D."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo_arr = np.asarray(lo, dtype=np.float64).reshape(-1)
        hi_arr = np.asarray(hi, dtype=np.float64).reshape(-1)
        if lo_arr.shape != (3,) or hi_arr.shape != (3,):
            raise DomainError(
                f"Box corners must be 3-vectors, got lo={lo_arr.shape}, hi={hi_arr.shape}"
            )
        if not np.all(np.isfinite(lo_arr)) or not np.all(np.isfinite(hi_arr)):
            raise DomainError(f"Box corners must be finite, got {lo_arr}, {hi_arr}")
        if np.any(hi_arr < lo_arr):
            raise DomainError(f"Box needs hi >= lo on every axis: lo={lo_arr}, hi={hi_arr}")
        lo_arr.setflags(write=False)
        hi_arr.setflags(write=False)
        self.lo = lo_arr
        self.hi = hi_arr

    # -- basic properties -----------------------------------------------------

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def volume(self) -> float:
        return float(np.prod(self.extent))

    def is_empty(self) -> bool:
        """True if the box has zero measure on any axis."""
        return bool(np.any(self.hi <= self.lo))

    # -- point membership -------------------------------------------------------

    def contains_points(self, points: np.ndarray, closed: bool = False) -> np.ndarray:
        """Boolean mask: which of the (N, 3) ``points`` lie inside.

        ``closed=False`` (default): ``lo <= x < hi`` — the tiling semantics.
        ``closed=True``: ``lo <= x <= hi`` — used by read-side queries so a
        query box touching the domain's top face still matches edge particles.
        """
        points = np.asarray(points)
        if points.ndim != 2 or points.shape[1] != 3:
            raise DomainError(f"points must be (N, 3), got {points.shape}")
        above = np.all(points >= self.lo, axis=1)
        if closed:
            below = np.all(points <= self.hi, axis=1)
        else:
            below = np.all(points < self.hi, axis=1)
        return above & below

    def contains_point(self, point: Sequence[float], closed: bool = False) -> bool:
        return bool(self.contains_points(np.asarray(point, dtype=float)[None, :], closed)[0])

    # -- box/box relations --------------------------------------------------------

    def intersects(self, other: "Box") -> bool:
        """True if the boxes share any volume (open intersection test).

        Boxes that only touch on a face do *not* intersect under half-open
        semantics, which is exactly what the metadata-driven reader needs:
        a query strictly inside one partition never drags in its neighbours.
        """
        return bool(np.all(self.lo < other.hi) and np.all(other.lo < self.hi))

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping box, or None when disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(hi <= lo):
            return None
        return Box(lo, hi)

    def contains_box(self, other: "Box") -> bool:
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def union(self, other: "Box") -> "Box":
        """Smallest box covering both."""
        return Box(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    @staticmethod
    def bounding(boxes: Iterable["Box"]) -> "Box":
        boxes = list(boxes)
        if not boxes:
            raise DomainError("Box.bounding() needs at least one box")
        lo = np.min([b.lo for b in boxes], axis=0)
        hi = np.max([b.hi for b in boxes], axis=0)
        return Box(lo, hi)

    def expanded(self, margin: float) -> "Box":
        """Box grown by ``margin`` on every face (negative shrinks)."""
        return Box(self.lo - margin, self.hi + margin)

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __repr__(self) -> str:
        lo = ", ".join(f"{v:g}" for v in self.lo)
        hi = ", ".join(f"{v:g}" for v in self.hi)
        return f"Box([{lo}], [{hi}])"

    def almost_equal(self, other: "Box", tol: float = 1e-12) -> bool:
        return bool(
            np.allclose(self.lo, other.lo, atol=tol)
            and np.allclose(self.hi, other.hi, atol=tol)
        )
