"""Particle-to-grid deposition."""

from __future__ import annotations

import numpy as np

from repro.core.reader import SpatialReader
from repro.domain.box import Box
from repro.domain.grid import CellGrid
from repro.errors import QueryError


def density_grid(
    reader: SpatialReader,
    dims: tuple[int, int, int] = (32, 32, 32),
    box: Box | None = None,
    weight_attr: str | None = None,
    max_level: int | None = None,
    nreaders: int = 1,
) -> np.ndarray:
    """Deposit particles onto a ``dims`` grid (nearest-cell deposition).

    Returns the per-cell sum of weights (count density when
    ``weight_attr`` is None).  ``box`` restricts both the grid extent and
    the files read; ``max_level`` trades accuracy for I/O with the LOD
    layout — at level L only ``n*P*S^L``-ish particles are read, and the
    result is scaled by the sampled fraction so it remains an unbiased
    density estimate.
    """
    region = box or reader.domain()
    if region.is_empty():
        raise QueryError(f"degenerate analysis region {region}")
    grid = CellGrid(region, dims)
    if box is None:
        batch = reader.read_full(max_level=max_level, nreaders=nreaders)
    else:
        batch = reader.read_box(box, max_level=max_level, nreaders=nreaders, exact=True)

    out = np.zeros(grid.num_cells, dtype=np.float64)
    if len(batch) == 0:
        return out.reshape(dims[::-1]).transpose(2, 1, 0)
    cells = grid.flat_cell_of_points(batch.positions)
    if weight_attr is not None:
        if weight_attr not in (batch.dtype.names or ()):
            raise QueryError(f"{weight_attr!r} is not a field of {batch.dtype}")
        weights = np.asarray(batch.data[weight_attr], dtype=np.float64)
    else:
        weights = np.ones(len(batch))
    np.add.at(out, cells, weights)

    if max_level is not None:
        # Unbiased scale-up: the LOD prefix is a uniform sample.
        sampled = len(batch)
        if box is None:
            total = reader.total_particles
        else:
            # Estimate the region total from the candidate files' counts.
            total = sum(
                rec.particle_count for rec in reader.metadata.files_intersecting(region)
            )
        if sampled and total > sampled:
            out *= total / sampled
    # x-fastest flat order -> (nx, ny, nz) array indexed [i, j, k].
    nx, ny, nz = dims
    return out.reshape(nz, ny, nx).transpose(2, 1, 0)
