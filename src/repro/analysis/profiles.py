"""Radial profiles about a point."""

from __future__ import annotations

import numpy as np

from repro.core.reader import SpatialReader
from repro.domain.box import Box
from repro.errors import QueryError


def radial_profile(
    reader: SpatialReader,
    center,
    radius: float,
    bins: int = 16,
    max_level: int | None = None,
    nreaders: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Shell number-density profile about ``center`` out to ``radius``.

    Returns ``(density_per_shell, shell_edges)`` where density is particles
    per unit volume.  Only the files overlapping the bounding cube of the
    sphere are read — the metadata-pruned access pattern this format makes
    cheap.
    """
    center = np.asarray(center, dtype=np.float64).reshape(3)
    if radius <= 0:
        raise QueryError(f"radius must be > 0, got {radius}")
    if bins < 1:
        raise QueryError(f"bins must be >= 1, got {bins}")
    cube = Box(center - radius, center + radius)
    batch = reader.read_box(cube, max_level=max_level, nreaders=nreaders, exact=True)
    edges = np.linspace(0.0, radius, bins + 1)
    if len(batch) == 0:
        return np.zeros(bins), edges
    dist = np.linalg.norm(batch.positions - center, axis=1)
    counts, _ = np.histogram(dist, bins=edges)
    counts = counts.astype(np.float64)
    if max_level is not None:
        total = sum(
            rec.particle_count for rec in reader.metadata.files_intersecting(cube)
        )
        if total > len(batch):
            counts *= total / len(batch)
    shell_volumes = (4.0 / 3.0) * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    return counts / shell_volumes, edges
