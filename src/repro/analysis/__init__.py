"""Post-processing analysis consumers of the spatial format.

§3 motivates the format with "a range of standard analysis and
visualization tasks [that] are dependent on region-based queries, e.g.:
nearest neighbour search, vector field integration, stencil operations,
image processing".  This package implements representative members of that
family on top of the reader:

* :func:`density_grid` — deposit particle mass onto a uniform grid (the
  first half of every stencil/image-processing pipeline);
* :func:`attribute_histogram` — distribution of any scalar attribute,
  optionally restricted to a region and/or an LOD budget;
* :func:`radial_profile` — shell-averaged density about a point (the
  classic cosmology/combustion diagnostic);
* :func:`neighbor_statistics` — kNN-based local spacing statistics.

Each function can run at reduced LOD: the estimates converge to the
full-resolution answer as levels are added, which the tests verify.
"""

from repro.analysis.grids import density_grid
from repro.analysis.histograms import attribute_histogram
from repro.analysis.profiles import radial_profile
from repro.analysis.neighbors import neighbor_statistics

__all__ = [
    "density_grid",
    "attribute_histogram",
    "radial_profile",
    "neighbor_statistics",
]
