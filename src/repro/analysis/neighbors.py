"""Nearest-neighbour spacing statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.reader import SpatialReader
from repro.domain.box import Box
from repro.errors import QueryError
from repro.query.knn import GridKNN
from repro.utils.rng import resolve_rng


@dataclass(frozen=True)
class NeighborStats:
    """Summary of local particle spacing in a region."""

    samples: int
    k: int
    mean_spacing: float
    median_spacing: float
    p95_spacing: float


def neighbor_statistics(
    reader: SpatialReader,
    box: Box,
    k: int = 4,
    sample: int = 256,
    seed: int | None = 0,
    max_level: int | None = None,
) -> NeighborStats:
    """kth-nearest-neighbour distance statistics for particles in ``box``.

    The query box is padded by an estimated spacing margin so neighbours
    just outside the region boundary are available — the stencil-halo
    pattern the paper's Figure-1 discussion calls out.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if sample < 1:
        raise QueryError(f"sample must be >= 1, got {sample}")
    inner = reader.read_box(box, max_level=max_level, exact=True)
    if len(inner) < 2:
        raise QueryError(f"region {box} holds {len(inner)} particles; need >= 2")
    # Halo margin: ~2 mean inter-particle spacings, estimated from density.
    density = len(inner) / max(box.volume, 1e-300)
    margin = 2.0 * density ** (-1.0 / 3.0)
    halo = reader.read_box(box.expanded(margin), max_level=max_level, exact=True)
    index = GridKNN(halo)

    rng = resolve_rng(seed)
    n = min(sample, len(inner))
    chosen = rng.choice(len(inner), size=n, replace=False)
    spacings = np.empty(n)
    for i, idx in enumerate(chosen):
        point = inner.positions[idx]
        # k+1 because the particle itself is its own 0-distance neighbour.
        _, dist = index.query(point, k=k + 1)
        spacings[i] = dist[-1]
    return NeighborStats(
        samples=n,
        k=k,
        mean_spacing=float(spacings.mean()),
        median_spacing=float(np.median(spacings)),
        p95_spacing=float(np.percentile(spacings, 95)),
    )
