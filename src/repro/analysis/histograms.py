"""Attribute histograms over (regions of) a dataset."""

from __future__ import annotations

import numpy as np

from repro.core.reader import SpatialReader
from repro.domain.box import Box
from repro.errors import QueryError


def attribute_histogram(
    reader: SpatialReader,
    attr: str,
    bins: int = 32,
    value_range: tuple[float, float] | None = None,
    box: Box | None = None,
    max_level: int | None = None,
    nreaders: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of a scalar attribute; returns ``(counts, bin_edges)``.

    With ``max_level`` the histogram is computed from an LOD sample and
    scaled to estimate the full-population counts (the shuffle makes the
    sample unbiased in both space and attribute value).
    """
    if attr not in (reader.dtype.names or ()):
        raise QueryError(f"{attr!r} is not a field of {reader.dtype}")
    if bins < 1:
        raise QueryError(f"bins must be >= 1, got {bins}")
    if box is None:
        batch = reader.read_full(max_level=max_level, nreaders=nreaders)
    else:
        batch = reader.read_box(box, max_level=max_level, nreaders=nreaders)
    values = np.asarray(batch.data[attr], dtype=np.float64).reshape(len(batch), -1)
    if values.shape[1] != 1:
        raise QueryError(f"{attr!r} is not a scalar attribute")
    values = values[:, 0]
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    counts = counts.astype(np.float64)
    if max_level is not None and len(batch):
        total = (
            reader.total_particles
            if box is None
            else sum(
                rec.particle_count
                for rec in reader.metadata.files_intersecting(box)
            )
        )
        if total > len(batch):
            counts *= total / len(batch)
    return counts, edges
