"""Progressive refinement over the LOD layout (paper §4, Fig. 9).

A visualization application first shows a coarse subset, then streams in
further levels in the background.  Because levels are *prefixes* of the same
files, refining from level L to L+1 only reads the bytes between the two
prefix lengths — nothing already loaded is re-read.

:class:`ProgressiveReader` tracks, per file, how many particles have been
consumed, and each :meth:`refine` call returns just the new slice (plus the
running total).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lod import lod_prefix_counts, max_level
from repro.core.reader import SpatialReader
from repro.domain.box import Box
from repro.errors import QueryError
from repro.format.datafile import read_data_prefix
from repro.particles.batch import ParticleBatch, concatenate


@dataclass
class RefinementStep:
    """Outcome of one refinement: the new particles and progress counters."""

    level: int
    new_particles: ParticleBatch
    loaded_particles: int
    total_particles: int

    @property
    def complete(self) -> bool:
        return self.loaded_particles >= self.total_particles

    @property
    def fraction_loaded(self) -> float:
        if self.total_particles == 0:
            return 1.0
        return self.loaded_particles / self.total_particles


class ProgressiveReader:
    """Incremental LOD reads over (a spatial subset of) a dataset."""

    def __init__(
        self,
        reader: SpatialReader,
        nreaders: int = 1,
        box: Box | None = None,
    ):
        self.reader = reader
        self.nreaders = int(nreaders)
        if self.nreaders < 1:
            raise QueryError(f"nreaders must be >= 1, got {nreaders}")
        self.box = box
        if box is None:
            self.records = list(reader.metadata.records)
        else:
            self.records = reader.metadata.files_intersecting(box)
        self._all_counts = [r.particle_count for r in reader.metadata.records]
        self._index = {
            id(r): i for i, r in enumerate(reader.metadata.records)
        }
        self._consumed = [0] * len(self.records)
        self.level = -1  # next refine() loads level 0

    @property
    def total_particles(self) -> int:
        """Particles in the files this progressive read covers."""
        return sum(r.particle_count for r in self.records)

    @property
    def loaded_particles(self) -> int:
        return sum(self._consumed)

    @property
    def final_level(self) -> int:
        """The level index after which nothing more can load."""
        return max_level(
            self.reader.total_particles,
            self.nreaders,
            self.reader.manifest.lod_base,
            self.reader.manifest.lod_scale,
        )

    def done(self) -> bool:
        return self.loaded_particles >= self.total_particles

    def refine(self) -> RefinementStep:
        """Load the next level; returns only the newly read particles."""
        if self.done():
            raise QueryError("refine() called on a fully loaded ProgressiveReader")
        self.level += 1
        prefixes = lod_prefix_counts(
            self._all_counts,
            self.nreaders,
            self.level,
            base=self.reader.manifest.lod_base,
            scale=self.reader.manifest.lod_scale,
        )
        new_batches: list[ParticleBatch] = []
        for i, rec in enumerate(self.records):
            target = prefixes[self._index[id(rec)]]
            already = self._consumed[i]
            fresh = max(0, min(target, rec.particle_count) - already)
            if fresh == 0:
                continue
            new_batches.append(
                read_data_prefix(
                    self.reader.backend,
                    rec.file_path,
                    self.reader.dtype,
                    fresh,
                    offset_particles=already,
                    actor=self.reader.actor,
                )
            )
            self._consumed[i] = already + fresh
        if new_batches:
            fresh_batch = concatenate(new_batches)
        else:
            fresh_batch = ParticleBatch(np.empty(0, dtype=self.reader.dtype))
        return RefinementStep(
            level=self.level,
            new_particles=fresh_batch,
            loaded_particles=self.loaded_particles,
            total_particles=self.total_particles,
        )

    def refine_to(self, level: int) -> ParticleBatch:
        """Load every level up to ``level`` and return all new particles."""
        steps: list[ParticleBatch] = []
        while self.level < level and not self.done():
            steps.append(self.refine().new_particles)
        if not steps:
            return ParticleBatch(np.empty(0, dtype=self.reader.dtype))
        return concatenate(steps)
