"""The paper's contribution: spatially-aware two-phase particle I/O.

Write path (§3, the eight steps)::

    from repro.core import SpatialWriter, WriterConfig

    cfg = WriterConfig(partition_factor=(2, 2, 2))
    writer = SpatialWriter(cfg)
    result = writer.write(comm, batch, decomp, backend)   # SPMD, one call per rank

Read path (§4)::

    from repro.core import SpatialReader

    reader = SpatialReader(backend)
    hits = reader.read_box(query_box)                     # metadata-pruned
    coarse = reader.read_box(query_box, max_level=3, nreaders=4)

Adaptive aggregation for non-uniform distributions (§6) is switched on with
``WriterConfig(adaptive=True)``.
"""

from repro.core.config import WriterConfig
from repro.core.aggregation import AggregationGrid, select_aggregators
from repro.core.adaptive import build_adaptive_grid
from repro.core.lod import (
    cumulative_level_count,
    level_size,
    lod_prefix_counts,
    max_level,
    random_lod_order,
    stratified_lod_order,
)
from repro.core.writer import SpatialWriter, WriteResult
from repro.core.reader import ReadPlan, ReadReport, SkippedPartition, SpatialReader
from repro.core.progressive import ProgressiveReader
from repro.core.scrub import ScrubIssue, ScrubReport, dataset_is_complete, scrub_dataset
from repro.core.repair import (
    RepairAction,
    RepairReport,
    SeriesRepairReport,
    repair_dataset,
    repair_series,
)
from repro.core.compact import (
    CompactReport,
    GcReport,
    collect_generations,
    compact_dataset,
)

__all__ = [
    "WriterConfig",
    "AggregationGrid",
    "select_aggregators",
    "build_adaptive_grid",
    "level_size",
    "cumulative_level_count",
    "max_level",
    "lod_prefix_counts",
    "random_lod_order",
    "stratified_lod_order",
    "SpatialWriter",
    "WriteResult",
    "SpatialReader",
    "ReadPlan",
    "ReadReport",
    "SkippedPartition",
    "ProgressiveReader",
    "ScrubIssue",
    "ScrubReport",
    "dataset_is_complete",
    "scrub_dataset",
    "RepairAction",
    "RepairReport",
    "SeriesRepairReport",
    "repair_dataset",
    "repair_series",
    "CompactReport",
    "GcReport",
    "collect_generations",
    "compact_dataset",
]
