"""The spatially-aware two-phase writer: the paper's eight-step pipeline (§3).

    (1) set up the aggregation-grid          -> repro.core.aggregation / adaptive
    (2) select aggregators                   -> repro.core.aggregation
    (3) exchange metadata                    -> repro.core.exchange
    (4) allocate the aggregation buffer      -> repro.core.exchange
    (5) exchange particles                   -> repro.core.exchange
    (6) shuffle particles into LOD order     -> repro.core.lod
    (7) write one data file per aggregator   -> repro.format.datafile
    (8) gather + write the spatial metadata  -> repro.format.metadata

``SpatialWriter.write`` is SPMD: every rank of the communicator calls it
with its local particles and the shared domain decomposition.  Output files
land in the given backend: ``data/file_<aggrank>.pbin`` per aggregator, plus
``spatial.meta`` and ``manifest.json`` from rank 0.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.adaptive import build_adaptive_grid
from repro.core.aggregation import AggregationGrid, BaseAggregationGrid, FreeAggregationGrid
from repro.core.config import WriterConfig
from repro.core.exchange import exchange_particles
from repro.core.lod import chunk_cluster_order, order_for_heuristic
from repro.domain.decomposition import PatchDecomposition
from repro.domain.grid import CellGrid
from repro.errors import BackendError, ConfigError, DataFileError
from repro.format.chunks import build_chunk_entry
from repro.format.datafile import (
    compute_file_checksums,
    data_file_name,
    prefix_checksum_boundaries,
    write_data_file,
)
from repro.format.manifest import MANIFEST_PATH, Manifest, dtype_to_descr
from repro.format.metadata import (
    META_PATH,
    MetadataRecord,
    SpatialMetadata,
    trailer_for_record,
)
from repro.io.backend import FileBackend
from repro.io.retry import RetryPolicy
from repro.mpi.comm import SimComm
from repro.obs.names import (
    IO_RETRIES,
    PHASE_AGGREGATION,
    PHASE_FILE_IO,
    PHASE_LOD,
    PHASE_METADATA,
    PHASE_SETUP,
)
from repro.obs.recorder import Recorder
from repro.particles.batch import ParticleBatch
from repro.utils.timing import TimeBreakdown

#: Phase names (Fig. 6's two bars are ``aggregation`` and ``file_io``) are
#: defined in the :mod:`repro.obs.names` registry; re-exported here for the
#: historical import path.
__all__ = [
    "SpatialWriter",
    "WriteResult",
    "PHASE_SETUP",
    "PHASE_AGGREGATION",
    "PHASE_LOD",
    "PHASE_FILE_IO",
    "PHASE_METADATA",
]


@dataclass
class WriteResult:
    """Per-rank outcome of a collective write.

    Accounting (phase times, retries) is not stored here — it lives in the
    rank's obs :attr:`recorder`; :attr:`breakdown` and :attr:`retries` are
    derived views over it.
    """

    rank: int
    num_files: int
    files_written: list[str] = field(default_factory=list)
    bytes_written: int = 0
    particles_sent: int = 0
    particles_received: int = 0
    aggregators_contacted: int = 0
    #: The rank's instrumentation record for this write (spans + counters).
    recorder: Recorder = field(default_factory=Recorder)

    @property
    def is_aggregator(self) -> bool:
        return bool(self.files_written)

    @property
    def breakdown(self) -> TimeBreakdown:
        """Fig. 6 phase view, derived from the recorder's spans."""
        return self.recorder.breakdown(cat="phase")

    @property
    def retries(self) -> int:
        """Backend writes that had to be retried (transient faults absorbed)."""
        return int(self.recorder.total(IO_RETRIES))


class SpatialWriter:
    """Writes particle datasets with spatially-aware two-phase I/O.

    Fault tolerance (beyond the paper): every backend write goes through a
    :class:`~repro.io.retry.RetryPolicy` (transient faults absorbed with
    deterministic backoff), output is committed in two phases — data files,
    then ``spatial.meta``, then ``manifest.json`` as the commit marker — and
    an aborted write cleans up its own partial data files, so an interrupted
    dataset is always detectable via
    :func:`~repro.core.scrub.dataset_is_complete` and never masquerades as a
    valid one.
    """

    def __init__(
        self,
        config: WriterConfig | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.config = config or WriterConfig()
        self.retry = retry or RetryPolicy()

    # -- grid construction (steps 1-2) ---------------------------------------

    def build_grid(
        self,
        comm: SimComm,
        decomp: PatchDecomposition,
        local_count: int,
    ) -> BaseAggregationGrid:
        """Step 1+2: build the aggregation grid and pick aggregators.

        Adaptive mode needs one collective (the extent/count allgather of
        §6); the static modes are fully deterministic and communication-free.
        """
        cfg = self.config
        if decomp.nprocs != comm.size:
            raise ConfigError(
                f"decomposition has {decomp.nprocs} patches, "
                f"communicator has {comm.size} ranks"
            )
        if cfg.adaptive:
            counts = comm.allgather(int(local_count))
            return build_adaptive_grid(decomp, counts, cfg.partition_factor)
        if cfg.align_to_patches:
            return AggregationGrid.aligned(decomp, cfg.partition_factor)
        dims = tuple(
            max(1, -(-decomp.proc_dims[a] // cfg.partition_factor[a]))
            for a in range(3)
        )
        return FreeAggregationGrid(decomp, CellGrid(decomp.domain, dims))

    # -- the full pipeline -----------------------------------------------------

    def write(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        decomp: PatchDecomposition,
        backend: FileBackend,
        recorder: Recorder | None = None,
    ) -> WriteResult:
        cfg = self.config
        rec = recorder if recorder is not None else Recorder(rank=comm.rank)
        result = WriteResult(rank=comm.rank, num_files=0, recorder=rec)

        with rec.span(PHASE_SETUP):
            grid = self.build_grid(comm, decomp, len(batch))
            result.num_files = grid.num_files

        # Two-phase commit, phase 0: invalidate any previous commit marker
        # before the first data byte moves, so a failed overwrite of an
        # existing dataset can never be read as either the old or a
        # Franken-mix of old and new.
        if comm.rank == 0:
            backend.delete(MANIFEST_PATH, missing_ok=True)
        comm.barrier()

        # Steps 3-5: metadata exchange, buffer allocation, particle exchange.
        with rec.span(PHASE_AGGREGATION):
            exchange = exchange_particles(comm, grid, batch)
        result.particles_sent = exchange.particles_sent
        result.particles_received = exchange.particles_received
        result.aggregators_contacted = exchange.aggregators_contacted

        # Step 6: LOD reordering, per owned partition.
        ordered: dict[int, ParticleBatch] = {}
        with rec.span(PHASE_LOD):
            for pid, agg_batch in exchange.aggregated.items():
                if len(agg_batch):
                    order = order_for_heuristic(
                        agg_batch,
                        cfg.lod_heuristic,
                        cfg.lod_seed,
                        agg_rank=comm.rank,
                        bounds=grid.partition_box(pid),
                    )
                    lod_batch = agg_batch.permuted(order)
                    if cfg.chunk_size:
                        # Regroup each level into spatially tight chunks so
                        # the sub-file chunk index can actually prune; level
                        # sets (and thus every boundary prefix) are unchanged.
                        regroup = chunk_cluster_order(
                            lod_batch,
                            prefix_checksum_boundaries(
                                len(lod_batch), cfg.lod_base, cfg.lod_scale
                            ),
                            cfg.chunk_size,
                            seed=cfg.lod_seed,
                            agg_rank=comm.rank,
                        )
                        lod_batch = lod_batch.permuted(regroup)
                    ordered[pid] = lod_batch
                else:
                    ordered[pid] = agg_batch

        # Data files are named after the aggregator rank (Fig. 4), so a rank
        # that owns more than one partition would silently overwrite its own
        # output.  No supported grid produces that mapping today; refuse
        # loudly if one ever does rather than losing a partition.
        if len(ordered) > 1:
            raise DataFileError(
                f"aggregator rank {comm.rank} owns partitions "
                f"{sorted(ordered)}, but data files are named per aggregator "
                f"rank ({data_file_name(comm.rank)!r}) — writing them would "
                "overwrite each other. Use an aggregation grid that assigns "
                "at most one partition per aggregator."
            )

        try:
            # Step 7 (commit phase 1): one independent file per aggregator.
            local_records: list[MetadataRecord] = []
            local_checksums: dict[str, dict] = {}
            with rec.span(PHASE_FILE_IO):
                for pid, agg_batch in ordered.items():
                    path = data_file_name(comm.rank)
                    sums = compute_file_checksums(
                        agg_batch, cfg.lod_base, cfg.lod_scale
                    )
                    if cfg.chunk_size and len(agg_batch):
                        # Sub-file spatial chunk index: per-chunk byte
                        # ranges + tight bounds, aligned to the same LOD
                        # boundaries the prefix checksums use.
                        sums["chunks"] = build_chunk_entry(
                            agg_batch,
                            cfg.chunk_size,
                            prefix_checksum_boundaries(
                                len(agg_batch), cfg.lod_base, cfg.lod_scale
                            ),
                            cfg.attr_index,
                        )
                    record = MetadataRecord(
                        box_id=pid,
                        agg_rank=comm.rank,
                        particle_count=len(agg_batch),
                        bounds=grid.partition_box(pid),
                        attr_ranges=self._attr_ranges(agg_batch),
                    )
                    # Format v3: every data file carries a recovery trailer
                    # duplicating its metadata record + manifest checksum
                    # entry, so the dataset survives losing both.
                    trailer = trailer_for_record(
                        record,
                        dtype_descr=dtype_to_descr(agg_batch.dtype),
                        lod_base=cfg.lod_base,
                        lod_scale=cfg.lod_scale,
                        lod_heuristic=cfg.lod_heuristic,
                        lod_seed=cfg.lod_seed,
                        payload_crc32=sums["payload_crc32"],
                        prefixes=sums["prefixes"],
                        chunks=sums.get("chunks", ()),
                    )
                    result.bytes_written += self.retry.call(
                        write_data_file,
                        backend,
                        path,
                        agg_batch,
                        actor=comm.rank,
                        trailer=trailer,
                        recorder=rec,
                    )
                    result.files_written.append(path)
                    local_checksums[path] = sums
                    local_records.append(record)

            # Step 8 (commit phases 2+3): gather bounding boxes to rank 0,
            # write the spatial metadata, then the manifest as the marker.
            with rec.span(PHASE_METADATA):
                gathered = comm.allgather((local_records, local_checksums))
                if comm.rank == 0:
                    records = sorted(
                        (r for recs, _sums in gathered for r in recs),
                        key=lambda r: r.box_id,
                    )
                    checksums: dict[str, dict] = {}
                    for _recs, sums in gathered:
                        checksums.update(sums)
                    table = SpatialMetadata(records, attr_names=cfg.attr_index)
                    meta_blob = table.to_bytes()
                    self.retry.call(
                        backend.write_file,
                        META_PATH,
                        meta_blob,
                        actor=0,
                        recorder=rec,
                    )
                    manifest = Manifest(
                        dtype=batch.dtype,
                        num_files=len(records),
                        total_particles=table.total_particles,
                        lod_base=cfg.lod_base,
                        lod_scale=cfg.lod_scale,
                        lod_heuristic=cfg.lod_heuristic,
                        lod_seed=cfg.lod_seed,
                        writer={
                            "config": cfg.describe(),
                            "nprocs": comm.size,
                            "proc_dims": list(decomp.proc_dims),
                            "domain": {
                                "lo": decomp.domain.lo.tolist(),
                                "hi": decomp.domain.hi.tolist(),
                            },
                        },
                        checksums=checksums,
                        spatial_meta_crc32=zlib.crc32(meta_blob),
                    )
                    self.retry.call(
                        backend.write_file,
                        MANIFEST_PATH,
                        manifest.to_json().encode("utf-8"),
                        actor=0,
                        recorder=rec,
                    )
        except BaseException:
            self._abort(backend, result)
            raise
        return result

    def _abort(self, backend: FileBackend, result: WriteResult) -> None:
        """Best-effort removal of this rank's partial output.

        Idempotent (``missing_ok``) and tolerant of a dead backend — after a
        real crash there is nobody left to clean up, and the two-phase
        ordering already guarantees the dataset reads as incomplete.
        """
        for path in result.files_written:
            try:
                backend.delete(path, missing_ok=True)
            except BackendError:
                pass

    # -- helpers ------------------------------------------------------------------

    def _attr_ranges(self, batch: ParticleBatch) -> dict[str, tuple[float, float]]:
        """Per-attribute (min, max) for the metadata index.

        An empty file gets ``(+inf, -inf)`` so that no range query ever
        matches it — the natural identity for a min/max interval.
        """
        out: dict[str, tuple[float, float]] = {}
        for name in self.config.attr_index:
            if name not in (batch.dtype.names or ()):
                raise ConfigError(
                    f"attr_index names {name!r}, not a field of {batch.dtype}"
                )
            if len(batch):
                col = np.asarray(batch.data[name], dtype=np.float64)
                out[name] = (float(col.min()), float(col.max()))
            else:
                out[name] = (float("inf"), float("-inf"))
        return out
