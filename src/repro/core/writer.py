"""The spatially-aware two-phase writer: the paper's eight-step pipeline (§3).

    (1) set up the aggregation-grid          -> repro.core.aggregation / adaptive
    (2) select aggregators                   -> repro.core.aggregation
    (3) exchange metadata                    -> repro.core.exchange
    (4) allocate the aggregation buffer      -> repro.core.exchange
    (5) exchange particles                   -> repro.core.exchange
    (6) shuffle particles into LOD order     -> repro.core.lod
    (7) write one data file per aggregator   -> repro.format.datafile
    (8) gather + write the spatial metadata  -> repro.format.metadata

``SpatialWriter.write`` is SPMD: every rank of the communicator calls it
with its local particles and the shared domain decomposition.  Output files
land in the given backend: ``data/file_<aggrank>.pbin`` per aggregator, plus
``spatial.meta`` and ``manifest.json`` from rank 0.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.adaptive import build_adaptive_grid
from repro.core.aggregation import AggregationGrid, BaseAggregationGrid, FreeAggregationGrid
from repro.core.config import WriterConfig
from repro.core.exchange import exchange_particles
from repro.core.lod import chunk_cluster_order, order_for_heuristic
from repro.domain.decomposition import PatchDecomposition
from repro.domain.grid import CellGrid
from repro.errors import BackendError, ConfigError, DataFileError
from repro.format.chunks import build_chunk_entry
from repro.format.datafile import (
    compute_file_checksums,
    data_file_name,
    encode_columnar_payload,
    prefix_checksum_boundaries,
    write_columnar_data_file,
    write_data_file,
)
from repro.format.generations import (
    CURRENT_PATH,
    generation_manifest_path,
    generation_meta_path,
    list_generations,
    load_generation,
    resolve_generation,
    write_current,
)
from repro.format.manifest import MANIFEST_PATH, Manifest, dtype_to_descr
from repro.format.metadata import (
    META_PATH,
    MetadataRecord,
    SpatialMetadata,
    trailer_for_record,
)
from repro.io.backend import FileBackend
from repro.io.retry import RetryPolicy
from repro.mpi.comm import SimComm
from repro.obs.names import (
    EV_GENERATION_COMMIT,
    GEN_COMMITS,
    IO_RETRIES,
    PHASE_AGGREGATION,
    PHASE_FILE_IO,
    PHASE_LOD,
    PHASE_METADATA,
    PHASE_SETUP,
)
from repro.obs.recorder import Recorder
from repro.particles.batch import ParticleBatch
from repro.utils.timing import TimeBreakdown

#: Generation-namespaced data file names (``gN_file_R.pbin``) — what a full
#: overwrite sweeps out of ``data/`` when it invalidates an append chain.
_GEN_DATA_RE = re.compile(r"g[1-9]\d*_file_\d+\.pbin")
DATA_DIR = "data"

#: Phase names (Fig. 6's two bars are ``aggregation`` and ``file_io``) are
#: defined in the :mod:`repro.obs.names` registry; re-exported here for the
#: historical import path.
__all__ = [
    "GenerationCommit",
    "SpatialWriter",
    "WriteResult",
    "PHASE_SETUP",
    "PHASE_AGGREGATION",
    "PHASE_LOD",
    "PHASE_FILE_IO",
    "PHASE_METADATA",
]


@dataclass
class WriteResult:
    """Per-rank outcome of a collective write.

    Accounting (phase times, retries) is not stored here — it lives in the
    rank's obs :attr:`recorder`; :attr:`breakdown` and :attr:`retries` are
    derived views over it.
    """

    rank: int
    num_files: int
    files_written: list[str] = field(default_factory=list)
    bytes_written: int = 0
    particles_sent: int = 0
    particles_received: int = 0
    aggregators_contacted: int = 0
    #: Generation this write committed (0 for a classic full write).
    generation: int = 0
    #: The rank's instrumentation record for this write (spans + counters).
    recorder: Recorder = field(default_factory=Recorder)

    @property
    def is_aggregator(self) -> bool:
        return bool(self.files_written)

    @property
    def breakdown(self) -> TimeBreakdown:
        """Fig. 6 phase view, derived from the recorder's spans."""
        return self.recorder.breakdown(cat="phase")

    @property
    def retries(self) -> int:
        """Backend writes that had to be retried (transient faults absorbed)."""
        return int(self.recorder.total(IO_RETRIES))


@dataclass(frozen=True)
class GenerationCommit:
    """How one append commits onto the generation chain.

    Built by :meth:`SpatialWriter.append` from the resolved base generation
    and threaded through the write pipeline: new data files are namespaced
    ``data/g<generation>_file_R.pbin``, the base inventory is merged
    forward into the new manifest/table, and flipping ``CURRENT`` to
    ``generation`` is the commit point.
    """

    generation: int
    parent: int
    #: The base generation's full table, carried forward verbatim.
    base_records: tuple[MetadataRecord, ...]
    #: The base generation's per-file checksum entries, carried forward.
    base_checksums: dict[str, dict]
    #: New partition box_ids are offset past every existing one so the
    #: merged table stays unique.
    box_id_offset: int


class SpatialWriter:
    """Writes particle datasets with spatially-aware two-phase I/O.

    Fault tolerance (beyond the paper): every backend write goes through a
    :class:`~repro.io.retry.RetryPolicy` (transient faults absorbed with
    deterministic backoff), output is committed in two phases — data files,
    then ``spatial.meta``, then ``manifest.json`` as the commit marker — and
    an aborted write cleans up its own partial data files, so an interrupted
    dataset is always detectable via
    :func:`~repro.core.scrub.dataset_is_complete` and never masquerades as a
    valid one.
    """

    def __init__(
        self,
        config: WriterConfig | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.config = config or WriterConfig()
        self.retry = retry or RetryPolicy()

    # -- grid construction (steps 1-2) ---------------------------------------

    def build_grid(
        self,
        comm: SimComm,
        decomp: PatchDecomposition,
        local_count: int,
    ) -> BaseAggregationGrid:
        """Step 1+2: build the aggregation grid and pick aggregators.

        Adaptive mode needs one collective (the extent/count allgather of
        §6); the static modes are fully deterministic and communication-free.
        """
        cfg = self.config
        if decomp.nprocs != comm.size:
            raise ConfigError(
                f"decomposition has {decomp.nprocs} patches, "
                f"communicator has {comm.size} ranks"
            )
        if cfg.adaptive:
            counts = comm.allgather(int(local_count))
            return build_adaptive_grid(decomp, counts, cfg.partition_factor)
        if cfg.align_to_patches:
            return AggregationGrid.aligned(decomp, cfg.partition_factor)
        dims = tuple(
            max(1, -(-decomp.proc_dims[a] // cfg.partition_factor[a]))
            for a in range(3)
        )
        return FreeAggregationGrid(decomp, CellGrid(decomp.domain, dims))

    # -- the full pipeline -----------------------------------------------------

    def write(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        decomp: PatchDecomposition,
        backend: FileBackend,
        recorder: Recorder | None = None,
    ) -> WriteResult:
        """Full overwrite: the dataset becomes exactly this write's output."""
        return self._write(comm, batch, decomp, backend, recorder, commit=None)

    def append(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        decomp: PatchDecomposition,
        backend: FileBackend,
        recorder: Recorder | None = None,
    ) -> WriteResult:
        """Append a new generation on top of the committed one.

        MVCC on the existing atomic primitives: new data lands only under
        generation-namespaced paths, the base inventory is merged forward
        into ``manifest.gen-N.json``/``spatial.gen-N.meta``, and flipping
        the checksummed ``CURRENT`` pointer is the commit — a reader pinned
        to the base generation never observes a changed byte, and a crash
        anywhere leaves the dataset at exactly generation N or N+1.

        The appended batch must be compatible with the base dataset: same
        dtype, same LOD parameters, same indexed attributes (all three are
        dataset-wide facts the reader takes from one manifest).
        """
        cfg = self.config
        # Resolution is deterministic (single concurrent writer is the
        # contract, as with any non-chained write), so every rank resolves
        # the same base without a collective.
        resolved = resolve_generation(backend)
        base_manifest, base_meta = load_generation(backend, resolved.generation)
        if (base_manifest.lod_base, base_manifest.lod_scale) != (
            cfg.lod_base,
            cfg.lod_scale,
        ):
            raise ConfigError(
                f"append LOD parameters ({cfg.lod_base}, {cfg.lod_scale}) do "
                f"not match the base generation's "
                f"({base_manifest.lod_base}, {base_manifest.lod_scale})"
            )
        if tuple(cfg.attr_index) != base_meta.attr_names:
            raise ConfigError(
                f"append attr_index {tuple(cfg.attr_index)} does not match "
                f"the base generation's {base_meta.attr_names}"
            )
        if np.dtype(batch.dtype) != base_manifest.dtype:
            raise ConfigError(
                f"append dtype {batch.dtype} does not match the base "
                f"generation's {base_manifest.dtype}"
            )
        commit = GenerationCommit(
            generation=resolved.generation + 1,
            parent=resolved.generation,
            base_records=tuple(base_meta.records),
            base_checksums=dict(base_manifest.checksums),
            box_id_offset=(
                max((r.box_id for r in base_meta.records), default=-1) + 1
            ),
        )
        return self._write(comm, batch, decomp, backend, recorder, commit=commit)

    def write_as_generation(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        decomp: PatchDecomposition,
        backend: FileBackend,
        commit: GenerationCommit,
        recorder: Recorder | None = None,
    ) -> WriteResult:
        """Write ``batch`` as an explicit generation commit.

        The compactor's entry point: it rewrites the whole dataset as a
        full-replacement generation (empty base in ``commit``), so the
        caller decides the generation/parent pair instead of the resolver.
        The commit discipline is identical to :meth:`append` — nothing is
        visible until the ``CURRENT`` flip.
        """
        return self._write(comm, batch, decomp, backend, recorder, commit=commit)

    def _write(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        decomp: PatchDecomposition,
        backend: FileBackend,
        recorder: Recorder | None,
        commit: GenerationCommit | None,
    ) -> WriteResult:
        cfg = self.config
        gen = commit.generation if commit is not None else 0
        rec = recorder if recorder is not None else Recorder(rank=comm.rank)
        result = WriteResult(
            rank=comm.rank, num_files=0, generation=gen, recorder=rec
        )

        with rec.span(PHASE_SETUP):
            grid = self.build_grid(comm, decomp, len(batch))
            result.num_files = grid.num_files

        # Two-phase commit, phase 0: invalidate any previous commit marker
        # before the first data byte moves, so a failed overwrite of an
        # existing dataset can never be read as either the old or a
        # Franken-mix of old and new.  A full overwrite also invalidates a
        # generation chain wholesale (its manifests reference data files the
        # overwrite is about to replace); an append skips this entirely —
        # committed generations stay readable throughout.
        if commit is None:
            if comm.rank == 0:
                backend.delete(MANIFEST_PATH, missing_ok=True)
                backend.delete(CURRENT_PATH, missing_ok=True)
                for old_gen in list_generations(backend):
                    if old_gen > 0:
                        # Manifest first (the gen's own commit marker), then
                        # its table and namespaced data files — a crash here
                        # can leave orphans but never a readable half-chain.
                        backend.delete(
                            generation_manifest_path(old_gen), missing_ok=True
                        )
                        backend.delete(
                            generation_meta_path(old_gen), missing_ok=True
                        )
                try:
                    stale = [
                        n
                        for n in backend.listdir(DATA_DIR)
                        if _GEN_DATA_RE.fullmatch(n)
                    ]
                except BackendError:
                    stale = []
                for name in stale:
                    backend.delete(f"{DATA_DIR}/{name}", missing_ok=True)
            comm.barrier()

        # Steps 3-5: metadata exchange, buffer allocation, particle exchange.
        with rec.span(PHASE_AGGREGATION):
            exchange = exchange_particles(comm, grid, batch)
        result.particles_sent = exchange.particles_sent
        result.particles_received = exchange.particles_received
        result.aggregators_contacted = exchange.aggregators_contacted

        # Step 6: LOD reordering, per owned partition.
        ordered: dict[int, ParticleBatch] = {}
        with rec.span(PHASE_LOD):
            for pid, agg_batch in exchange.aggregated.items():
                if len(agg_batch):
                    order = order_for_heuristic(
                        agg_batch,
                        cfg.lod_heuristic,
                        cfg.lod_seed,
                        agg_rank=comm.rank,
                        bounds=grid.partition_box(pid),
                    )
                    lod_batch = agg_batch.permuted(order)
                    if cfg.chunk_size:
                        # Regroup each level into spatially tight chunks so
                        # the sub-file chunk index can actually prune; level
                        # sets (and thus every boundary prefix) are unchanged.
                        regroup = chunk_cluster_order(
                            lod_batch,
                            prefix_checksum_boundaries(
                                len(lod_batch), cfg.lod_base, cfg.lod_scale
                            ),
                            cfg.chunk_size,
                            seed=cfg.lod_seed,
                            agg_rank=comm.rank,
                        )
                        lod_batch = lod_batch.permuted(regroup)
                    ordered[pid] = lod_batch
                else:
                    ordered[pid] = agg_batch

        # Data files are named after the aggregator rank (Fig. 4), so a rank
        # that owns more than one partition would silently overwrite its own
        # output.  No supported grid produces that mapping today; refuse
        # loudly if one ever does rather than losing a partition.
        if len(ordered) > 1:
            raise DataFileError(
                f"aggregator rank {comm.rank} owns partitions "
                f"{sorted(ordered)}, but data files are named per aggregator "
                f"rank ({data_file_name(comm.rank, gen)!r}) — writing them would "
                "overwrite each other. Use an aggregation grid that assigns "
                "at most one partition per aggregator."
            )

        try:
            # Step 7 (commit phase 1): one independent file per aggregator.
            local_records: list[MetadataRecord] = []
            local_checksums: dict[str, dict] = {}
            with rec.span(PHASE_FILE_IO):
                for pid, agg_batch in ordered.items():
                    path = data_file_name(comm.rank, gen)
                    sums = compute_file_checksums(
                        agg_batch, cfg.lod_base, cfg.lod_scale
                    )
                    if cfg.chunk_size and len(agg_batch):
                        # Sub-file spatial chunk index: per-chunk byte
                        # ranges + tight bounds, aligned to the same LOD
                        # boundaries the prefix checksums use.
                        sums["chunks"] = build_chunk_entry(
                            agg_batch,
                            cfg.chunk_size,
                            prefix_checksum_boundaries(
                                len(agg_batch), cfg.lod_base, cfg.lod_scale
                            ),
                            cfg.attr_index,
                        )
                    # Columnar layout (format v4): transpose the chunked
                    # payload into encoded per-attribute column segments.
                    # The prefix checksums above stay *logical* (row-payload
                    # CRCs at LOD boundaries) while payload_crc32 switches
                    # to the stored encoded bytes, and the chunk entries
                    # grow per-segment [offset, length, crc32] descriptors.
                    columnar = (
                        cfg.layout == "columnar"
                        and bool(cfg.chunk_size)
                        and len(agg_batch) > 0
                    )
                    payload = b""
                    if columnar:
                        payload, seg_lists = encode_columnar_payload(
                            agg_batch, sums["chunks"], cfg.codec
                        )
                        sums["chunks"] = [
                            chunk + [segs]
                            for chunk, segs in zip(sums["chunks"], seg_lists)
                        ]
                        sums["payload_crc32"] = zlib.crc32(payload)
                        sums["codec"] = cfg.codec
                    record = MetadataRecord(
                        box_id=pid + (commit.box_id_offset if commit else 0),
                        agg_rank=comm.rank,
                        particle_count=len(agg_batch),
                        bounds=grid.partition_box(pid),
                        attr_ranges=self._attr_ranges(agg_batch),
                        gen=gen,
                    )
                    # Format v3/v4: every data file carries a recovery
                    # trailer duplicating its metadata record + manifest
                    # checksum entry, so the dataset survives losing both.
                    trailer = trailer_for_record(
                        record,
                        dtype_descr=dtype_to_descr(agg_batch.dtype),
                        lod_base=cfg.lod_base,
                        lod_scale=cfg.lod_scale,
                        lod_heuristic=cfg.lod_heuristic,
                        lod_seed=cfg.lod_seed,
                        payload_crc32=sums["payload_crc32"],
                        prefixes=sums["prefixes"],
                        chunks=sums.get("chunks", ()),
                        codec=cfg.codec if columnar else None,
                    )
                    if columnar:
                        result.bytes_written += self.retry.call(
                            write_columnar_data_file,
                            backend,
                            path,
                            payload,
                            agg_batch.dtype.itemsize,
                            len(agg_batch),
                            trailer,
                            actor=comm.rank,
                            recorder=rec,
                        )
                    else:
                        result.bytes_written += self.retry.call(
                            write_data_file,
                            backend,
                            path,
                            agg_batch,
                            actor=comm.rank,
                            trailer=trailer,
                            recorder=rec,
                        )
                    result.files_written.append(path)
                    local_checksums[path] = sums
                    local_records.append(record)

            # Step 8 (commit phases 2+3): gather bounding boxes to rank 0,
            # write the spatial metadata, then the manifest as the marker.
            with rec.span(PHASE_METADATA):
                gathered = comm.allgather((local_records, local_checksums))
                if comm.rank == 0:
                    new_records = [r for recs, _sums in gathered for r in recs]
                    base_records = list(commit.base_records) if commit else []
                    records = sorted(
                        base_records + new_records, key=lambda r: r.box_id
                    )
                    checksums: dict[str, dict] = (
                        dict(commit.base_checksums) if commit else {}
                    )
                    for _recs, sums in gathered:
                        checksums.update(sums)
                    table = SpatialMetadata(records, attr_names=cfg.attr_index)
                    meta_blob = table.to_bytes()
                    self.retry.call(
                        backend.write_file,
                        generation_meta_path(gen) if commit else META_PATH,
                        meta_blob,
                        actor=0,
                        recorder=rec,
                    )
                    manifest = Manifest(
                        dtype=batch.dtype,
                        num_files=len(records),
                        total_particles=table.total_particles,
                        lod_base=cfg.lod_base,
                        lod_scale=cfg.lod_scale,
                        lod_heuristic=cfg.lod_heuristic,
                        lod_seed=cfg.lod_seed,
                        writer={
                            "config": cfg.describe(),
                            "nprocs": comm.size,
                            "proc_dims": list(decomp.proc_dims),
                            "domain": {
                                "lo": decomp.domain.lo.tolist(),
                                "hi": decomp.domain.hi.tolist(),
                            },
                        },
                        checksums=checksums,
                        spatial_meta_crc32=zlib.crc32(meta_blob),
                        generation=gen,
                        parent=commit.parent if commit else None,
                    )
                    self.retry.call(
                        backend.write_file,
                        generation_manifest_path(gen) if commit else MANIFEST_PATH,
                        manifest.to_json().encode("utf-8"),
                        actor=0,
                        recorder=rec,
                    )
                    if commit is not None:
                        # The commit point: flipping CURRENT publishes the
                        # new generation atomically.  Everything before this
                        # write is invisible to readers; a crash before it
                        # recovers to the parent generation.
                        self.retry.call(
                            write_current, backend, gen, actor=0, recorder=rec
                        )
                        rec.add(GEN_COMMITS)
                        rec.event(
                            EV_GENERATION_COMMIT,
                            generation=gen,
                            parent=commit.parent,
                            new_files=len(new_records),
                        )
        except BaseException:
            self._abort(backend, result)
            raise
        return result

    def _abort(self, backend: FileBackend, result: WriteResult) -> None:
        """Best-effort removal of this rank's partial output.

        Idempotent (``missing_ok``) and tolerant of a dead backend — after a
        real crash there is nobody left to clean up, and the two-phase
        ordering already guarantees the dataset reads as incomplete.
        """
        for path in result.files_written:
            try:
                backend.delete(path, missing_ok=True)
            except BackendError:
                pass

    # -- helpers ------------------------------------------------------------------

    def _attr_ranges(self, batch: ParticleBatch) -> dict[str, tuple[float, float]]:
        """Per-attribute (min, max) for the metadata index.

        An empty file gets ``(+inf, -inf)`` so that no range query ever
        matches it — the natural identity for a min/max interval.
        """
        out: dict[str, tuple[float, float]] = {}
        for name in self.config.attr_index:
            if name not in (batch.dtype.names or ()):
                raise ConfigError(
                    f"attr_index names {name!r}, not a field of {batch.dtype}"
                )
            if len(batch):
                col = np.asarray(batch.data[name], dtype=np.float64)
                out[name] = (float(col.min()), float(col.max()))
            else:
                out[name] = (float("inf"), float("-inf"))
        return out
