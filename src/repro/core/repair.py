"""Self-healing datasets: turn a :class:`~repro.core.scrub.ScrubReport` into
an executed repair.

The v3 data-file format makes every file self-describing (see
:class:`~repro.format.datafile.RecoveryTrailer`): each one redundantly
carries its own ``spatial.meta`` record, manifest checksum entry, dtype
descr and LOD parameters.  This module is the consumer of that redundancy —
given a scrubbed dataset it classifies every issue into a typed
:class:`RepairAction` and executes the plan through the same machinery the
writer uses (two-phase commit, :class:`~repro.io.retry.RetryPolicy`,
per-file fan-out on the dataset's :class:`~repro.io.executor.IoExecutor`).

Strategy per issue, keyed off :attr:`ScrubIssue.repairable`:

* **lossless rebuild** (``repairable=True``) — ``spatial.meta`` and
  ``manifest.json`` are derived state; when lost, corrupt, or disagreeing
  with the data files they are rebuilt from the recovery trailers (the
  rebuild is bit-identical to what the writer produced, so a surviving
  manifest's ``spatial_meta_crc32`` still matches).  A damaged trailer is
  itself rewritten from the surviving committed state.
* **salvage** (``repairable=False``) — a torn data file is truncated to its
  longest prefix that still verifies against the manifest's per-LOD prefix
  checksums; because files are LOD-ordered, that prefix *is* a valid coarse
  level, so strict reads keep working at reduced fidelity.
* **quarantine** — anything unrecoverable (bad payload CRC, dtype mismatch,
  torn beyond the first prefix boundary, orphans of an aborted overwrite)
  is moved into ``quarantine/`` rather than deleted, and dropped from the
  rebuilt metadata.

Every repair records ``repair.*`` spans (scrub / plan / execute / verify),
one ``repair.action`` event per executed action, and salvaged/lost
particle counters on the dataset's recorder.  ``dry_run=True`` stops after
planning — no byte is written (asserted in the test suite against the
virtual backend's op log).

Series-level recovery (:func:`repair_series`) treats ``series.json`` as the
commit marker above the per-step markers: indexed steps are repaired in
place; a step directory absent from the index is an aborted append and is
quarantined whole.  The index itself carries the simulation times, which no
trailer duplicates, so a corrupt index is reported as unresolved rather
than guessed at.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.scrub import QUARANTINE_DIR, ScrubReport
from repro.dataset import Dataset, as_dataset
from repro.errors import (
    BackendError,
    ChecksumError,
    DataFileError,
    FormatError,
    MetadataError,
)
from repro.format.generations import (
    CURRENT_PATH,
    ResolvedGeneration,
    generation_manifest_path,
    generation_meta_path,
    list_generations,
    load_generation,
    parse_generation_path,
    read_current,
    resolve_generation,
    write_current,
)
from repro.format.chunks import (
    build_chunk_entry,
    chunks_from_entry,
    chunks_to_entry,
)
from repro.format.datafile import (
    DATA_VERSION_COLUMNAR,
    FOOTER_BYTES,
    HEADER_BYTES,
    RecoveryTrailer,
    build_data_blob,
    columnar_payload_length,
    decode_columnar_payload,
    extract_recovery_trailer,
    parse_data_header,
    payload_prefix_checksums,
    prefix_checksum_boundaries,
    scan_columnar_segments,
    verify_data_footer,
)
from repro.format.manifest import (
    MANIFEST_PATH,
    Manifest,
    descr_to_dtype,
    dtype_to_descr,
)
from repro.format.metadata import (
    META_PATH,
    MetadataRecord,
    SpatialMetadata,
    record_from_trailer,
    trailer_for_record,
)
from repro.io.backend import FileBackend
from repro.obs.names import (
    EV_REPAIR_ACTION,
    PHASE_REPAIR_EXECUTE,
    PHASE_REPAIR_PLAN,
    PHASE_REPAIR_SCRUB,
    PHASE_REPAIR_VERIFY,
    REPAIR_ACTIONS,
    REPAIR_FILES_QUARANTINED,
    REPAIR_PARTICLES_LOST,
    REPAIR_PARTICLES_SALVAGED,
)
from repro.obs.recorder import Recorder

__all__ = [
    "QUARANTINE_DIR",
    "RepairAction",
    "RepairReport",
    "SeriesRepairReport",
    "repair_dataset",
    "repair_series",
]

#: Unrecoverable pieces are moved to ``QUARANTINE_DIR`` (defined in
#: :mod:`repro.core.scrub`, re-exported here), never deleted — a later
#: forensic pass can still look at them.

#: Action kinds, in the order :meth:`RepairReport.summary_lines` groups them.
ACTION_REBUILD_METADATA = "rebuild-metadata-from-trailers"
ACTION_REBUILD_MANIFEST = "rebuild-manifest"
ACTION_REBUILD_ENTRY = "rebuild-manifest-entry"
ACTION_REWRITE_TRAILER = "rewrite-trailer"
ACTION_TRUNCATE = "truncate-torn-file"
ACTION_DROP_MISSING = "drop-missing-file"
ACTION_QUARANTINE = "quarantine-unrecoverable"
ACTION_REWRITE_CURRENT = "rewrite-current-pointer"
ACTION_DROP_GENERATION = "drop-generation"


@dataclass
class RepairAction:
    """One planned (and possibly executed) repair step."""

    kind: str
    path: str
    detail: str
    particles_salvaged: int = 0
    particles_lost: int = 0
    #: False until the execute phase actually performed it (always False
    #: after a dry run).
    executed: bool = False

    def describe(self) -> str:
        extra = ""
        if self.particles_salvaged or self.particles_lost:
            extra = (
                f" (salvaged {self.particles_salvaged}, "
                f"lost {self.particles_lost})"
            )
        return f"[{self.kind}] {self.path}: {self.detail}{extra}"


@dataclass
class RepairReport:
    """Everything one repair pass decided and did."""

    actions: list[RepairAction] = field(default_factory=list)
    dry_run: bool = False
    #: The scrub found nothing; repair had nothing to do.
    clean: bool = False
    rebuilt_metadata: bool = False
    rebuilt_manifest: bool = False
    #: Damage repair could not act on (human-readable reasons).
    unresolved: list[str] = field(default_factory=list)
    #: Issues the post-repair verification scrub still found.
    issues_remaining: list[str] = field(default_factory=list)

    @property
    def particles_salvaged(self) -> int:
        return sum(a.particles_salvaged for a in self.actions)

    @property
    def particles_lost(self) -> int:
        return sum(a.particles_lost for a in self.actions)

    @property
    def files_quarantined(self) -> int:
        return sum(1 for a in self.actions if a.kind == ACTION_QUARANTINE)

    @property
    def data_loss(self) -> bool:
        """True when converging cost particles (quarantined orphans of an
        aborted overwrite were never committed data, so they do not count)."""
        return self.particles_lost > 0

    @property
    def ok(self) -> bool:
        """The dataset verifies clean after this pass (vacuously for a
        dataset that was already clean)."""
        if self.clean:
            return True
        return not self.dry_run and not self.unresolved and not self.issues_remaining

    @property
    def exit_code(self) -> int:
        """The CLI contract: 0 clean/lossless repair, 1 damage (found or
        repaired with data loss), 2 never (operational errors raise)."""
        if self.clean:
            return 0
        if self.dry_run:
            return 1
        return 0 if self.ok and not self.data_loss else 1

    def summary_lines(self) -> list[str]:
        """Human-readable report (the ``repro repair`` output body)."""
        verb = "planned " if self.dry_run else "executed"
        lines = [f"actions {verb} : {len(self.actions)}"]
        lines.extend(f"  {a.describe()}" for a in self.actions)
        lines += [
            f"particles salvaged: {self.particles_salvaged}",
            f"particles lost    : {self.particles_lost}",
            f"files quarantined : {self.files_quarantined}",
            f"metadata rebuilt  : {'yes' if self.rebuilt_metadata else 'no'}",
            f"manifest rebuilt  : {'yes' if self.rebuilt_manifest else 'no'}",
        ]
        lines.extend(f"unresolved: {reason}" for reason in self.unresolved)
        lines.extend(f"still damaged: {issue}" for issue in self.issues_remaining)
        if self.clean:
            lines.append("dataset is clean; nothing to repair")
        elif self.dry_run:
            lines.append("dry run: no changes were made")
        elif not self.ok:
            lines.append("repair incomplete: restore from a replica")
        elif self.data_loss:
            lines.append(
                f"dataset repaired with data loss "
                f"({self.particles_lost} particles unrecoverable)"
            )
        else:
            lines.append("dataset repaired without data loss")
        return lines


# -- per-file inspection -------------------------------------------------------


@dataclass
class _FileState:
    """What one pass over a data file's bytes established."""

    path: str
    #: One of ``missing``, ``unreadable``, ``corrupt``, ``torn``, ``valid``.
    status: str = "missing"
    detail: str = ""
    version: int = 0
    rec_size: int = 0
    header_count: int = 0
    payload_crc32: int = 0
    trailer: RecoveryTrailer | None = None
    trailer_detail: str = ""
    #: Checksum entry recomputed from the payload (valid files, LOD known).
    actual_entry: dict | None = None
    #: Longest prefix (in particles) verifying against the manifest entry.
    salvage_count: int = 0
    salvage_crc: int = 0
    salvage_prefixes: list = field(default_factory=list)
    #: Columnar (v4) facts: the segment codec (None marks a row file) and,
    #: after salvage, the kept segment-bearing chunk entries.
    codec: str | None = None
    keep_chunks: list = field(default_factory=list)


def _inspect_file(
    ds: Dataset,
    path: str,
    entry: dict | None,
    dtype,
    lod: tuple[int, int] | None,
    rec: Recorder,
    attr_names: tuple[str, ...] | None = None,
    chunk_size_hint: int = 0,
) -> _FileState:
    """Classify one data file from its raw bytes; never raises.

    ``entry`` is the manifest's checksum entry (drives torn-file salvage),
    ``dtype`` the dataset record dtype (guards dtype mismatches and lets a
    chunk index be recomputed from the payload), ``lod`` the (base, scale)
    pair for recomputing prefix checksums, ``attr_names`` the indexed
    attribute order — each ``None`` when the dataset-level state carrying
    it did not survive.  ``chunk_size_hint`` is a dataset-wide fallback
    (the writer's chunk size is identical across files) applied when
    neither the entry nor the file's own trailer records an index.
    """
    itemsize = dtype.itemsize if dtype is not None else None
    st = _FileState(path)
    try:
        if not ds.backend.exists(path):
            st.detail = "referenced by spatial.meta but absent"
            return st
        raw = bytes(ds.retry.call(ds.backend.read_file, path, recorder=rec))
    except BackendError as exc:
        st.status, st.detail = "unreadable", str(exc)
        return st

    try:
        st.version, st.rec_size, st.header_count = parse_data_header(raw, path)
    except DataFileError as exc:
        st.status, st.detail = "corrupt", str(exc)
        return st
    if itemsize is not None and st.rec_size != itemsize:
        st.status = "corrupt"
        st.detail = (
            f"record size {st.rec_size} does not match dataset itemsize "
            f"{itemsize}"
        )
        return st
    if st.rec_size <= 0:
        st.status, st.detail = "corrupt", f"record size {st.rec_size}"
        return st

    if st.version >= DATA_VERSION_COLUMNAR:
        return _inspect_columnar(st, raw, entry, dtype, lod, attr_names)

    footer = FOOTER_BYTES if st.version >= 2 else 0
    expected = HEADER_BYTES + st.header_count * st.rec_size + footer
    torn = (
        len(raw) < expected if st.version >= 3 else len(raw) != expected
    )
    if torn:
        st.status = "torn"
        st.detail = (
            f"expected {expected} bytes for {st.header_count} particles, "
            f"found {len(raw)}"
        )
        _find_salvage_prefix(st, raw, entry)
        return st

    body = raw[:expected]
    payload = body[HEADER_BYTES : expected - footer]
    st.payload_crc32 = zlib.crc32(payload)
    if st.version >= 2:
        try:
            verify_data_footer(body, path)
        except ChecksumError as exc:
            st.status, st.detail = "corrupt", str(exc)
            return st
    st.status = "valid"

    if st.version >= 3:
        try:
            st.trailer = extract_recovery_trailer(raw, path)
        except (ChecksumError, DataFileError) as exc:
            st.trailer_detail = str(exc)
        else:
            if st.trailer.particle_count != st.header_count:
                st.trailer_detail = (
                    f"trailer says {st.trailer.particle_count} particles, "
                    f"header says {st.header_count}"
                )
                st.trailer = None

    if lod is None and st.trailer is not None:
        lod = (st.trailer.lod_base, st.trailer.lod_scale)
    if dtype is None and st.trailer is not None:
        # The dtype is a dataset-wide fact the trailer carries too; without
        # it the chunk index below cannot be recomputed and a healthy
        # trailer would spuriously "disagree" with a chunkless entry.
        try:
            dtype = descr_to_dtype(st.trailer.dtype_descr)
        except FormatError:
            dtype = None
        else:
            if dtype.itemsize != st.rec_size:
                dtype = None
    if lod is not None:
        boundaries = prefix_checksum_boundaries(st.header_count, *lod)
        prefixes = payload_prefix_checksums(payload, st.rec_size, boundaries)
        st.actual_entry = {
            "payload_crc32": st.payload_crc32,
            "prefixes": [[c, crc] for c, crc in prefixes],
        }
        # Chunk index: the grid is fully determined by the payload, the LOD
        # boundaries, and the chunk size (recovered from whichever recorded
        # index survives), so a clean one rebuilds bit-identically and a
        # damaged one is replaced by the truth.  Unchunked datasets have no
        # donor and stay unchunked.
        chunk_size = _donor_chunk_size(entry, st.trailer) or chunk_size_hint
        if chunk_size and dtype is not None and st.header_count:
            if attr_names is None and st.trailer is not None:
                attr_names = tuple(n for n, _lo, _hi in st.trailer.attr_ranges)
            from repro.particles.batch import ParticleBatch

            st.actual_entry["chunks"] = build_chunk_entry(
                ParticleBatch.frombuffer(payload, dtype),
                chunk_size,
                boundaries,
                tuple(attr_names or ()),
            )
    return st


def _inspect_columnar(
    st: _FileState,
    raw: bytes,
    entry: dict | None,
    dtype,
    lod: tuple[int, int] | None,
    attr_names: tuple[str, ...] | None,
) -> _FileState:
    """Classify a columnar (v4) file from its raw bytes.

    Verification runs at *segment* granularity: segment descriptors come
    from the recovery trailer (or the manifest entry when the trailer is
    damaged), every segment is CRC-checked, and a file with damaged or
    missing tail segments is treated as torn — salvage keeps whole leading
    chunks up to the longest LOD boundary whose decoded logical prefix
    still verifies.  A valid file gets a recomputed v4 checksum entry
    (encoded-payload CRC, logical prefix CRCs, segment-bearing chunks,
    codec).
    """
    path = st.path
    try:
        st.trailer = extract_recovery_trailer(raw, path)
    except (ChecksumError, DataFileError) as exc:
        st.trailer_detail = str(exc)
    else:
        if st.trailer.particle_count != st.header_count:
            st.trailer_detail = (
                f"trailer says {st.trailer.particle_count} particles, "
                f"header says {st.header_count}"
            )
            st.trailer = None
    chunks: tuple = ()
    codec: str | None = None
    if st.trailer is not None and st.trailer.chunks:
        chunks, codec = st.trailer.chunks, st.trailer.codec or "none"
    elif entry and entry.get("chunks"):
        try:
            chunks = chunks_from_entry(entry["chunks"])
        except DataFileError:
            chunks = ()
        codec = str(entry.get("codec") or "none")
    if not chunks or any(len(c) < 6 for c in chunks):
        if entry is None:
            # Nothing ever recorded this file (aborted-write orphan cut
            # before its trailer): torn with nothing salvageable, so it
            # quarantines without billing the header count as data loss —
            # same accounting as a row orphan.
            st.status = "torn"
            st.detail = (
                "columnar file has no usable segment descriptors "
                "(torn before its recovery trailer)"
            )
            return st
        st.status = "corrupt"
        st.detail = (
            "columnar file has no usable segment descriptors "
            "(recovery trailer and manifest entry both lost)"
        )
        return st
    st.codec = codec
    if dtype is None and st.trailer is not None:
        try:
            dtype = descr_to_dtype(st.trailer.dtype_descr)
        except FormatError:
            dtype = None
        else:
            if dtype.itemsize != st.rec_size:
                dtype = None
    if dtype is None:
        st.status = "corrupt"
        st.detail = (
            "columnar file cannot be verified without a dtype and none "
            "survives (manifest and trailer both lost)"
        )
        return st
    if lod is None and st.trailer is not None:
        lod = (st.trailer.lod_base, st.trailer.lod_scale)
    try:
        enc_len = columnar_payload_length(chunks)
    except DataFileError as exc:
        st.status, st.detail = "corrupt", str(exc)
        return st
    expected = HEADER_BYTES + enc_len + FOOTER_BYTES
    bad = scan_columnar_segments(raw, chunks, dtype)
    if len(raw) < expected or bad:
        st.status = "torn"
        if len(raw) < expected:
            st.detail = (
                f"expected {expected} bytes for {st.header_count} "
                f"particles, found {len(raw)}"
            )
        else:
            st.detail = (
                f"{len(bad)} damaged column segment(s); first: {bad[0][2]}"
            )
        _find_columnar_salvage(st, raw, entry, dtype, chunks, codec)
        return st
    try:
        verify_data_footer(raw[:expected], path)
    except ChecksumError as exc:
        st.status, st.detail = "corrupt", str(exc)
        return st
    payload = raw[HEADER_BYTES : HEADER_BYTES + enc_len]
    try:
        arr = decode_columnar_payload(payload, chunks, codec, dtype, path)
    except (ChecksumError, DataFileError) as exc:
        st.status, st.detail = "corrupt", str(exc)
        return st
    if len(arr) != st.header_count:
        st.status = "corrupt"
        st.detail = (
            f"chunk index covers {len(arr)} particles, header says "
            f"{st.header_count}"
        )
        return st
    st.status = "valid"
    st.payload_crc32 = zlib.crc32(payload)
    if lod is None:
        return st
    boundaries = prefix_checksum_boundaries(st.header_count, *lod)
    prefixes = payload_prefix_checksums(
        np.ascontiguousarray(arr).tobytes(), st.rec_size, boundaries
    )
    st.actual_entry = {
        "payload_crc32": st.payload_crc32,
        "prefixes": [[c, crc] for c, crc in prefixes],
        "codec": codec,
    }
    if attr_names is None and st.trailer is not None:
        attr_names = tuple(n for n, _lo, _hi in st.trailer.attr_ranges)
    # Regraft the chunk geometry from the decoded payload (the truth) and
    # keep the verified stored segment descriptors — same partition, so
    # they line up one-to-one.  A geometry whose partition no longer
    # matches keeps the stored entry wholesale (it verified byte-level).
    from repro.particles.batch import ParticleBatch

    chunk_size = max(int(c[1]) for c in chunks)
    geo = build_chunk_entry(
        ParticleBatch(arr), chunk_size, boundaries, tuple(attr_names or ())
    )
    stored = chunks_to_entry(chunks)
    if len(geo) == len(stored) and all(
        int(g[0]) == int(s[0]) and int(g[1]) == int(s[1])
        for g, s in zip(geo, stored)
    ):
        st.actual_entry["chunks"] = [
            list(g) + [s[5]] for g, s in zip(geo, stored)
        ]
    else:
        st.actual_entry["chunks"] = stored
    return st


def _find_columnar_salvage(
    st: _FileState,
    raw: bytes,
    entry: dict | None,
    dtype,
    chunks: tuple,
    codec: str,
) -> None:
    """Salvage for a torn/segment-damaged v4 file: keep whole leading
    chunks whose segments all verify and decode, up to the longest
    recorded LOD boundary whose decoded logical prefix CRC matches.
    Chunks never straddle LOD boundaries, so every recorded boundary is
    chunk-aligned and the kept encoded bytes are a payload prefix whose
    segment offsets stay valid."""
    eff = entry
    if eff is None and st.trailer is not None:
        eff = st.trailer.checksum_entry
    if eff is None:
        return
    payload = raw[HEADER_BYTES:]
    parts = []
    good = 0
    for chunk in chunks:
        if len(chunk) < 6 or int(chunk[0]) != good:
            break
        solo = (0, int(chunk[1])) + tuple(chunk[2:])
        try:
            rows = decode_columnar_payload(
                payload, (solo,), codec, dtype, st.path
            )
        except (ChecksumError, DataFileError):
            break
        parts.append(rows)
        good += int(chunk[1])
    if not good:
        return
    logical = np.concatenate(parts).tobytes()
    crc, pos, kept = 0, 0, 0
    prefixes = []
    for count, stored in eff.get("prefixes", []):
        count, stored = int(count), int(stored)
        if count > good:
            break
        crc = zlib.crc32(
            logical[pos * st.rec_size : count * st.rec_size], crc
        )
        pos = count
        if crc != stored:
            break
        kept = count
        prefixes.append([count, crc])
    if not kept:
        return
    k, covered = 0, 0
    for chunk in chunks:
        if covered >= kept:
            break
        covered += int(chunk[1])
        k += 1
    if covered != kept:
        return  # boundary not chunk-aligned; refuse to guess
    kept_chunks = chunks[:k]
    enc_end = max(
        int(off) + int(ln) for c in kept_chunks for off, ln, _crc in c[5]
    )
    st.salvage_count = kept
    st.salvage_crc = zlib.crc32(payload[:enc_end])
    st.salvage_prefixes = prefixes
    st.keep_chunks = chunks_to_entry(kept_chunks)


def _find_salvage_prefix(st: _FileState, raw: bytes, entry: dict | None) -> None:
    """Longest prefix of a torn file that verifies against the manifest's
    per-LOD prefix checksums.  Levels-are-subsets makes that prefix a valid
    coarse representation — exactly what truncation keeps."""
    if entry is None:
        return
    avail = max(0, len(raw) - HEADER_BYTES) // st.rec_size
    crc, pos = 0, 0
    for count, stored in entry.get("prefixes", []):
        count, stored = int(count), int(stored)
        if count > avail:
            break
        crc = zlib.crc32(
            raw[HEADER_BYTES + pos * st.rec_size : HEADER_BYTES + count * st.rec_size],
            crc,
        )
        pos = count
        if crc != stored:
            break
        st.salvage_count, st.salvage_crc = count, crc
        st.salvage_prefixes.append([count, crc])


# -- planning ------------------------------------------------------------------


@dataclass
class _RepairPlan:
    """What the execute phase will do, fully decided before any write."""

    actions: list[RepairAction] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)
    rebuild_metadata: bool = False
    rebuild_manifest: bool = False
    invalidate_marker: bool = False
    meta_blob: bytes | None = None
    manifest: Manifest | None = None
    #: the generation this repair converges the dataset to; decides which
    #: manifest/meta paths are rewritten and what the commit marker is.
    target: ResolvedGeneration = field(
        default_factory=lambda: ResolvedGeneration(0)
    )
    #: rewrite CURRENT to this generation after everything else landed
    #: (None = classic single-manifest dataset, no pointer).
    write_current_gen: int | None = None
    #: dropped generation -> its unique data files (quarantined, never
    #: shared with a retained generation).
    drop_files: dict[int, list[str]] = field(default_factory=dict)
    #: stray chain state deleted outright (dropped gen manifests/meta,
    #: residue meta without a manifest, stray CURRENT on a gen-0 dataset).
    delete_paths: list[str] = field(default_factory=list)
    #: path -> (salvage_count, rec_size) for truncations.
    truncate: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: path -> (count, rec_size) for full-payload trailer rewrites.
    rewrite: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: path -> fresh trailer for truncate/rewrite targets.
    trailers: dict[str, RecoveryTrailer] = field(default_factory=dict)


def _norm_entry(entry: dict | None) -> dict | None:
    if entry is None:
        return None
    out = {
        "payload_crc32": int(entry.get("payload_crc32", -1)),
        "prefixes": [[int(c), int(crc)] for c, crc in entry.get("prefixes", [])],
    }
    if entry.get("chunks"):
        try:
            out["chunks"] = chunks_to_entry(chunks_from_entry(entry["chunks"]))
        except DataFileError:
            pass  # malformed — drop it; the plan regrafts from the payload
    if entry.get("codec") is not None:
        out["codec"] = str(entry["codec"])
    return out


def _donor_chunk_size(entry: dict | None, trailer: RecoveryTrailer | None) -> int:
    """Recover the writer's chunk size from whichever recorded index
    survives (the grid is regular, so the largest chunk IS the chunk size);
    0 when neither carries one — the dataset was written unchunked."""
    candidates = [entry.get("chunks") if entry else None]
    if trailer is not None and trailer.chunks:
        candidates.append(chunks_to_entry(trailer.chunks))
    for chunks in candidates:
        if not chunks:
            continue
        try:
            size = max(int(c[1]) for c in chunks)
        except (TypeError, ValueError, IndexError):
            continue
        if size >= 1:
            return size
    return 0


def _natural_key(path: str) -> tuple:
    return tuple(
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", path)
    )


def _plan(ds: Dataset, report: ScrubReport) -> _RepairPlan:
    """Decide every action from surviving state; performs reads only.

    The scrub report drives the plan twice over: its issue list scopes the
    per-file inspection (when the dataset-level state survived intact, only
    files the scrub flagged are re-read — a clean file's record and
    checksum entry carry over untouched), and its ``repairable`` tags pick
    the strategy — tagged issues resolve through lossless rebuilds from
    trailers or committed state, untagged ones through salvage truncation
    or quarantine.  Every decision is still re-verified against the actual
    bytes here — the plan trusts what it inspected, not what the scrub
    remembered.
    """
    plan = _RepairPlan()
    backend = ds.backend

    # Which generation does this repair converge to?  The resolver's own
    # discipline picks it (valid CURRENT first, else the newest fully
    # verifiable generation); when nothing verifies at all, fall back to
    # the newest generation present and rebuild it from trailers.
    try:
        target = resolve_generation(backend, actor=ds.actor)
    except FormatError:
        target = ResolvedGeneration(
            max(list_generations(backend), default=0),
            fallback=True,
            detail="no generation fully verifies; rebuilding the newest",
        )
    # The resolver only falls back to generations it can READ — but repair
    # can do better: when a valid CURRENT names a newer generation whose
    # spatial table still parses, the committed data survives even though
    # the manifest is damaged.  Rebuild that generation in place instead of
    # abandoning the committed append.
    if target.fallback:
        try:
            pointed = read_current(backend, actor=ds.actor)
        except FormatError:
            pointed = None
        if pointed is not None and pointed > target.generation:
            try:
                SpatialMetadata.read(
                    backend, generation_meta_path(pointed), actor=ds.actor
                )
            except (BackendError, FormatError):
                pass
            else:
                target = ResolvedGeneration(
                    pointed,
                    fallback=True,
                    detail=(
                        f"CURRENT names generation {pointed}; its table "
                        "survives, rebuilding the manifest in place"
                    ),
                )
    plan.target = target
    manifest_path, meta_path = target.manifest_path, target.meta_path

    # Generations the scrub condemned (crashed appends that never flipped
    # CURRENT, chained state that fails verification, lying filenames) are
    # dropped: their manifest/meta deleted, their unique files quarantined.
    _DROP_REASONS = {
        "generation-ahead": "crashed before its CURRENT flip (never committed)",
        "generation-damaged": "fails verification and is not the repair target",
        "generation-mismatch": "embedded generation contradicts its filename",
    }
    drop_reasons: dict[int, str] = {}
    for issue in report.issues:
        reason = _DROP_REASONS.get(issue.code)
        parsed = parse_generation_path(issue.path)
        if reason is None or parsed is None:
            continue
        gen = parsed[1]
        if gen != target.generation:
            drop_reasons.setdefault(gen, reason)
    drop_gens = sorted(drop_reasons)
    dropped_ns = tuple(f"g{g}_" for g in drop_gens)
    current_damaged = any(
        issue.code in ("current-corrupt", "current-missing", "current-dangling")
        for issue in report.issues
    )

    # Surviving dataset-level state, each piece probed independently.
    manifest: Manifest | None = None
    if backend.exists(manifest_path):
        try:
            manifest = Manifest.read(backend, manifest_path, actor=ds.actor)
        except FormatError:
            manifest = None
    metadata: SpatialMetadata | None = None
    raw_meta: bytes | None = None
    if backend.exists(meta_path):
        try:
            raw_meta = bytes(backend.read_file(meta_path))
            metadata = SpatialMetadata.from_bytes(raw_meta)
        except (BackendError, FormatError):
            metadata = None

    ref_records = (
        {r.file_path: r for r in metadata.records} if metadata is not None else {}
    )

    # Files referenced only by OTHER retained generations (e.g. the
    # pre-compaction inputs an old generation still serves to pinned
    # readers) are foreign to this target: not inventory, not orphans.
    foreign: set[str] = set()
    for gen in list_generations(backend):
        if gen == target.generation or gen in drop_reasons:
            continue
        try:
            _m, other_meta = load_generation(backend, gen)
        except FormatError:
            continue
        foreign.update(r.file_path for r in other_meta.records)
    if manifest is not None:
        foreign -= set(manifest.checksums)
    foreign -= set(ref_records)

    paths = set(ref_records)
    try:
        names = backend.listdir("data")
    except BackendError:
        names = []
    paths.update(
        f"data/{n}"
        for n in names
        if not n.startswith(".")
        and f"data/{n}" not in foreign
        and not (dropped_ns and n.startswith(dropped_ns))
    )
    ordered_paths = sorted(paths, key=_natural_key)

    known_dtype = manifest.dtype if manifest is not None else None
    lod = (manifest.lod_base, manifest.lod_scale) if manifest is not None else None
    known_attrs = metadata.attr_names if metadata is not None else None

    # Scope the inspection from the scrub report: with both dataset-level
    # pieces intact and no cross-check complaints, only flagged files need
    # their bytes re-read — everything else carries over verbatim.
    issue_paths = {issue.path for issue in report.issues}
    dataset_level_damage = (
        manifest is None
        or metadata is None
        or manifest_path in issue_paths
        or meta_path in issue_paths
    )
    inspect_paths = (
        ordered_paths
        if dataset_level_damage
        else [p for p in ordered_paths if p in issue_paths]
    )

    # Fan the per-file byte inspection out on the dataset's executor;
    # children merge back in submission order (executor-independent).
    tasks = [
        (
            lambda child, p=path: _inspect_file(
                ds,
                p,
                manifest.checksums.get(p) if manifest is not None else None,
                known_dtype,
                lod,
                child,
                attr_names=known_attrs,
            )
        )
        for path in inspect_paths
    ]
    states: dict[str, _FileState] = {}
    for outcome in ds.executor.run(tasks, ds.recorder):
        if outcome.recorder is not None:
            ds.recorder.merge(outcome.recorder)
        if outcome.error is not None:
            raise outcome.error
        states[outcome.value.path] = outcome.value

    trailers = [
        states[p].trailer
        for p in inspect_paths
        if states[p].trailer is not None
    ]
    if metadata is None and not trailers:
        plan.unresolved.append(
            "spatial.meta is lost and no data file carries a readable "
            "recovery trailer (pre-v3 dataset?) — cannot rebuild"
        )
        return plan
    if manifest is None and not trailers:
        plan.unresolved.append(
            "manifest.json is lost and no data file carries a readable "
            "recovery trailer (pre-v3 dataset?) — cannot rebuild"
        )
        return plan

    # Dataset-wide facts: from the manifest when it survived, else from the
    # trailers (identical across all files of one dataset by construction).
    donor = trailers[0] if trailers else None
    if manifest is not None:
        dtype = manifest.dtype
        lod_params = (
            manifest.lod_base,
            manifest.lod_scale,
            manifest.lod_heuristic,
            manifest.lod_seed,
        )
        writer_prov = manifest.writer
    else:
        assert donor is not None
        try:
            dtype = descr_to_dtype(donor.dtype_descr)
        except FormatError as exc:
            plan.unresolved.append(f"recovery trailer has a bad dtype: {exc}")
            return plan
        lod_params = (
            donor.lod_base,
            donor.lod_scale,
            donor.lod_heuristic,
            donor.lod_seed,
        )
        writer_prov = {"provenance": "rebuilt by repro repair"}
    descr = dtype_to_descr(dtype)

    # Second pass: a structurally valid file whose own trailer is
    # unreadable while the manifest is also lost could not recompute its
    # checksum entry above — the first inspection had no LOD parameters to
    # derive prefix boundaries from.  Those facts are dataset-wide, so once
    # a donor trailer establishes them the intact payload derives the entry
    # after all; re-inspect with the recovered dtype, LOD pair, attribute
    # order and chunk size.
    second_pass = [
        p
        for p in inspect_paths
        if states[p].status == "valid" and states[p].actual_entry is None
    ]
    if second_pass:
        donor_attrs = known_attrs
        if donor_attrs is None and donor is not None:
            donor_attrs = tuple(n for n, _lo, _hi in donor.attr_ranges)
        chunk_hint = 0
        for p in inspect_paths:
            chunk_hint = _donor_chunk_size(
                manifest.checksums.get(p) if manifest is not None else None,
                states[p].trailer,
            )
            if chunk_hint:
                break
        for p in second_pass:
            states[p] = _inspect_file(
                ds,
                p,
                manifest.checksums.get(p) if manifest is not None else None,
                dtype,
                (lod_params[0], lod_params[1]),
                ds.recorder,
                attr_names=donor_attrs,
                chunk_size_hint=chunk_hint,
            )

    records: list[MetadataRecord] = []
    checksums: dict[str, dict] = {}
    adopted = 0

    def add(kind: str, path: str, detail: str, salvaged: int = 0, lost: int = 0):
        plan.actions.append(RepairAction(kind, path, detail, salvaged, lost))

    def keep(record: MetadataRecord, entry: dict | None) -> None:
        records.append(record)
        if entry is not None:
            checksums[record.file_path] = entry

    def want_trailer(record: MetadataRecord, entry: dict) -> RecoveryTrailer:
        return trailer_for_record(
            record,
            dtype_descr=descr,
            lod_base=lod_params[0],
            lod_scale=lod_params[1],
            lod_heuristic=lod_params[2],
            lod_seed=lod_params[3],
            payload_crc32=entry["payload_crc32"],
            prefixes=entry["prefixes"],
            chunks=entry.get("chunks", []),
            codec=entry.get("codec"),
        )

    for path in ordered_paths:
        ref = ref_records.get(path)
        if path not in states:
            # Scrub found nothing wrong with this file; carry its committed
            # record and checksum entry over untouched.
            assert ref is not None and manifest is not None
            keep(ref, _norm_entry(manifest.checksums.get(path)))
            continue
        st = states[path]

        if st.status == "missing":
            assert ref is not None  # inventory only adds existing files
            add(
                ACTION_DROP_MISSING,
                path,
                "referenced data file is gone; dropping its record",
                lost=ref.particle_count,
            )
            continue

        if st.status == "unreadable":
            # Cannot even copy it aside; leave it in place and report.
            plan.unresolved.append(f"{path}: unreadable ({st.detail})")
            if ref is not None:
                keep(
                    ref,
                    _norm_entry(manifest.checksums.get(path))
                    if manifest is not None
                    else None,
                )
            continue

        if st.status == "corrupt":
            add(
                ACTION_QUARANTINE,
                path,
                st.detail,
                lost=ref.particle_count if ref is not None else st.header_count,
            )
            continue

        if st.status == "torn":
            if ref is not None and st.salvage_count > 0:
                record = MetadataRecord(
                    box_id=ref.box_id,
                    agg_rank=ref.agg_rank,
                    particle_count=st.salvage_count,
                    bounds=ref.bounds,
                    attr_ranges=dict(ref.attr_ranges),
                    gen=ref.gen,
                )
                entry = {
                    "payload_crc32": st.salvage_crc,
                    "prefixes": list(st.salvage_prefixes),
                }
                if st.codec is not None:
                    # v4 salvage keeps whole chunks: the truncated file's
                    # entry carries the surviving segment descriptors and
                    # the codec, so it stays a self-describing columnar
                    # file at reduced fidelity.
                    entry["chunks"] = list(st.keep_chunks)
                    entry["codec"] = st.codec
                plan.truncate[path] = (st.salvage_count, st.rec_size)
                plan.trailers[path] = want_trailer(record, entry)
                keep(record, entry)
                add(
                    ACTION_TRUNCATE,
                    path,
                    f"{st.detail}; keeping the longest checksum-verified "
                    f"LOD prefix",
                    salvaged=st.salvage_count,
                    lost=ref.particle_count - st.salvage_count,
                )
            else:
                add(
                    ACTION_QUARANTINE,
                    path,
                    st.detail
                    + ("; no prefix verifies" if ref is not None else "; no record"),
                    lost=ref.particle_count if ref is not None else 0,
                )
            continue

        # -- structurally valid file ---------------------------------------
        if ref is None and metadata is not None:
            add(
                ACTION_QUARANTINE,
                path,
                "not referenced by spatial.meta (aborted-write orphan)",
            )
            continue

        if ref is None:
            # Metadata is being rebuilt; adopt the record from the trailer.
            if st.trailer is None:
                add(
                    ACTION_QUARANTINE,
                    path,
                    f"spatial.meta lost and no usable trailer "
                    f"({st.trailer_detail or 'none present'})",
                    lost=st.header_count,
                )
                continue
            record = record_from_trailer(st.trailer)
            if record.file_path != path:
                add(
                    ACTION_QUARANTINE,
                    path,
                    f"trailer names aggregator {st.trailer.agg_rank} "
                    f"({record.file_path}), contradicting its own path",
                    lost=st.header_count,
                )
                continue
            adopted += 1
        elif st.header_count != ref.particle_count:
            if st.trailer is not None and st.trailer.agg_rank == ref.agg_rank:
                record = record_from_trailer(st.trailer)
                add(
                    ACTION_REBUILD_ENTRY,
                    path,
                    f"spatial.meta says {ref.particle_count} particles, file "
                    f"holds {st.header_count}; trusting the file's trailer",
                )
            else:
                add(
                    ACTION_QUARANTINE,
                    path,
                    f"spatial.meta says {ref.particle_count} particles, file "
                    f"holds {st.header_count}, and no trailer arbitrates",
                    lost=ref.particle_count,
                )
                continue
        else:
            record = ref

        # Checksum entry: keep the manifest's when it matches the bytes,
        # else take the recomputed one (or the trailer's, matching payload).
        old_entry = (
            _norm_entry(manifest.checksums.get(path)) if manifest is not None else None
        )
        entry = st.actual_entry
        if entry is None and st.trailer is not None:
            t_entry = _norm_entry(st.trailer.checksum_entry)
            if int(t_entry["payload_crc32"]) == st.payload_crc32:
                entry = t_entry
        if entry is None:
            entry = old_entry
        if entry is None:
            plan.unresolved.append(
                f"{path}: no way to derive checksum entry (manifest and "
                "trailer both lost)"
            )
            keep(record, None)
            continue
        already_noted = any(
            a.path == path and a.kind == ACTION_REBUILD_ENTRY
            for a in plan.actions
        )
        if manifest is not None and old_entry != entry and not already_noted:
            add(
                ACTION_REBUILD_ENTRY,
                path,
                "manifest checksum entry disagrees with the data file; "
                "recomputed from the payload"
                if old_entry is not None
                else "manifest entry missing; recomputed from the payload",
            )
        keep(record, entry)

        # Trailer health: v3 files must carry a trailer agreeing with the
        # committed state; rewrite it from that state when they don't.
        if st.version >= 3:
            wanted = want_trailer(record, entry)
            if st.trailer != wanted:
                plan.rewrite[path] = (st.header_count, st.rec_size)
                plan.trailers[path] = wanted
                add(
                    ACTION_REWRITE_TRAILER,
                    path,
                    st.trailer_detail
                    or "recovery trailer disagrees with committed state",
                )

    # -- assemble the target dataset-level state ---------------------------
    try:
        table = SpatialMetadata(
            sorted(records, key=lambda r: r.box_id),
            attr_names=metadata.attr_names
            if metadata is not None
            else tuple(name for name, _lo, _hi in donor.attr_ranges),
        )
    except MetadataError as exc:
        # Refuse to act on a plan whose end state would not even validate
        # (e.g. two adopted trailers claiming the same box) — report instead.
        plan.unresolved.append(f"rebuilt table is inconsistent: {exc}")
        plan.actions = []
        plan.truncate.clear()
        plan.rewrite.clear()
        plan.trailers.clear()
        plan.drop_files.clear()
        plan.delete_paths.clear()
        plan.write_current_gen = None
        return plan
    plan.meta_blob = table.to_bytes()
    plan.rebuild_metadata = raw_meta is None or plan.meta_blob != raw_meta
    if plan.rebuild_metadata:
        detail = f"{len(table)} records"
        if adopted:
            detail += f" ({adopted} adopted from recovery trailers)"
        plan.actions.insert(
            0, RepairAction(ACTION_REBUILD_METADATA, meta_path, detail)
        )

    new_manifest = Manifest(
        dtype=dtype,
        num_files=len(table),
        total_particles=table.total_particles,
        lod_base=lod_params[0],
        lod_scale=lod_params[1],
        lod_heuristic=lod_params[2],
        lod_seed=lod_params[3],
        writer=writer_prov,
        checksums={p: checksums[p] for p in sorted(checksums, key=_natural_key)},
        spatial_meta_crc32=zlib.crc32(plan.meta_blob),
        generation=target.generation,
        parent=(
            manifest.parent
            if manifest is not None and manifest.generation == target.generation
            else (target.generation - 1 if target.generation > 0 else None)
        ),
    )
    plan.manifest = new_manifest
    plan.rebuild_manifest = (
        manifest is None or new_manifest.to_json() != manifest.to_json()
    )
    if plan.rebuild_manifest:
        plan.actions.insert(
            0 if not plan.rebuild_metadata else 1,
            RepairAction(
                ACTION_REBUILD_MANIFEST,
                manifest_path,
                "committed state rewritten from repaired files"
                if manifest is not None
                else "committed state rebuilt from recovery trailers",
            ),
        )

    # -- chain hygiene: drops, residue, and the CURRENT pointer -------------
    target_refs = set(checksums) | set(ref_records) | foreign
    for gen in drop_gens:
        prefix = f"g{gen}_"
        unique = sorted(
            (
                f"data/{n}"
                for n in names
                if n.startswith(prefix) and f"data/{n}" not in target_refs
            ),
            key=_natural_key,
        )
        plan.drop_files[gen] = unique
        plan.delete_paths.append(generation_manifest_path(gen))
        plan.delete_paths.append(generation_meta_path(gen))
        plan.actions.append(
            RepairAction(
                ACTION_DROP_GENERATION,
                generation_manifest_path(gen),
                f"generation {gen} {drop_reasons[gen]}",
            )
        )
        plan.actions.extend(
            RepairAction(
                ACTION_QUARANTINE,
                path,
                f"belongs to dropped generation {gen}",
            )
            for path in unique
        )
    for issue in report.issues:
        if issue.code == "generation-residue":
            plan.delete_paths.append(issue.path)
            plan.actions.append(
                RepairAction(
                    ACTION_DROP_GENERATION,
                    issue.path,
                    "spatial table without its manifest (aborted commit "
                    "residue)",
                )
            )
    if target.generation > 0:
        # Chained datasets always finish by (re)pointing CURRENT at the
        # converged generation — this is the repair's own commit flip.
        plan.write_current_gen = target.generation
        if current_damaged:
            plan.actions.append(
                RepairAction(
                    ACTION_REWRITE_CURRENT,
                    CURRENT_PATH,
                    f"pointer rewritten to committed generation "
                    f"{target.generation}",
                )
            )
    elif backend.exists(CURRENT_PATH) and (current_damaged or drop_gens):
        plan.delete_paths.append(CURRENT_PATH)
        plan.actions.append(
            RepairAction(
                ACTION_REWRITE_CURRENT,
                CURRENT_PATH,
                "stray pointer removed (classic single-manifest dataset)",
            )
        )

    if target.generation == 0:
        plan.invalidate_marker = (
            backend.exists(MANIFEST_PATH) and plan.rebuild_manifest
        )
    else:
        plan.invalidate_marker = backend.exists(CURRENT_PATH) and (
            plan.rebuild_manifest or plan.rebuild_metadata
        )
    return plan


# -- execution -----------------------------------------------------------------


def _quarantine_path(ds: Dataset, path: str, rec: Recorder) -> None:
    """Move ``path`` under ``quarantine/`` (copy + delete; backends have no
    rename primitive, and a copy keeps the evidence even if the delete
    fails)."""
    raw = ds.retry.call(ds.backend.read_file, path, recorder=rec)
    ds.retry.call(
        ds.backend.write_file,
        f"{QUARANTINE_DIR}/{path}",
        bytes(raw),
        actor=ds.actor,
        recorder=rec,
    )
    ds.retry.call(ds.backend.delete, path, recorder=rec)


def _rewrite_file(
    ds: Dataset,
    path: str,
    count: int,
    rec_size: int,
    trailer: RecoveryTrailer,
    rec: Recorder,
) -> None:
    """Rebuild a file image around the (verified) first ``count`` records —
    the truncate and rewrite-trailer primitive.  A trailer carrying a codec
    marks a columnar (v4) file: the kept payload length comes from its
    segment descriptors (encoded bytes, not ``count * rec_size``)."""
    raw = bytes(ds.retry.call(ds.backend.read_file, path, recorder=rec))
    if trailer.codec is not None:
        enc_len = (
            columnar_payload_length(trailer.chunks) if trailer.chunks else 0
        )
        payload = raw[HEADER_BYTES : HEADER_BYTES + enc_len]
        blob = build_data_blob(
            payload, rec_size, count, trailer, version=DATA_VERSION_COLUMNAR
        )
    else:
        payload = raw[HEADER_BYTES : HEADER_BYTES + count * rec_size]
        blob = build_data_blob(payload, rec_size, count, trailer)
    ds.retry.call(
        ds.backend.write_file, path, blob, actor=ds.actor, recorder=rec
    )


def _execute(ds: Dataset, plan: _RepairPlan, report: RepairReport) -> None:
    """Run the plan under the writer's two-phase discipline: invalidate the
    commit marker, fix the data files (fanned on the executor), then write
    ``spatial.meta``, then ``manifest.json`` last."""
    rec = ds.recorder
    if plan.invalidate_marker:
        marker = MANIFEST_PATH if plan.target.generation == 0 else CURRENT_PATH
        ds.retry.call(ds.backend.delete, marker, missing_ok=True, recorder=rec)

    # Stray chain state goes first, manifest-before-meta per dropped
    # generation (deleting the manifest un-commits it; a crash mid-drop
    # leaves residue the next scrub still recognises).
    for path in plan.delete_paths:
        ds.retry.call(ds.backend.delete, path, missing_ok=True, recorder=rec)

    file_actions = [
        a
        for a in plan.actions
        if a.kind in (ACTION_QUARANTINE, ACTION_TRUNCATE, ACTION_REWRITE_TRAILER)
    ]

    def apply(action: RepairAction, child: Recorder) -> RepairAction:
        if action.kind == ACTION_QUARANTINE:
            _quarantine_path(ds, action.path, child)
        elif action.kind == ACTION_TRUNCATE:
            count, rec_size = plan.truncate[action.path]
            _rewrite_file(
                ds, action.path, count, rec_size, plan.trailers[action.path], child
            )
        else:
            count, rec_size = plan.rewrite[action.path]
            _rewrite_file(
                ds, action.path, count, rec_size, plan.trailers[action.path], child
            )
        return action

    tasks = [
        (lambda child, a=action: apply(a, child)) for action in file_actions
    ]
    for outcome in ds.executor.run(tasks, rec):
        if outcome.recorder is not None:
            rec.merge(outcome.recorder)
        action = file_actions[outcome.index]
        if outcome.error is not None:
            report.unresolved.append(f"{action.path}: {action.kind} failed: "
                                     f"{outcome.error}")
            continue
        action.executed = True

    if plan.rebuild_metadata:
        assert plan.meta_blob is not None
        ds.retry.call(
            ds.backend.write_file, plan.target.meta_path, plan.meta_blob,
            actor=ds.actor, recorder=rec,
        )
    if plan.rebuild_manifest:
        assert plan.manifest is not None
        ds.retry.call(
            ds.backend.write_file,
            plan.target.manifest_path,
            plan.manifest.to_json().encode("utf-8"),
            actor=ds.actor,
            recorder=rec,
        )
    if plan.write_current_gen is not None:
        # The repair's own commit flip: everything above is now the
        # committed state the pointer names.
        ds.retry.call(
            write_current, ds.backend, plan.write_current_gen,
            actor=ds.actor, recorder=rec,
        )
    for action in plan.actions:
        if action.kind in (
            ACTION_REBUILD_METADATA,
            ACTION_REBUILD_MANIFEST,
            ACTION_REBUILD_ENTRY,
            ACTION_DROP_MISSING,
            ACTION_DROP_GENERATION,
            ACTION_REWRITE_CURRENT,
        ):
            action.executed = True
    for action in plan.actions:
        if action.executed:
            rec.add(REPAIR_ACTIONS, 1, key=(action.kind,))
            rec.event(
                EV_REPAIR_ACTION,
                kind=action.kind,
                path=action.path,
                particles_salvaged=action.particles_salvaged,
                particles_lost=action.particles_lost,
            )


# -- entry points --------------------------------------------------------------


def repair_dataset(
    source: Dataset | FileBackend,
    report: ScrubReport | None = None,
    *,
    dry_run: bool = False,
) -> RepairReport:
    """Scrub (unless given a report), plan, execute, and verify one dataset.

    With ``dry_run=True`` the plan is returned unexecuted — no write, delete
    or quarantine happens.  Otherwise the plan runs under the dataset's
    retry policy and executor, and a verification scrub confirms the result
    (:attr:`RepairReport.issues_remaining`).
    """
    ds = as_dataset(source)
    out = RepairReport(dry_run=dry_run)

    if report is None:
        with ds.recorder.span(PHASE_REPAIR_SCRUB, cat="repair"):
            report = ds.scrub()
    if report.ok:
        out.clean = True
        return out

    with ds.recorder.span(PHASE_REPAIR_PLAN, cat="repair"):
        plan = _plan(ds, report)
    out.actions = plan.actions
    out.unresolved.extend(plan.unresolved)
    out.rebuilt_metadata = plan.rebuild_metadata
    out.rebuilt_manifest = plan.rebuild_manifest
    if dry_run:
        return out

    with ds.recorder.span(PHASE_REPAIR_EXECUTE, cat="repair"):
        _execute(ds, plan, out)
        ds.recorder.add(REPAIR_PARTICLES_SALVAGED, out.particles_salvaged)
        ds.recorder.add(REPAIR_PARTICLES_LOST, out.particles_lost)
        ds.recorder.add(REPAIR_FILES_QUARANTINED, out.files_quarantined)
    ds.invalidate_cache()

    with ds.recorder.span(PHASE_REPAIR_VERIFY, cat="repair"):
        verify = ds.scrub()
    out.issues_remaining = [
        f"{i.code} {i.path}: {i.detail}" for i in verify.issues
    ]
    return out


# -- series-level recovery -----------------------------------------------------


@dataclass
class SeriesRepairReport:
    """Aggregated outcome of repairing every timestep of a series."""

    dry_run: bool = False
    #: ``(step, per-step report)`` for every indexed timestep.
    steps: list = field(default_factory=list)
    #: Step directories quarantined whole (aborted appends, not in the index).
    quarantined_steps: list[str] = field(default_factory=list)
    unresolved: list[str] = field(default_factory=list)

    @property
    def particles_salvaged(self) -> int:
        return sum(r.particles_salvaged for _s, r in self.steps)

    @property
    def particles_lost(self) -> int:
        return sum(r.particles_lost for _s, r in self.steps)

    @property
    def clean(self) -> bool:
        return (
            not self.quarantined_steps
            and not self.unresolved
            and all(r.clean for _s, r in self.steps)
        )

    @property
    def ok(self) -> bool:
        return not self.unresolved and all(r.ok for _s, r in self.steps)

    @property
    def data_loss(self) -> bool:
        return any(r.data_loss for _s, r in self.steps)

    @property
    def exit_code(self) -> int:
        if self.clean:
            return 0
        if self.dry_run or not self.ok or self.data_loss:
            return 1
        # Repaired losslessly, but an aborted append was swept aside: that
        # is damage found, even though no committed step lost a particle.
        return 1 if self.quarantined_steps else 0

    def summary_lines(self) -> list[str]:
        lines = [f"indexed steps     : {len(self.steps)}"]
        for step, rep in self.steps:
            if rep.clean:
                lines.append(f"step {step:6d}       : clean")
                continue
            lines.append(f"step {step:6d}       :")
            lines.extend(f"  {line}" for line in rep.summary_lines())
        for prefix in self.quarantined_steps:
            lines.append(
                f"quarantined step  : {prefix} (aborted append, not in "
                "series.json)"
            )
        lines.extend(f"unresolved: {reason}" for reason in self.unresolved)
        if self.clean:
            lines.append("series is clean; nothing to repair")
        elif self.dry_run:
            lines.append("dry run: no changes were made")
        elif not self.ok:
            lines.append("series repair incomplete: restore from a replica")
        else:
            lines.append("series repaired")
        return lines


def repair_series(
    source: Dataset | FileBackend,
    *,
    dry_run: bool = False,
) -> SeriesRepairReport:
    """Repair every indexed timestep; quarantine un-indexed step directories.

    ``series.json`` is the series-level commit marker (rank 0 appends to it
    only after a step's own two-phase commit), so a ``t######`` directory
    absent from it is an aborted append: its contents are moved under
    ``quarantine/`` untouched.  The index also holds per-step simulation
    times that exist nowhere else, so a corrupt index is unresolved, not
    guessed.
    """
    from repro.io.prefix import PrefixBackend
    from repro.series.index import SeriesIndex

    root = as_dataset(source)
    out = SeriesRepairReport(dry_run=dry_run)

    index = None
    try:
        index = SeriesIndex.read(root.backend, actor=root.actor)
    except FormatError as exc:
        out.unresolved.append(
            f"series index unusable ({exc}); step times are recorded nowhere "
            "else, so the index cannot be rebuilt"
        )

    indexed: set[str] = set()
    if index is not None:
        for info in index:
            indexed.add(info.prefix)
            step_ds = Dataset(
                PrefixBackend(root.backend, info.prefix),
                actor=root.actor,
                strict=root.strict,
                retry=root.retry,
                recorder=root.recorder,
                executor=root.executor,
            )
            out.steps.append(
                (info.step, repair_dataset(step_ds, dry_run=dry_run))
            )

    if index is not None:
        try:
            names = root.backend.listdir("")
        except BackendError:
            names = []
        for name in sorted(names):
            if not re.fullmatch(r"t\d{6}", name) or name in indexed:
                continue
            # An empty un-indexed step directory is residue of a previous
            # quarantine (POSIX backends delete files but keep directories),
            # not fresh damage — skip it so repair stays idempotent.
            files = _step_files(root.backend, name)
            if not files:
                continue
            out.quarantined_steps.append(name)
            if dry_run:
                continue
            for path in files:
                _quarantine_path(root, path, root.recorder)
                root.recorder.add(REPAIR_ACTIONS, 1, key=(ACTION_QUARANTINE,))
                root.recorder.event(
                    EV_REPAIR_ACTION,
                    kind=ACTION_QUARANTINE,
                    path=path,
                    particles_salvaged=0,
                    particles_lost=0,
                )
    return out


def _step_files(backend: FileBackend, prefix: str) -> list[str]:
    """Every file under one step directory (the known dataset layout)."""
    out: list[str] = []
    try:
        names = backend.listdir(prefix)
    except BackendError:
        return out
    for name in sorted(names):
        if name == "data":
            try:
                subs = backend.listdir(f"{prefix}/data")
            except BackendError:
                subs = []
            out.extend(f"{prefix}/data/{n}" for n in sorted(subs))
        else:
            out.append(f"{prefix}/{name}")
    return out
