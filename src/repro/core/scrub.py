"""Dataset scrubbing: verify every on-disk invariant and report damage.

A scrub walks one dataset bottom-up and checks everything the format
guarantees:

* the manifest parses and its version is supported;
* the spatial metadata table parses, its whole-table CRC matches, and the
  manifest's recorded ``spatial_meta_crc32`` agrees with the bytes on disk;
* every data file the table references exists, has a valid header, the
  header's particle count matches the table's, the byte length is exact,
  the v2 footer CRC matches, and the manifest's per-LOD prefix checksums
  recompute correctly;
* no orphan data files sit in ``data/`` (leftovers of an aborted write);
* the generation chain is structurally sound: the checksummed ``CURRENT``
  pointer parses and names an existing generation, every chained manifest
  agrees with its filename, no generation sits uncommitted ahead of
  ``CURRENT`` (an append that crashed before its commit point), and no
  ``spatial.gen-N.meta`` survives without its manifest (GC crash residue).

The scrub also surfaces the **quarantine inventory** — files a previous
repair moved to ``quarantine/`` — in :attr:`ScrubReport.quarantined`.
Quarantined files are prior, already-accounted losses, not live damage, so
they are reported informationally and never fail the scrub.

The outcome is a :class:`ScrubReport` of typed :class:`ScrubIssue` entries.
Each issue is tagged **repairable** when :mod:`repro.core.repair` can fix it
*losslessly* — rebuilding metadata/manifest state from the v3 recovery
trailers, or rewriting a damaged trailer from committed state.  Issues left
untagged cost data to resolve: repair salvages what it can (truncating a
torn file to its longest valid LOD prefix) and quarantines the rest.  The
repair planner consumes these tags to pick its strategy per issue.

:func:`dataset_is_complete` is the cheap commit-marker probe used by the
writer's two-phase protocol: ``manifest.json`` is written last, so a
dataset without a parseable manifest (or with manifest-referenced pieces
missing) is an aborted write, never a valid dataset.

Both entry points accept a :class:`~repro.dataset.Dataset` (or anything
:func:`~repro.dataset.as_dataset` coerces) and run the per-file
verification work — the expensive part of a scrub — on the dataset's
:class:`~repro.io.executor.IoExecutor`.  Each file's checks are
independent and produce a partial report; partials merge back in metadata
order, so the final :class:`ScrubReport` is identical whichever executor
ran the scrub.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.dataset import Dataset, as_dataset
from repro.errors import (
    BackendError,
    ChecksumError,
    DataFileError,
    FormatError,
    MetadataError,
)
from repro.format.chunks import FileChunkIndex, build_chunk_entry, chunks_from_entry
from repro.format.datafile import (
    DATA_VERSION_COLUMNAR,
    FOOTER_BYTES,
    HEADER_BYTES,
    columnar_payload_length,
    compute_file_checksums,
    decode_columnar_payload,
    extract_recovery_trailer,
    peek_data_header,
    prefix_checksum_boundaries,
    read_data_file,
    read_recovery_trailer,
    scan_columnar_segments,
    verify_data_footer,
)
from repro.format.generations import (
    CURRENT_PATH,
    ResolvedGeneration,
    generation_manifest_path,
    list_generations,
    load_generation,
    parse_generation_path,
    read_current,
    resolve_generation,
    verify_generation,
)
from repro.format.manifest import MANIFEST_PATH, Manifest
from repro.format.metadata import META_PATH, SpatialMetadata
from repro.io.backend import FileBackend
from repro.particles.batch import ParticleBatch

#: Where repair parks unrecoverable bytes instead of deleting them (defined
#: here, next to the inventory scan; re-exported by :mod:`repro.core.repair`).
QUARANTINE_DIR = "quarantine"

__all__ = [
    "QUARANTINE_DIR",
    "ScrubIssue",
    "ScrubReport",
    "scrub_dataset",
    "dataset_is_complete",
]


@dataclass(frozen=True)
class ScrubIssue:
    """One verified-invariant violation found by a scrub."""

    path: str
    code: str
    detail: str
    #: True when ``repro repair`` can fix this losslessly (rebuild from
    #: recovery trailers / committed state); False when resolving it costs
    #: data (salvage-truncate or quarantine).
    repairable: bool = False


@dataclass
class ScrubReport:
    """Everything a scrub learned about one dataset."""

    issues: list[ScrubIssue] = field(default_factory=list)
    files_checked: int = 0
    bytes_verified: int = 0
    #: The dataset carries its commit marker and all referenced pieces.
    complete: bool = False
    #: Generation the scrub verified (0 for a classic single-manifest
    #: dataset; the committed/resolved generation for a chained one).
    generation: int = 0
    #: Files a previous repair moved to ``quarantine/`` — prior losses,
    #: surfaced informationally (they never make the scrub fail).
    quarantined: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    @property
    def codes(self) -> set[str]:
        return {issue.code for issue in self.issues}

    def add(self, path: str, code: str, detail: str, repairable: bool = False) -> None:
        self.issues.append(ScrubIssue(path, code, detail, repairable))

    def summary_lines(self) -> list[str]:
        """Human-readable report (the ``repro scrub`` output body)."""
        lines = [
            f"files checked   : {self.files_checked}",
            f"bytes verified  : {self.bytes_verified}",
            f"generation      : {self.generation}",
            f"complete        : {'yes' if self.complete else 'no'}",
            f"quarantined     : {len(self.quarantined)}",
            f"issues          : {len(self.issues)}",
        ]
        for name in self.quarantined:
            lines.append(f"  [quarantined] {name}")
        for issue in self.issues:
            tag = "repairable" if issue.repairable else "CORRUPT"
            lines.append(f"  [{tag}] {issue.code} {issue.path}: {issue.detail}")
        if self.ok:
            lines.append("dataset is clean")
        elif all(i.repairable for i in self.issues):
            lines.append(
                "dataset is repairable without data loss: "
                "run `repro repair` to converge"
            )
        else:
            lines.append(
                "dataset has damage needing salvage: run `repro repair` "
                "(truncates/quarantines unrecoverable pieces) or restore "
                "from a replica"
            )
        return lines


def dataset_is_complete(source: Dataset | FileBackend) -> bool:
    """Whether the dataset committed: marker present, parseable, and every
    piece it references on disk.

    The two-phase writer orders ``data/*`` → ``spatial.meta`` → marker
    (``manifest.json`` for a classic write, the ``CURRENT`` flip for a
    chained commit), so an interrupted write at *any* point leaves this
    returning False — either the marker is missing/torn, or it never covers
    missing pieces (the marker is written only after everything else).

    Deliberately strict about the chain: a damaged ``CURRENT``, or a
    missing one while chained manifests exist, means the commit state is
    ambiguous — that reads as incomplete even though resolution could fall
    back.  An explicitly pinned facade probes its pinned generation.
    """
    ds = as_dataset(source)
    backend = ds.backend
    pin = ds.pinned_generation
    if pin is None:
        try:
            resolved = resolve_generation(backend, actor=ds.actor)
        except FormatError:
            return False
        if resolved.fallback:
            return False
        gen = resolved.generation
    else:
        gen = pin
    return verify_generation(backend, gen, actor=ds.actor)


def _quarantine_inventory(backend: FileBackend) -> list[str]:
    """Paths (relative to ``quarantine/``) of previously quarantined files.

    Stack-based walk that only relies on ``listdir``/``exists``: a child
    with a non-empty listing is a directory; an empty listing plus
    existence means a file (both the virtual and POSIX backends satisfy
    this — POSIX ``listdir`` on a file raises, which is caught).
    """
    out: list[str] = []
    stack = [QUARANTINE_DIR]
    while stack:
        prefix = stack.pop()
        try:
            names = backend.listdir(prefix)
        except BackendError:
            names = []
        for name in sorted(names, reverse=True):
            child = f"{prefix}/{name}"
            try:
                children = backend.listdir(child)
            except BackendError:
                children = []
            if children:
                stack.append(child)
            elif backend.exists(child):
                out.append(child[len(QUARANTINE_DIR) + 1 :])
    return sorted(out)


def _scrub_chain(
    backend: FileBackend, report: ScrubReport
) -> ResolvedGeneration | None:
    """Verify the generation chain's structure; returns the scrub target.

    Adds the typed pointer/chain issues (all repairable — the repair
    subsystem rewrites ``CURRENT`` and drops uncommitted or damaged
    generations) and decides which generation the deep per-file checks run
    against.  ``None`` means nothing on disk resolves at all.
    """
    gens = list_generations(backend)
    chained = [g for g in gens if g > 0]
    current: int | None = None
    current_valid = False
    if backend.exists(CURRENT_PATH):
        try:
            current = read_current(backend)
            current_valid = True
        except FormatError as exc:
            report.add(CURRENT_PATH, "current-corrupt", str(exc), repairable=True)
    elif chained:
        report.add(
            CURRENT_PATH,
            "current-missing",
            "generation manifests exist but the CURRENT pointer is absent",
            repairable=True,
        )
    if current_valid and current not in gens:
        report.add(
            CURRENT_PATH,
            "current-dangling",
            f"CURRENT names generation {current} but no such manifest exists",
            repairable=True,
        )
        current_valid = False

    try:
        target = resolve_generation(backend)
    except FormatError as exc:
        report.add(CURRENT_PATH, "chain-unresolvable", str(exc))
        return None

    # The committed baseline: what CURRENT says when it is trustworthy,
    # else what resolution fell back to.  Generations past it were never
    # committed (an append that crashed before its CURRENT flip).
    baseline = current if current_valid else target.generation
    for g in gens:
        if g == target.generation:
            continue
        path = generation_manifest_path(g)
        try:
            m = Manifest.read(backend, path)
        except FormatError as exc:
            report.add(
                path,
                "generation-damaged",
                f"generation {g} manifest unusable: {exc}",
                repairable=True,
            )
            continue
        if m.generation != g:
            report.add(
                path,
                "generation-mismatch",
                f"file is named generation {g} but records generation "
                f"{m.generation}",
                repairable=True,
            )
        elif g > baseline:
            report.add(
                path,
                "generation-ahead",
                f"generation {g} was never committed "
                f"(the committed generation is {baseline})",
                repairable=True,
            )
        elif not verify_generation(backend, g):
            report.add(
                path,
                "generation-damaged",
                f"generation {g} no longer fully verifies",
                repairable=True,
            )

    # GC/append crash residue: a spatial table whose manifest is gone.
    try:
        names = backend.listdir("")
    except BackendError:
        names = []
    for name in sorted(names):
        parsed = parse_generation_path(name)
        if parsed is not None and parsed[0] == "meta" and parsed[1] not in gens:
            report.add(
                name,
                "generation-residue",
                f"spatial table for generation {parsed[1]} has no manifest "
                "(append or GC crash residue)",
                repairable=True,
            )
    return target


def _chunk_entry_error(entry, batch, manifest: Manifest, attr_names, path: str) -> str | None:
    """Why a recorded ``chunks`` entry disagrees with the decoded payload.

    Structural validation first (tiling, shapes), then an exact recompute:
    the chunk grid is fully determined by the LOD boundaries and the chunk
    size (recoverable as the largest recorded chunk), and bounds/attr
    ranges are float64 min/max of the actual particles, so a clean index
    must match the rebuilt one bit-for-bit.
    """
    try:
        FileChunkIndex.from_entry(entry, len(batch), path=path)
        recorded = chunks_from_entry(entry)
    except DataFileError as exc:
        return str(exc)
    chunk_size = max(c[1] for c in recorded)
    expected = build_chunk_entry(
        batch,
        chunk_size,
        prefix_checksum_boundaries(
            len(batch), manifest.lod_base, manifest.lod_scale
        ),
        tuple(attr_names),
    )
    # Compare the geometry (start/count/bounds/attr-range) elements only:
    # columnar entries carry a sixth segment-descriptor element that the
    # decoded payload cannot reproduce (it describes *encoded* bytes, which
    # the per-segment CRC scan verifies instead).
    if tuple(c[:5] for c in recorded) != chunks_from_entry(expected):
        return (
            "recorded chunk bounds/ranges disagree with the payload "
            f"({len(recorded)} chunks, size {chunk_size})"
        )
    return None


def _scrub_data_file(
    backend: FileBackend, manifest: Manifest, rec, attr_names=()
) -> ScrubReport:
    """Verify one referenced data file; returns a partial report.

    Pure with respect to shared state (nothing is mutated), which is what
    lets :func:`scrub_dataset` fan the per-file checks out on an executor
    and merge the partials back in metadata order.
    """
    report = ScrubReport()
    path = rec.file_path
    try:
        size = backend.size(path) if backend.exists(path) else None
    except BackendError:
        size = None
    if size is None:
        report.add(path, "data-missing", "referenced by spatial.meta but absent")
        return report
    report.files_checked += 1

    try:
        version, header_count = peek_data_header(backend, path)
    except (BackendError, DataFileError) as exc:
        report.add(path, "data-header", str(exc))
        return report
    if header_count != rec.particle_count:
        report.add(
            path,
            "count-mismatch",
            f"header says {header_count} particles, "
            f"spatial.meta says {rec.particle_count}",
        )
        return report

    recorded = manifest.checksums.get(path)
    stored_payload_crc: int | None = None
    if version >= DATA_VERSION_COLUMNAR:
        # v4: verify at *segment* granularity first, so damage is pinpointed
        # to one chunk/column instead of "the file's CRC is wrong".  The
        # segment descriptors come from the recovery trailer (self-describing
        # path) or, when the trailer is damaged, from the manifest entry —
        # the bottom-of-function trailer checks still flag the damage.
        try:
            raw = backend.read_file(path)
        except BackendError as exc:
            report.add(path, "data-unreadable", str(exc))
            return report
        chunks: tuple = ()
        codec = "none"
        try:
            trailer = extract_recovery_trailer(raw, path)
            chunks, codec = trailer.chunks, trailer.codec or "none"
        except (ChecksumError, DataFileError):
            pass  # reported by the shared trailer checks below
        if not chunks and recorded and recorded.get("chunks"):
            chunks = chunks_from_entry(recorded["chunks"])
            codec = str(recorded.get("codec") or "none")
        if header_count and not chunks:
            report.add(
                path,
                "data-corrupt",
                "columnar file has no usable segment descriptors "
                "(recovery trailer and manifest entry both lost)",
            )
            return report
        try:
            enc_len = columnar_payload_length(chunks) if chunks else 0
        except DataFileError as exc:
            report.add(path, "data-corrupt", str(exc))
            return report
        expected_len = HEADER_BYTES + enc_len + FOOTER_BYTES
        if len(raw) < expected_len:
            report.add(
                path,
                "data-truncated",
                f"expected {expected_len} bytes for {header_count} "
                f"particles, found {len(raw)}",
            )
            return report
        bad = scan_columnar_segments(raw, chunks, manifest.dtype)
        if bad:
            for _ci, _col, detail in bad:
                report.add(path, "segment-checksum", detail)
            return report
        try:
            verify_data_footer(raw[:expected_len], path)
        except ChecksumError as exc:
            report.add(path, "data-checksum", str(exc))
            return report
        try:
            arr = decode_columnar_payload(
                raw[HEADER_BYTES : HEADER_BYTES + enc_len],
                chunks,
                codec,
                manifest.dtype,
                path,
            )
        except (ChecksumError, DataFileError) as exc:
            report.add(path, "data-corrupt", str(exc))
            return report
        if len(arr) != header_count:
            report.add(
                path,
                "data-corrupt",
                f"chunk index covers {len(arr)} particles, header says "
                f"{header_count}",
            )
            return report
        batch = ParticleBatch(arr)
        stored_payload_crc = zlib.crc32(raw[HEADER_BYTES : HEADER_BYTES + enc_len])
    else:
        try:
            batch = read_data_file(backend, path, manifest.dtype)
        except ChecksumError as exc:
            report.add(path, "data-checksum", str(exc))
            return report
        except DataFileError as exc:
            msg = str(exc)
            if "expected" in msg and "bytes" in msg:
                code = "data-truncated"
            elif "record size" in msg:
                code = "dtype-mismatch"
            else:
                code = "data-corrupt"
            report.add(path, code, msg)
            return report
        except BackendError as exc:
            report.add(path, "data-unreadable", str(exc))
            return report
    report.bytes_verified += size

    if recorded is not None:
        actual = compute_file_checksums(
            batch, manifest.lod_base, manifest.lod_scale
        )
        if stored_payload_crc is not None:
            # v4 manifests record the CRC of the *encoded* payload bytes.
            actual["payload_crc32"] = stored_payload_crc
        if int(recorded.get("payload_crc32", -1)) != actual["payload_crc32"]:
            report.add(
                path,
                "manifest-checksum-mismatch",
                "manifest payload_crc32 disagrees with the data file",
                repairable=True,
            )
        elif [list(p) for p in recorded.get("prefixes", [])] != actual["prefixes"]:
            report.add(
                path,
                "prefix-checksum-mismatch",
                "per-LOD prefix checksums disagree with the data file",
                repairable=True,
            )
        elif recorded.get("chunks"):
            # A bad chunk index silently turns pruned reads wrong, so it is
            # verified against the decoded payload whenever recorded.
            # Rebuilding it from the (already CRC-verified) payload is
            # lossless.
            detail = _chunk_entry_error(
                recorded["chunks"], batch, manifest, attr_names, path
            )
            if detail is not None:
                report.add(path, "chunk-index-mismatch", detail, repairable=True)

    # v3 self-description: the recovery trailer must parse, checksum, and
    # agree with the table record.  Rebuilding one from committed state is
    # lossless, so trailer issues are always tagged repairable.
    if version >= 3:
        try:
            trailer = read_recovery_trailer(backend, path)
        except (BackendError, ChecksumError, DataFileError) as exc:
            report.add(path, "trailer-damaged", str(exc), repairable=True)
        else:
            if (
                trailer.box_id != rec.box_id
                or trailer.agg_rank != rec.agg_rank
                or trailer.particle_count != rec.particle_count
            ):
                report.add(
                    path,
                    "trailer-mismatch",
                    "recovery trailer disagrees with spatial.meta "
                    f"(box {trailer.box_id}/rank {trailer.agg_rank}/"
                    f"count {trailer.particle_count} vs box {rec.box_id}/"
                    f"rank {rec.agg_rank}/count {rec.particle_count})",
                    repairable=True,
                )
            elif recorded is not None and tuple(trailer.chunks) != chunks_from_entry(
                recorded.get("chunks", [])
            ):
                report.add(
                    path,
                    "trailer-mismatch",
                    "recovery trailer chunk index disagrees with the "
                    "manifest's",
                    repairable=True,
                )
            elif recorded is not None and trailer.codec != recorded.get("codec"):
                report.add(
                    path,
                    "trailer-mismatch",
                    f"recovery trailer codec {trailer.codec!r} disagrees "
                    f"with the manifest's {recorded.get('codec')!r}",
                    repairable=True,
                )
    return report


def scrub_dataset(source: Dataset | FileBackend) -> ScrubReport:
    """Verify every checksum/header/count invariant of one dataset.

    Per-file verification (existence, header, full-read CRC, manifest
    checksum recomputation) runs on the dataset's executor; partial
    reports merge back in metadata order so the result is deterministic.
    """
    ds = as_dataset(source)
    backend = ds.backend
    report = ScrubReport()
    report.complete = dataset_is_complete(ds)
    report.quarantined = _quarantine_inventory(backend)

    # 0. Generation-chain structure: CURRENT pointer, uncommitted/damaged
    #    generations, GC residue.  Decides which generation the deep checks
    #    below run against.
    target = _scrub_chain(backend, report)
    manifest_path = target.manifest_path if target is not None else MANIFEST_PATH
    meta_path = target.meta_path if target is not None else META_PATH
    if target is not None:
        report.generation = target.generation

    # 1. Manifest — without it there is no committed dataset and no dtype.
    manifest = None
    if not backend.exists(manifest_path):
        report.add(manifest_path, "manifest-missing",
                   "no commit marker: write never completed", repairable=True)
    else:
        try:
            manifest = Manifest.read(backend, manifest_path, actor=ds.actor)
        except FormatError as exc:
            report.add(manifest_path, "manifest-corrupt", str(exc), repairable=True)

    # 2. Spatial metadata table.
    metadata = None
    raw_meta = None
    if not backend.exists(meta_path):
        report.add(meta_path, "metadata-missing",
                   "spatial metadata table absent", repairable=True)
    else:
        try:
            raw_meta = backend.read_file(meta_path)
        except BackendError as exc:
            report.add(meta_path, "metadata-unreadable", str(exc), repairable=True)
        if raw_meta is not None:
            try:
                metadata = SpatialMetadata.from_bytes(raw_meta)
                report.bytes_verified += len(raw_meta)
            except ChecksumError as exc:
                # Lossless to rebuild: every record survives in its data
                # file's recovery trailer.
                report.add(meta_path, "metadata-checksum", str(exc),
                           repairable=True)
            except MetadataError as exc:
                report.add(meta_path, "metadata-corrupt", str(exc), repairable=True)

    # 3. Manifest <-> metadata cross-checks.
    if manifest is not None and metadata is not None:
        if manifest.num_files != len(metadata.records):
            report.add(
                meta_path,
                "file-count-mismatch",
                f"manifest says {manifest.num_files} files, "
                f"table has {len(metadata.records)}",
                repairable=True,
            )
        if manifest.total_particles != metadata.total_particles:
            report.add(
                meta_path,
                "particle-count-mismatch",
                f"manifest says {manifest.total_particles} particles, "
                f"table sums to {metadata.total_particles}",
                repairable=True,
            )
        if (
            manifest.spatial_meta_crc32 is not None
            and raw_meta is not None
            and zlib.crc32(raw_meta) != manifest.spatial_meta_crc32
        ):
            report.add(
                meta_path,
                "metadata-crc-mismatch",
                "manifest's spatial_meta_crc32 disagrees with the spatial "
                "table on disk",
                repairable=True,
            )

    # 4. Every referenced data file — independent checks, fanned out on the
    #    dataset's executor; partials merge back in metadata order.
    if manifest is not None and metadata is not None:
        mf = manifest
        names = metadata.attr_names
        tasks = [
            (lambda _recorder, rec=rec: _scrub_data_file(backend, mf, rec, names))
            for rec in metadata.records
        ]
        for outcome in ds.executor.run(tasks, ds.recorder):
            if outcome.recorder is not None:
                ds.recorder.merge(outcome.recorder)
            if outcome.error is not None:
                raise outcome.error
            part = outcome.value
            report.issues.extend(part.issues)
            report.files_checked += part.files_checked
            report.bytes_verified += part.bytes_verified

        # 5. Orphans: files in data/ no generation's table references.
        #    The live set is the union over every generation whose pieces
        #    still parse — a file only an *older* retained generation
        #    references is not an orphan, while the data of an aborted
        #    append (no manifest ever committed) is.
        referenced = {rec.file_path for rec in metadata.records}
        for g in list_generations(backend):
            if target is not None and g == target.generation:
                continue
            try:
                _m, md = load_generation(backend, g, actor=ds.actor)
            except FormatError:
                continue
            referenced |= {rec.file_path for rec in md.records}
        try:
            names = backend.listdir("data")
        except BackendError:
            names = []
        for name in names:
            path = f"data/{name}"
            if path not in referenced:
                report.add(path, "data-orphan",
                           "not referenced by any generation's spatial table",
                           repairable=True)

    return report
