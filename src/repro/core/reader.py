"""Metadata-driven parallel reads (paper §4) — the reader facade.

Planning and execution live in :mod:`repro.query.engine`; this module
keeps the historic :class:`SpatialReader` surface as a thin adapter over
the dataset's shared :class:`~repro.query.engine.QueryEngine`.  Reads are
planned, then executed:

* **planning** intersects the query box with the spatial metadata table
  and computes, per matching file, how many particles to read (all of
  them, or an LOD prefix for multi-resolution access).  The result is a
  first-class :class:`~repro.query.engine.QueryPlan` (re-exported here
  under its historic name ``ReadPlan``) — tests, the performance models,
  and the serving layer's cross-query batch planner consume it directly.
* **execution** issues the ranged reads against the backend and
  (optionally) filters the decoded particles exactly to the query box.

The three read styles of the paper's evaluation are all here:

* ``read_box`` — spatial query using the metadata (the fast path),
* ``read_box_without_metadata`` — the degraded mode of Fig. 7's first case:
  every process must read *every* file and cherry-pick, because nothing says
  where particles live,
* ``read_assigned`` — full-dataset strong-scaling reads, where ``nreaders``
  processes split the file list (Fig. 7's per-process file counts).

Fault tolerance, instrumentation, and concurrency semantics are the
engine's (see :mod:`repro.query.engine`): per-file reads go through the
dataset's :class:`~repro.io.retry.RetryPolicy`, a reader constructed with
``strict=False`` degrades instead of raising, and
:attr:`SpatialReader.last_report` (a
:class:`~repro.query.engine.ReadReport`) records exactly which partitions
were read, which were skipped and why, and how many retries were spent —
derived from the recorder's event stream, never maintained as parallel
state.  Unlike the stateless engine, the reader keeps ``last_report`` as
mutable convenience state, which is why a multi-tenant service uses the
engine directly and readers stay single-caller.
"""

from __future__ import annotations

import numpy as np

from repro.dataset import Dataset
from repro.domain.box import Box
from repro.format.metadata import MetadataRecord
from repro.io.backend import FileBackend
from repro.io.retry import RetryPolicy
from repro.obs.recorder import Recorder
from repro.particles.batch import ParticleBatch
from repro.query.engine import (
    QueryPlan,
    ReadPlan,
    ReadReport,
    SkippedPartition,
    _skip_reason,
)

__all__ = [
    "ReadPlan",
    "QueryPlan",
    "ReadReport",
    "SkippedPartition",
    "SpatialReader",
]

# Re-exported for importers of the historic module layout.
_ = _skip_reason


class SpatialReader:
    """Reader over one dataset (a :class:`~repro.dataset.Dataset` facade).

    Accepts either an open/openable ``Dataset`` — whose policy bundle
    (strict, retry, recorder, executor) the reader adopts wholesale — or,
    for convenience, a bare backend plus the policy keywords, which are
    forwarded to a new facade.

    ``strict=True`` (default): any unrecoverable per-file error aborts the
    read, exactly as before.  ``strict=False``: the read degrades — bad
    partitions are skipped, the partial result is returned, and
    :attr:`last_report` says what is missing.  Transient backend faults are
    retried under ``retry`` in both modes.  Per-file plan entries execute
    on the dataset's :class:`~repro.io.executor.IoExecutor`.

    All planning and execution delegates to the dataset's shared
    :class:`~repro.query.engine.QueryEngine`; the reader adds only the
    convenience state (``last_report``) and the historic method names.
    """

    def __init__(
        self,
        source: Dataset | FileBackend,
        actor: int = -1,
        strict: bool = True,
        retry: RetryPolicy | None = None,
        recorder: Recorder | None = None,
        executor=None,
    ):
        if isinstance(source, Dataset):
            dataset = source
        else:
            dataset = Dataset(
                source,
                actor=actor,
                strict=strict,
                retry=retry,
                recorder=recorder,
                executor=executor,
            )
        #: the facade owning the open/validate lifecycle and policy bundle.
        self.dataset = dataset.load()
        #: the shared stateless engine every consumer of this facade uses.
        self.engine = dataset.engine()
        self.backend = dataset.backend
        self.actor = dataset.actor
        self.strict = dataset.strict
        self.retry = dataset.retry
        self.executor = dataset.executor
        #: instrumentation record of everything this reader does.
        self.recorder = dataset.recorder
        #: report of the most recent plan execution (None before any read).
        self.last_report: ReadReport | None = None
        self.manifest = dataset.manifest
        self.metadata = dataset.metadata

    # -- basic facts -----------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self.manifest.dtype

    @property
    def total_particles(self) -> int:
        return self.metadata.total_particles

    @property
    def num_files(self) -> int:
        return len(self.metadata)

    def domain(self) -> Box:
        return self.metadata.domain()

    # -- planning (delegated to the engine) ------------------------------------

    def _prefix_for(
        self, records: list[MetadataRecord], max_level: int | None, nreaders: int
    ) -> list[int]:
        return self.engine._prefix_for(records, max_level, nreaders)

    def _normalize_projection(
        self,
        attrs: tuple[str, ...] | list[str] | None,
        where: dict[str, tuple[float, float]] | None,
    ) -> tuple[tuple[str, ...] | None, dict[str, tuple[float, float]]]:
        return self.engine._normalize_projection(attrs, where)

    def plan_box_read(
        self,
        box: Box,
        max_level: int | None = None,
        nreaders: int = 1,
        attrs: tuple[str, ...] | list[str] | None = None,
        where: dict[str, tuple[float, float]] | None = None,
    ) -> ReadPlan:
        """Plan a spatial query; see :meth:`repro.query.engine.QueryEngine.plan_box`."""
        return self.engine.plan_box(
            box, max_level=max_level, nreaders=nreaders, attrs=attrs, where=where
        )

    def plan_full_read(
        self, max_level: int | None = None, nreaders: int = 1
    ) -> ReadPlan:
        return self.engine.plan_full(max_level=max_level, nreaders=nreaders)

    def assign_files(self, nreaders: int, reader_rank: int) -> list[MetadataRecord]:
        """Contiguous file assignment for an ``nreaders``-way parallel read."""
        return self.engine.assign_files(nreaders, reader_rank)

    # -- execution --------------------------------------------------------------

    def execute(self, plan: ReadPlan, exact: bool = False) -> ParticleBatch:
        """Run a plan.  ``exact=True`` filters particles to the plan's box.

        Delegates to :meth:`repro.query.engine.QueryEngine.run` with this
        reader's policy bundle, then stows the delivery ledger in
        :attr:`last_report`.  On a strict-mode raise the report is still
        derived from whatever events the aborted execution recorded, so a
        caller catching the error can see how far the read got.
        """
        mark = self.recorder.event_mark()
        try:
            result = self.engine.run(
                plan, exact, recorder=self.recorder, strict=self.strict
            )
        except Exception:
            self.last_report = ReadReport.from_events(
                self.recorder.events_since(mark)
            )
            raise
        self.last_report = result.report
        return result.batch

    # -- the three read styles ------------------------------------------------------

    def read_box(
        self,
        box: Box,
        max_level: int | None = None,
        nreaders: int = 1,
        exact: bool = True,
    ) -> ParticleBatch:
        """Spatial query via the metadata table (the paper's fast path)."""
        return self.execute(self.plan_box_read(box, max_level, nreaders), exact=exact)

    def read_full(self, max_level: int | None = None, nreaders: int = 1) -> ParticleBatch:
        return self.execute(self.plan_full_read(max_level, nreaders))

    def read_assigned(
        self,
        nreaders: int,
        reader_rank: int,
        max_level: int | None = None,
    ) -> ParticleBatch:
        """This reader's share of a full parallel read (Fig. 7 style)."""
        return self.execute(
            self.engine.plan_assigned(nreaders, reader_rank, max_level=max_level)
        )

    def read_box_without_metadata(self, box: Box) -> ParticleBatch:
        """The degraded path: no spatial table, so read *everything* and filter.

        This is Fig. 7's "without spatial metadata" case — per-process I/O
        volume does not shrink as readers are added, which is why it cannot
        strong-scale.
        """
        plan = ReadPlan(
            [(rec, rec.particle_count) for rec in self.metadata.records],
            box=box,
        )
        return self.execute(plan, exact=True)
