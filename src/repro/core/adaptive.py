"""Adaptive aggregation for non-uniform particle distributions (paper §6).

Simulations balance particle *counts* per process, but the particles may
occupy only part of the spatial domain (injection, moving fronts, material
regions).  A layout-agnostic aggregation grid then assigns aggregators to
empty space (Fig. 10e), wasting I/O and network resources.

The adaptive scheme:

1. every rank shares its patch extent and particle count
   (the paper's all-to-all; one ``allgather`` here),
2. the aggregation grid is rebuilt over just the populated patch-index
   range, with the configured partition factor,
3. partitions whose patches are all empty are dropped,
4. aggregators for the surviving partitions are placed uniformly across the
   *entire* rank space (even I/O-node utilisation, §6),
5. ranks without particles do not participate in the exchange at all.

An optional rebalancing mode (``quantile_cuts``) implements the paper's
future-work idea (§7) of re-balancing partition sizes from the particle
distribution: axis cut points are chosen from particle-count quantiles so
each partition holds a comparable share of the data.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import (
    AggregationGrid,
    BaseAggregationGrid,
    select_aggregators,
    uniform_axis_cuts,
)
from repro.domain.box import Box
from repro.domain.decomposition import PatchDecomposition
from repro.errors import ConfigError, DomainError


class AdaptiveAggregationGrid(BaseAggregationGrid):
    """An aligned grid restricted to populated partitions.

    Partition ids are re-numbered ``0..m-1`` over the surviving (non-empty)
    partitions of an underlying :class:`AggregationGrid` built on the
    populated patch-index range.
    """

    def __init__(
        self,
        base: AggregationGrid,
        counts_by_rank: list[int],
    ):
        if len(counts_by_rank) != base.decomp.nprocs:
            raise ConfigError(
                f"counts_by_rank has {len(counts_by_rank)} entries for "
                f"{base.decomp.nprocs} ranks"
            )
        self.base = base
        self.decomp = base.decomp
        self.nprocs = base.nprocs
        self.counts_by_rank = [int(c) for c in counts_by_rank]
        self._populated_ranks = {
            r for r, c in enumerate(self.counts_by_rank) if c > 0
        }
        if not self._populated_ranks:
            raise DomainError("adaptive grid over a world with zero particles")
        self.active: list[int] = [
            p
            for p in range(base.num_partitions)
            if any(
                r in self._populated_ranks for r in base.senders_of_partition(p)
            )
        ]
        self.aggregators = select_aggregators(len(self.active), self.nprocs)
        self._active_index = {p: i for i, p in enumerate(self.active)}

    @property
    def num_partitions(self) -> int:
        return len(self.active)

    def partition_box(self, flat: int) -> Box:
        return self.base.partition_box(self.active[flat])

    def senders_of_partition(self, flat: int) -> list[int]:
        """Only populated ranks send; empty ranks sit the exchange out (§6)."""
        return [
            r
            for r in self.base.senders_of_partition(self.active[flat])
            if r in self._populated_ranks
        ]

    def route_particles(self, rank: int, batch) -> list[tuple[int, object]]:
        if rank not in self._populated_ranks:
            if len(batch):
                raise DomainError(
                    f"rank {rank} reported 0 particles during setup but now "
                    f"holds {len(batch)}"
                )
            return []
        for pid, sub in self.base.route_particles(rank, batch):
            # Aligned base grid: exactly one (pid, batch) pair.
            active_id = self._active_index.get(pid)
            if active_id is None:
                raise DomainError(
                    f"rank {rank}'s particles map to dropped partition {pid}"
                )
            return [(active_id, sub)]
        return []

    def participating_ranks(self) -> set[int]:
        return set(self._populated_ranks)

    def __repr__(self) -> str:
        return (
            f"AdaptiveAggregationGrid(active={len(self.active)}/"
            f"{self.base.num_partitions}, nprocs={self.nprocs})"
        )


def _populated_index_range(
    decomp: PatchDecomposition, counts_by_rank: list[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Inclusive-exclusive patch-index bounds of the populated subregion."""
    idx = np.array(
        [decomp.cell_of_rank(r) for r, c in enumerate(counts_by_rank) if c > 0]
    )
    if len(idx) == 0:
        raise DomainError("no rank holds any particles")
    return idx.min(axis=0), idx.max(axis=0) + 1


def build_adaptive_grid(
    decomp: PatchDecomposition,
    counts_by_rank: list[int],
    partition_factor: tuple[int, int, int],
    quantile_cuts: bool = False,
) -> AdaptiveAggregationGrid:
    """Build the §6 adaptive grid from globally known per-rank counts.

    The SPMD writer calls this after an ``allgather`` of (patch, count); it
    is deterministic, so every rank builds an identical grid with no further
    communication.

    With ``quantile_cuts=True`` the cut points inside the populated range are
    chosen from per-axis particle-count quantiles (the §7 future-work
    rebalancing) instead of equal patch runs; the number of partitions per
    axis is the same, only the boundaries move.
    """
    lo, hi = _populated_index_range(decomp, counts_by_rank)
    cuts: list[list[int]] = []
    for axis in range(3):
        span = int(hi[axis] - lo[axis])
        factor = min(partition_factor[axis], span)
        if quantile_cuts:
            cuts.append(
                _quantile_axis_cuts(
                    decomp, counts_by_rank, axis, int(lo[axis]), int(hi[axis]), factor
                )
            )
        else:
            base_cuts = uniform_axis_cuts(span, factor)
            cuts.append([int(lo[axis]) + c for c in base_cuts])
    base = AggregationGrid(decomp, tuple(cuts))  # type: ignore[arg-type]
    return AdaptiveAggregationGrid(base, counts_by_rank)


def _quantile_axis_cuts(
    decomp: PatchDecomposition,
    counts_by_rank: list[int],
    axis: int,
    lo: int,
    hi: int,
    factor: int,
) -> list[int]:
    """Axis cuts putting ~equal particle counts in each partition slab."""
    span = hi - lo
    n_parts = max(1, -(-span // factor))  # ceil, same count as uniform cuts
    per_slab = np.zeros(span, dtype=np.int64)
    for rank, count in enumerate(counts_by_rank):
        if count > 0:
            ijk = decomp.cell_of_rank(rank)
            per_slab[ijk[axis] - lo] += count
    cum = np.concatenate(([0], np.cumsum(per_slab)))
    total = cum[-1]
    cuts = [lo]
    for q in range(1, n_parts):
        target = total * q / n_parts
        pos = int(np.searchsorted(cum, target, side="left"))
        pos = max(cuts[-1] - lo + 1, min(pos, span - (n_parts - q)))
        cuts.append(lo + pos)
    cuts.append(hi)
    return cuts
