"""Online compaction and generation retention for particle datasets.

A long-running append workload leaves a dataset as a chain of generations,
each contributing a few small per-step files — exactly the "many small
files" failure mode the paper's aggregation scheme exists to avoid.  The
compactor restores the invariant *online*:

1. **Plan** — resolve the committed generation, read the full dataset at
   full resolution (strict: every checksum verifies before a byte is
   rewritten), and split the particles spatially into ``target_files``
   slices.
2. **Rewrite** — run the spatially-aware writer over the slices as a brand
   new full-replacement generation (empty base): consolidated,
   chunk-indexed files under the new generation's namespace, in the
   committed config's payload layout (row v3 or columnar v4 with the
   same codec — mixed chains converge on that layout).  Nothing
   existing is touched; the checksummed ``CURRENT`` flip at the end is the
   commit, so readers pinned to any older generation keep bit-identical
   results throughout, and a crash at any point leaves the dataset at
   exactly the old or the new generation.
3. **GC** (optional) — drop generations beyond the retention window
   (newest ``keep``), deleting each dropped generation's manifest first
   (un-committing it), then its table, then every data file no retained
   generation references.

Full-resolution box queries return the same particle sets before and after
compaction (the tests assert bit-identity under a canonical sort).  LOD
*prefixes* are re-drawn — consolidation reshuffles particles into new
files, so level boundaries land differently; progressive readers see an
equivalent but not byte-identical coarse ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import WriterConfig
from repro.core.reader import SpatialReader
from repro.core.writer import GenerationCommit, SpatialWriter
from repro.dataset import Dataset, as_dataset
from repro.domain import Box, PatchDecomposition
from repro.errors import FormatError
from repro.format.generations import (
    generation_manifest_path,
    generation_meta_path,
    list_generations,
    load_generation,
    resolve_generation,
)
from repro.io.backend import FileBackend
from repro.mpi import run_mpi
from repro.obs.names import (
    COMPACT_BYTES_RECLAIMED,
    COMPACT_FILES_GCED,
    COMPACT_FILES_MERGED,
    PHASE_COMPACT_GC,
    PHASE_COMPACT_PLAN,
    PHASE_COMPACT_REWRITE,
)
from repro.obs.recorder import Recorder

__all__ = [
    "CompactReport",
    "GcReport",
    "collect_generations",
    "compact_dataset",
]


@dataclass
class GcReport:
    """What one retention pass dropped."""

    #: Generations retained after the pass, ascending.
    kept: list[int] = field(default_factory=list)
    #: Generations dropped, ascending.
    dropped: list[int] = field(default_factory=list)
    #: Data files deleted (no retained generation referenced them).
    files_deleted: list[str] = field(default_factory=list)
    bytes_reclaimed: int = 0
    dry_run: bool = False

    def summary_lines(self) -> list[str]:
        lines = [
            f"generations kept   : {', '.join(map(str, self.kept)) or 'none'}",
            f"generations dropped: "
            f"{', '.join(map(str, self.dropped)) or 'none'}",
            f"files deleted      : {len(self.files_deleted)}",
            f"bytes reclaimed    : {self.bytes_reclaimed}",
        ]
        if self.dry_run:
            lines.append("dry run: no changes were made")
        return lines


@dataclass
class CompactReport:
    """Everything one compaction pass decided and did."""

    #: The committed generation the pass read from.
    source_generation: int = 0
    #: The generation the consolidated files committed as (== source for a
    #: dry run, which commits nothing).
    new_generation: int = 0
    #: Data files the source generation served queries from.
    files_before: int = 0
    #: Consolidated files the new generation serves them from.
    files_after: int = 0
    particles: int = 0
    dry_run: bool = False
    #: Retention pass outcome (None when GC was skipped).
    gc: GcReport | None = None

    def summary_lines(self) -> list[str]:
        lines = [
            f"source generation : {self.source_generation}",
            f"new generation    : {self.new_generation}",
            f"files             : {self.files_before} -> {self.files_after}",
            f"particles         : {self.particles}",
        ]
        if self.dry_run:
            lines.append("dry run: no changes were made")
        if self.gc is not None:
            lines.extend(f"gc: {line}" for line in self.gc.summary_lines())
        return lines


def _padded_domain(domain: Box) -> Box:
    """Open the domain's top face slightly so half-open patch binning
    keeps the particles sitting exactly on it (the populated domain is a
    closed bounding box — its max particle IS on the face)."""
    lo = np.asarray(domain.lo, dtype=np.float64)
    hi = np.asarray(domain.hi, dtype=np.float64)
    extent = hi - lo
    pad = np.where(extent > 0, extent * 1e-9, 1e-9)
    return Box(lo, hi + pad)


def compact_dataset(
    source: Dataset | FileBackend,
    *,
    target_files: int | None = None,
    keep: int = 2,
    gc: bool = True,
    dry_run: bool = False,
) -> CompactReport:
    """Merge the committed generation's files into ``target_files``
    consolidated ones as a new generation; optionally GC old generations.

    ``keep`` retains the newest ``keep`` generations (the new one
    included) for pinned readers; generations *ahead* of the committed one
    (crash residue) are never GC'd — that is the repair subsystem's call.
    With ``dry_run=True`` nothing is written: the report carries the plan.
    """
    ds = as_dataset(source)
    rec = ds.recorder
    out = CompactReport(dry_run=dry_run)

    with rec.span(PHASE_COMPACT_PLAN, cat="compact"):
        # Compaction always consolidates the *committed* state (a facade
        # pin is a read-side concern); the new generation lands past every
        # generation on disk so crash residue ahead of CURRENT is never
        # overwritten.
        resolved = resolve_generation(ds.backend, actor=ds.actor)
        base = (
            ds
            if ds.pinned_generation in (None, resolved.generation)
            else ds.at_generation(resolved.generation)
        )
        manifest, metadata = base.manifest, base.metadata
        out.source_generation = resolved.generation
        out.files_before = len(metadata)
        out.particles = manifest.total_particles
        next_gen = (
            max([resolved.generation, *list_generations(ds.backend)]) + 1
        )

        nfiles = target_files if target_files else max(1, len(metadata) // 8)
        nfiles = max(1, min(int(nfiles), max(1, out.particles)))
        out.files_after = nfiles
        out.new_generation = resolved.generation if dry_run else next_gen
        if dry_run:
            return out

        # Strict full-resolution read: every byte verifies before any of
        # it is rewritten, so compaction can never launder corruption into
        # a fresh-looking generation.
        reader = SpatialReader(base)
        batch = reader.execute(reader.plan_full_read())
        decomp = PatchDecomposition.for_nprocs(
            _padded_domain(metadata.domain()), nfiles
        )
        slices = [
            batch.select_in_box(decomp.patch_of_rank(r)) for r in range(nfiles)
        ]
        if sum(len(s) for s in slices) != len(batch):
            raise FormatError(
                "compaction slicing lost particles — populated domain does "
                "not cover the dataset"
            )

    with rec.span(PHASE_COMPACT_REWRITE, cat="compact"):
        cfg_doc = manifest.writer.get("config", {}) or {}
        cfg = WriterConfig(
            partition_factor=(1, 1, 1),
            lod_base=manifest.lod_base,
            lod_scale=manifest.lod_scale,
            lod_heuristic=manifest.lod_heuristic,
            lod_seed=manifest.lod_seed,
            attr_index=metadata.attr_names,
            align_to_patches=True,
            chunk_size=int(cfg_doc.get("chunk_size", 64)),
            # Preserve the base generation's payload layout: a columnar
            # dataset compacts to uniform columnar files with the same
            # codec, and a mixed chain (row base + columnar appends, or
            # vice versa) converges on whatever the committed config says.
            layout=str(cfg_doc.get("layout", "row")),
            codec=str(cfg_doc.get("codec", "none")),
        )
        commit = GenerationCommit(
            generation=out.new_generation,
            parent=resolved.generation,
            base_records=(),
            base_checksums={},
            box_id_offset=0,
        )
        writer = SpatialWriter(cfg, retry=ds.retry)
        recorders = [Recorder(rank=r) for r in range(nfiles)]

        def main(comm):
            return writer.write_as_generation(
                comm,
                slices[comm.rank],
                decomp,
                ds.backend,
                commit,
                recorder=recorders[comm.rank],
            )

        run_mpi(nfiles, main)
        for child in recorders:
            rec.merge(child)
        rec.add(COMPACT_FILES_MERGED, out.files_before)

    if gc:
        with rec.span(PHASE_COMPACT_GC, cat="compact"):
            out.gc = collect_generations(ds, keep=keep)
    ds.invalidate_cache()
    return out


def collect_generations(
    source: Dataset | FileBackend,
    *,
    keep: int = 2,
    dry_run: bool = False,
) -> GcReport:
    """Retention-driven GC: drop every generation older than the newest
    ``keep`` committed ones.

    The committed generation is always retained regardless of ``keep``;
    generations ahead of it (crash residue a repair should adjudicate) are
    retained too — GC only ever removes *history*.  Per dropped
    generation the deletion order is crash-safe: manifest first (the drop
    un-commits it; residue is a typed, repairable scrub issue), then the
    spatial table, then data files no retained generation references.
    """
    ds = as_dataset(source)
    backend = ds.backend
    rec = ds.recorder
    out = GcReport(dry_run=dry_run)
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")

    # GC refuses to run on a dataset that does not resolve cleanly — use
    # `repro repair` first; deleting history around damage destroys the
    # evidence recovery needs.
    current = resolve_generation(backend, actor=ds.actor)
    if current.fallback:
        raise FormatError(
            "CURRENT does not resolve cleanly; run `repro repair` before "
            "collecting generations"
        )
    gens = list_generations(backend)
    history = [g for g in gens if g <= current.generation]
    ahead = [g for g in gens if g > current.generation]
    kept_history = history[-keep:]
    out.kept = sorted(kept_history + ahead)
    out.dropped = [g for g in history if g not in kept_history]
    if not out.dropped:
        return out

    live: set[str] = set()
    for gen in out.kept:
        try:
            _m, meta = load_generation(backend, gen, actor=ds.actor)
        except FormatError:
            continue  # damaged retained gen: scrub/repair territory, not GC's
        live.update(r.file_path for r in meta.records)

    deleted: set[str] = set()
    for gen in out.dropped:
        try:
            _m, meta = load_generation(backend, gen, actor=ds.actor)
            refs = [r.file_path for r in meta.records]
        except FormatError:
            refs = []
        victims = [p for p in refs if p not in live and p not in deleted]
        if dry_run:
            out.files_deleted.extend(victims)
            continue
        # Manifest first: from here on the generation is residue, never a
        # half-readable commit.
        ds.retry.call(
            backend.delete, generation_manifest_path(gen), missing_ok=True,
            recorder=rec,
        )
        ds.retry.call(
            backend.delete, generation_meta_path(gen), missing_ok=True,
            recorder=rec,
        )
        for path in victims:
            try:
                out.bytes_reclaimed += backend.size(path)
            except Exception:
                pass
            ds.retry.call(backend.delete, path, missing_ok=True, recorder=rec)
            deleted.add(path)
        out.files_deleted.extend(victims)

    if not dry_run:
        rec.add(COMPACT_FILES_GCED, len(out.files_deleted))
        rec.add(COMPACT_BYTES_RECLAIMED, out.bytes_reclaimed)
        ds.invalidate_cache()
    return out
