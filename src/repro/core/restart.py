"""Simulation restart: read a dataset back into a (different) decomposition.

Checkpoint/restart is the write path's other customer besides visualization:
a simulation checkpoints at N ranks and may restart at M ≠ N.  Because the
format carries spatial metadata, each restarting rank issues one box query
for its own patch — touching only the files that overlap it — instead of
scanning the dump.  This is exactly the §4 machinery applied SPMD.

The module also verifies global conservation with one cheap allreduce, since
losing particles across a restart is the catastrophic failure mode.
"""

from __future__ import annotations

from repro.core.reader import SpatialReader
from repro.dataset import Dataset
from repro.domain.decomposition import PatchDecomposition
from repro.errors import QueryError
from repro.mpi.comm import SimComm
from repro.particles.batch import ParticleBatch


def read_for_decomposition(
    comm: SimComm,
    reader: SpatialReader | Dataset,
    decomp: PatchDecomposition,
    verify_conservation: bool = True,
) -> ParticleBatch:
    """SPMD restart read: each rank loads the particles of its patch.

    Patches are half-open except at the domain's closing faces, so every
    stored particle is claimed by exactly one restarting rank.

    Parameters
    ----------
    comm:
        The restart job's communicator; ``comm.size`` must match
        ``decomp.nprocs`` (which may differ from the writing job's size).
    reader:
        Open reader on the checkpoint dataset, or a
        :class:`~repro.dataset.Dataset` facade (a reader is derived from
        it, inheriting its policy bundle).
    verify_conservation:
        When True (default), allreduce the per-rank counts and compare with
        the metadata total, raising on any loss or duplication.
    """
    if isinstance(reader, Dataset):
        reader = reader.reader()
    if decomp.nprocs != comm.size:
        raise QueryError(
            f"restart decomposition has {decomp.nprocs} patches for "
            f"{comm.size} ranks"
        )
    patch = decomp.patch_of_rank(comm.rank)
    plan = reader.plan_box_read(patch)
    loaded = reader.execute(plan, exact=False)
    # Exact ownership via the decomposition's cell assignment: every stored
    # particle (including ones exactly on faces) maps to exactly one rank.
    if len(loaded):
        owners = decomp.grid.flat_cell_of_points(loaded.positions)
        mine = ParticleBatch(loaded.data[owners == comm.rank])
    else:
        mine = loaded

    if verify_conservation:
        total = comm.allreduce(len(mine))
        expected = reader.total_particles
        if total != expected:
            raise QueryError(
                f"restart lost particles: decomposition claimed {total} of "
                f"{expected} stored particles"
            )
    return mine
