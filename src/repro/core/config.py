"""Writer configuration.

The paper exposes the aggregation partition factor ``(Px, Py, Pz)`` as the
central tuning knob (§3.1): it sets both the extent of communication during
aggregation and the number of output files
``f = (nx/Px) * (ny/Py) * (nz/Pz)``.  The LOD parameters ``P`` (base level
size) and ``S`` (resolution scale, default 2) come from §3.4.  ``adaptive``
enables the §6 adaptive aggregation-grid for non-uniform distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Partition factors evaluated in the paper's Figure 5.
PAPER_PARTITION_FACTORS: tuple[tuple[int, int, int], ...] = (
    (1, 1, 1),
    (1, 1, 2),
    (1, 2, 2),
    (2, 2, 2),
    (2, 2, 4),
    (2, 4, 4),
    (4, 4, 4),
)


@dataclass(frozen=True)
class WriterConfig:
    """All knobs of the spatially-aware writer.

    Parameters
    ----------
    partition_factor:
        ``(Px, Py, Pz)`` — aggregation partition size as a multiple of the
        per-process patch size.  ``(1, 1, 1)`` degenerates to file-per-process;
        a factor covering the whole process grid degenerates to a single
        shared file (§3.1).
    lod_base, lod_scale:
        ``P`` and ``S`` of the LOD formula ``x(n, l) = n * P * S**l`` (§3.4).
    lod_heuristic:
        ``"random"`` (the paper's default reshuffle) or ``"stratified"``
        (the density-aware ordering the paper mentions as an alternative).
    lod_seed:
        Seed for the reshuffle; per-aggregator streams are derived from it.
    adaptive:
        Build the §6 adaptive aggregation-grid over the populated subdomain.
    attr_index:
        Scalar attribute names to min/max-index in the spatial metadata
        (§3.5's planned extension; used for range-query pruning).
    align_to_patches:
        When True (default) the aggregation-grid is aligned with the
        simulation decomposition so each rank sends to exactly one
        aggregator.  False exercises the general non-aligned path, where
        ranks bin particles per intersecting partition.
    chunk_size:
        Particles per sub-file spatial chunk.  The writer records each
        chunk's particle range, tight bounding box, and per-indexed-
        attribute min/max in the manifest and recovery trailer so selective
        box queries read only intersecting chunks.  ``0`` disables the
        index entirely (files stay byte-identical to pre-chunk-index
        output).  Chunks restart at LOD level boundaries, so prefix reads
        remain valid.
    layout:
        ``"row"`` (default) writes classic row-oriented v3 files;
        ``"columnar"`` writes format v4, storing each chunk's payload as
        per-attribute column segments so queries fetch only the columns
        they project.  Columnar layout requires a chunk index
        (``chunk_size >= 1``).
    codec:
        Per-segment codec for columnar layout (see
        :mod:`repro.format.codecs`): ``"none"``, ``"shuffle-zlib"``, or
        ``"shuffle-lz4"`` where the optional ``lz4`` package exists.
        Ignored for row layout.
    """

    partition_factor: tuple[int, int, int] = (2, 2, 2)
    lod_base: int = 32
    lod_scale: int = 2
    lod_heuristic: str = "random"
    lod_seed: int | None = 0
    adaptive: bool = False
    attr_index: tuple[str, ...] = ()
    align_to_patches: bool = True
    chunk_size: int = 64
    layout: str = "row"
    codec: str = "none"

    def __post_init__(self) -> None:
        pf = tuple(int(v) for v in self.partition_factor)
        if len(pf) != 3 or any(v < 1 for v in pf):
            raise ConfigError(
                f"partition_factor must be three ints >= 1, got {self.partition_factor!r}"
            )
        object.__setattr__(self, "partition_factor", pf)
        if self.lod_base < 1:
            raise ConfigError(f"lod_base (P) must be >= 1, got {self.lod_base}")
        if self.lod_scale < 2:
            raise ConfigError(f"lod_scale (S) must be >= 2, got {self.lod_scale}")
        if self.lod_heuristic not in ("random", "stratified"):
            raise ConfigError(
                f"lod_heuristic must be 'random' or 'stratified', got {self.lod_heuristic!r}"
            )
        object.__setattr__(self, "attr_index", tuple(self.attr_index))
        if self.chunk_size < 0:
            raise ConfigError(
                f"chunk_size must be >= 0 (0 disables), got {self.chunk_size}"
            )
        if self.layout not in ("row", "columnar"):
            raise ConfigError(
                f"layout must be 'row' or 'columnar', got {self.layout!r}"
            )
        if self.layout == "columnar":
            if self.chunk_size < 1:
                raise ConfigError(
                    "columnar layout requires a chunk index (chunk_size >= 1)"
                )
            # Validate the codec name eagerly — a writer must not discover a
            # missing codec halfway through FILE_IO.
            from repro.format.codecs import get_codec

            get_codec(self.codec)

    @property
    def partition_volume(self) -> int:
        """Patches (and hence sender ranks) per aggregation partition."""
        px, py, pz = self.partition_factor
        return px * py * pz

    def describe(self) -> dict:
        return {
            "partition_factor": list(self.partition_factor),
            "lod": {
                "base": self.lod_base,
                "scale": self.lod_scale,
                "heuristic": self.lod_heuristic,
                "seed": self.lod_seed,
            },
            "adaptive": self.adaptive,
            "attr_index": list(self.attr_index),
            "align_to_patches": self.align_to_patches,
            "chunk_size": self.chunk_size,
            "layout": self.layout,
            "codec": self.codec,
        }
