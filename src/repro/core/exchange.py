"""Metadata and particle exchange (paper §3.3).

Unlike grid data, aggregators cannot know a priori how many particles they
will receive, so the exchange runs in two phases:

1. **metadata exchange** — every sender tells each of its aggregators how
   many particles to expect (a small eager message per partition);
2. **particle exchange** — the aggregator allocates one contiguous buffer of
   exactly the right size, then receives each sender's particles directly
   into its slice.

Both phases use non-blocking point-to-point messages, mirroring the paper.
Senders and receivers derive the sender lists deterministically from the
aggregation grid, so no handshaking round is needed.

The aligned fast path sends a rank's whole batch in one message; the
non-aligned path first bins particles per intersecting partition
(``grid.route_particles``), which is the per-particle scan the paper
describes for grids that do not align with the simulation decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregation import BaseAggregationGrid
from repro.errors import MPIError
from repro.mpi.comm import SimComm
from repro.particles.batch import ParticleBatch

# Tag layout: two tags per partition id on the user channel.  The writer is
# the only user of the communicator while a write is in flight.
_TAG_STRIDE = 2
_TAG_META = 0
_TAG_DATA = 1


def _meta_tag(pid: int) -> int:
    return pid * _TAG_STRIDE + _TAG_META


def _data_tag(pid: int) -> int:
    return pid * _TAG_STRIDE + _TAG_DATA


@dataclass
class ExchangeResult:
    """What one rank got out of the exchange."""

    #: partition id -> aggregated batch, for partitions this rank owns.
    aggregated: dict[int, ParticleBatch] = field(default_factory=dict)
    #: particles this rank shipped out (including to itself).
    particles_sent: int = 0
    #: particles this rank received as an aggregator.
    particles_received: int = 0
    #: number of distinct aggregators this rank sent to.
    aggregators_contacted: int = 0


def exchange_particles(
    comm: SimComm,
    grid: BaseAggregationGrid,
    batch: ParticleBatch,
) -> ExchangeResult:
    """Run the two-phase exchange; returns aggregated batches for owned partitions.

    SPMD: every participating rank calls this with its local ``batch``.
    Ranks excluded by an adaptive grid (no particles) still call it — they
    simply send nothing and, if they own no partition, receive nothing.
    """
    rank = comm.rank
    if grid.nprocs != comm.size:
        raise MPIError(
            f"grid was built for {grid.nprocs} ranks, communicator has {comm.size}"
        )
    result = ExchangeResult()
    dtype = batch.dtype

    # ---- send side: route local particles, post metadata + data sends ----
    routed = grid.route_particles(rank, batch)
    contacted: set[int] = set()
    for pid, sub in routed:
        agg = grid.aggregator_of_partition(pid)
        contacted.add(agg)
        comm.isend(len(sub), agg, tag=_meta_tag(pid))
        if len(sub):
            comm.isend(sub.data, agg, tag=_data_tag(pid))
            result.particles_sent += len(sub)
    result.aggregators_contacted = len(contacted)

    # ---- receive side: per owned partition, gather counts then particles ----
    for pid in grid.partitions_owned_by(rank):
        senders = grid.senders_of_partition(pid)
        counts: dict[int, int] = {}
        for sender in senders:
            counts[sender] = int(comm.recv(source=sender, tag=_meta_tag(pid)))
        total = sum(counts.values())
        # Step 4 of the pipeline: one contiguous aggregation buffer.
        buffer = np.empty(total, dtype=dtype)
        offset = 0
        for sender in senders:
            n = counts[sender]
            if n == 0:
                continue
            data = comm.recv(source=sender, tag=_data_tag(pid))
            if not isinstance(data, np.ndarray) or data.dtype != dtype:
                raise MPIError(
                    f"partition {pid}: sender {sender} shipped "
                    f"{getattr(data, 'dtype', type(data))}, expected {dtype}"
                )
            if len(data) != n:
                raise MPIError(
                    f"partition {pid}: sender {sender} announced {n} particles "
                    f"but shipped {len(data)}"
                )
            buffer[offset : offset + n] = data
            offset += n
        result.aggregated[pid] = ParticleBatch(buffer)
        result.particles_received += total
    return result
