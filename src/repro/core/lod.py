"""Level-of-detail layout (paper §3.4).

The writer reorders each aggregator's particles so that any file prefix is a
valid coarse representation.  Two orderings are provided:

* ``random`` — the paper's default: a seeded uniform reshuffle.  Any prefix
  is then a uniform random subset of the region's particles.
* ``stratified`` — the "density" style heuristic the paper mentions: emit
  particles in rounds over an occupancy grid (one particle per occupied cell
  per round), so early prefixes cover space evenly even when density varies.

Level sizes are *dynamic*: a level is not baked into the file.  Level ``l``
contains at most ``x(n, l) = n * P * S**l`` particles, where ``n`` is the
number of processes *reading* (decided at read time), ``P`` the base level
size, and ``S`` the resolution scale (default 2).  The functions here do the
arithmetic both the reader and the benchmarks need: per-level sizes,
cumulative counts, the maximum level for a dataset, and per-file prefix
lengths for a cumulative target.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.domain.box import Box
from repro.domain.grid import CellGrid
from repro.errors import ConfigError
from repro.particles.batch import ParticleBatch
from repro.utils.rng import spawn_rng

# -- level arithmetic ---------------------------------------------------------


def _check_params(n: int, base: int, scale: int) -> None:
    if n < 1:
        raise ConfigError(f"reader count n must be >= 1, got {n}")
    if base < 1:
        raise ConfigError(f"LOD base P must be >= 1, got {base}")
    if scale < 2:
        raise ConfigError(f"LOD scale S must be >= 2, got {scale}")


def level_size(n: int, level: int, base: int = 32, scale: int = 2) -> int:
    """Maximum particles in level ``level``: ``x(n, l) = n * P * S**l``."""
    _check_params(n, base, scale)
    if level < 0:
        raise ConfigError(f"level must be >= 0, got {level}")
    return n * base * scale**level


def cumulative_level_count(
    n: int, upto_level: int, base: int = 32, scale: int = 2
) -> int:
    """Total particles in levels ``0..upto_level`` inclusive (geometric sum)."""
    _check_params(n, base, scale)
    if upto_level < 0:
        return 0
    return n * base * (scale ** (upto_level + 1) - 1) // (scale - 1)


def max_level(total: int, n: int, base: int = 32, scale: int = 2) -> int:
    """The highest level index with any particles for a ``total``-particle set.

    This matches the paper's formula ``l = log_S(total / (n * P))`` for the
    power-of-two cases it quotes (2^31 particles, n=64, P=32, S=2 -> 20) and
    generalises to non-exact totals as the smallest ``L`` whose cumulative
    count reaches ``total``.
    """
    _check_params(n, base, scale)
    if total < 0:
        raise ConfigError(f"total must be >= 0, got {total}")
    if total <= n * base:
        return 0
    level = 0
    while cumulative_level_count(n, level, base, scale) < total:
        level += 1
    return level


def paper_level_formula(total: int, n: int, base: int = 32, scale: int = 2) -> int:
    """The paper's closed form ``l = log_S(total / (n * P))`` (§5.4)."""
    _check_params(n, base, scale)
    if total < n * base:
        return 0
    return int(math.log(total / (n * base), scale))


def lod_prefix_counts(
    file_particle_counts: Sequence[int],
    n_readers: int,
    upto_level: int,
    base: int = 32,
    scale: int = 2,
) -> list[int]:
    """How many particles to read from each file for levels ``0..upto_level``.

    The cumulative global target ``C = min(sum(counts), n*P*(S^(L+1)-1)/(S-1))``
    is split across files in proportion to their particle counts (the shuffle
    makes any prefix representative), rounding by largest-remainder so the
    per-file counts sum exactly to ``C`` and never exceed a file's total.
    """
    counts = [int(c) for c in file_particle_counts]
    if any(c < 0 for c in counts):
        raise ConfigError(f"negative file particle count in {counts}")
    total = sum(counts)
    if total == 0:
        return [0] * len(counts)
    target = min(total, cumulative_level_count(n_readers, upto_level, base, scale))
    # Largest-remainder apportionment, capped by per-file totals.
    quotas = [target * c / total for c in counts]
    out = [min(int(q), c) for q, c in zip(quotas, counts)]
    shortfall = target - sum(out)
    remainders = sorted(
        range(len(counts)),
        key=lambda i: (quotas[i] - int(quotas[i])),
        reverse=True,
    )
    i = 0
    while shortfall > 0 and i < 4 * len(counts) + 4:
        idx = remainders[i % len(counts)]
        if out[idx] < counts[idx]:
            out[idx] += 1
            shortfall -= 1
        i += 1
    return out


# -- orderings ------------------------------------------------------------------


def random_lod_order(
    batch: ParticleBatch, seed: int | None, agg_rank: int = 0
) -> np.ndarray:
    """The paper's default LOD ordering: a seeded uniform random permutation.

    Returns the index permutation (apply with ``batch.permuted``).  Seeding is
    per-aggregator (``agg_rank`` keys the stream) so writes are reproducible
    yet files are independently shuffled.
    """
    rng = spawn_rng(seed, 0x10D, agg_rank)
    return rng.permutation(len(batch))


def stratified_lod_order(
    batch: ParticleBatch,
    seed: int | None = 0,
    agg_rank: int = 0,
    grid_dims: tuple[int, int, int] = (8, 8, 8),
    bounds: Box | None = None,
) -> np.ndarray:
    """Density-aware ordering: round-robin over an occupancy grid.

    Particles are binned into ``grid_dims`` cells over ``bounds`` (default:
    the batch's bounding box).  The permutation emits one particle per
    occupied cell per round (random within each cell), so a prefix of k
    particles covers every populated region with roughly equal sample
    density — a better coarse representation than a uniform shuffle when the
    distribution is highly non-uniform.
    """
    if len(batch) == 0:
        return np.empty(0, dtype=np.int64)
    if bounds is None:
        bounds = batch.bounding_box()
        # A degenerate box (all particles coplanar) still needs positive extent.
        if bounds.is_empty():
            bounds = bounds.expanded(1e-9)
    grid = CellGrid(bounds, grid_dims)
    cells = grid.flat_cell_of_points(batch.positions)
    rng = spawn_rng(seed, 0x57A, agg_rank)
    # Shuffle within cells, then interleave cell streams round-robin:
    # sort by (round_within_cell, cell) with a random tiebreak inside cells.
    jitter = rng.permutation(len(batch))
    order_in_cell = np.zeros(len(batch), dtype=np.int64)
    sorted_by_cell = np.lexsort((jitter, cells))
    cell_sorted = cells[sorted_by_cell]
    # Position of each particle within its cell's (shuffled) stream.
    boundaries = np.flatnonzero(np.diff(cell_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    lengths = np.diff(np.concatenate((starts, [len(batch)])))
    within = np.concatenate([np.arange(ln) for ln in lengths])
    order_in_cell[sorted_by_cell] = within
    return np.lexsort((cells, order_in_cell))


def _kd_clusters(
    idx: np.ndarray, pos: np.ndarray, chunk_size: int
) -> list[np.ndarray]:
    """Split ``idx`` into spatially tight clusters of ``chunk_size``.

    Recursive median splits along the widest axis, with every cut placed at
    a multiple of ``chunk_size``: all resulting clusters are exactly
    ``chunk_size`` particles except at most one remainder (returned last).
    Balanced axis-aligned splits give much tighter cluster bounds than a
    space-filling-curve sort for the small cluster counts early LOD levels
    produce.
    """
    if len(idx) <= chunk_size:
        return [idx]
    p = pos[idx]
    axis = int((p.max(axis=0) - p.min(axis=0)).argmax())
    half = len(idx) // 2
    nleft = max(chunk_size, (half // chunk_size) * chunk_size)
    part = np.argpartition(p[:, axis], nleft - 1)
    left = _kd_clusters(idx[part[:nleft]], pos, chunk_size)
    right = _kd_clusters(idx[part[nleft:]], pos, chunk_size)
    # nleft is a chunk_size multiple, so only the right side can carry the
    # remainder cluster — and it is already last there.
    return left + right


def chunk_cluster_order(
    batch: ParticleBatch,
    boundaries: Sequence[int],
    chunk_size: int,
    seed: int | None = 0,
    agg_rank: int = 0,
) -> np.ndarray:
    """Regroup each LOD level into spatially tight, randomly ordered chunks.

    The sub-file chunk index (:mod:`repro.format.chunks`) records the tight
    bounding box of each run of ``chunk_size`` consecutive particles; under
    a plain LOD shuffle every such run samples the whole partition, so no
    chunk can ever be pruned.  This permutation fixes that while keeping
    the LOD contract: within each level segment (``boundaries`` are the
    cumulative level counts) particles are clustered into ``chunk_size``
    spatial groups by balanced k-d splits — tight bounds — and then the
    *full* clusters are emitted in seeded-random order (any remainder
    cluster stays last, so clusters stay aligned with the index's chunk
    grid).

    Level *sets* are untouched — only within-level order changes — so every
    level-boundary prefix holds exactly the particles it held before, and a
    partial-level prefix is a random sample of spatial clusters rather than
    a random sample of particles: coarser-grained, but still spread over
    the whole region.
    """
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    n = len(batch)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    pos = np.asarray(batch.positions, dtype=np.float64)
    rng = spawn_rng(seed, 0xC4C, agg_rank)
    out = np.empty(n, dtype=np.int64)
    prev = 0
    for b in boundaries:
        seg = np.arange(prev, b, dtype=np.int64)
        clusters = _kd_clusters(seg, pos, chunk_size)
        full = [c for c in clusters if len(c) == chunk_size]
        rest = [c for c in clusters if len(c) != chunk_size]
        pieces = [full[i] for i in rng.permutation(len(full))] + rest
        out[prev:b] = np.concatenate(pieces)
        prev = b
    return out


def order_for_heuristic(
    batch: ParticleBatch,
    heuristic: str,
    seed: int | None,
    agg_rank: int,
    bounds: Box | None = None,
) -> np.ndarray:
    """Dispatch on the configured LOD heuristic name."""
    if heuristic == "random":
        return random_lod_order(batch, seed, agg_rank)
    if heuristic == "stratified":
        return stratified_lod_order(batch, seed, agg_rank, bounds=bounds)
    raise ConfigError(f"unknown LOD heuristic {heuristic!r}")
