"""Aggregation-grid setup and aggregator selection (paper §3.1–§3.2).

An :class:`AggregationGrid` partitions the simulation's *patch index space*
into axis-aligned groups of patches.  Working in patch-index space (rather
than raw coordinates) makes alignment with the simulation decomposition
structural: a partition boundary is always a patch boundary, so each rank's
patch lies in exactly one partition and no per-particle filtering is needed
(§3.3's fast path).  Per-axis cut lists, rather than a uniform grid, let the
same class represent:

* the uniform grid of the aligned case — cuts every ``Px`` patches,
* the ceil-division tail when ``Px`` does not divide the process grid,
* the §6 adaptive grid — cuts spanning only the populated index range.

Aggregator ranks are chosen uniformly from the rank space (§3.2): partition
``p`` of ``m`` is owned by rank ``floor(p * nprocs / m)``, which for the
paper's example (16 processes, 4 partitions) yields ranks 0, 4, 8, 12.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.domain.box import Box
from repro.domain.decomposition import PatchDecomposition
from repro.errors import ConfigError, DomainError


def uniform_axis_cuts(n_patches: int, factor: int) -> list[int]:
    """Cut points grouping ``n_patches`` indices into runs of ``factor``.

    The last run is shorter when ``factor`` does not divide ``n_patches``
    (ceil division), so every patch is covered exactly once.
    """
    if n_patches < 1 or factor < 1:
        raise ConfigError(f"invalid axis cut request ({n_patches=}, {factor=})")
    cuts = list(range(0, n_patches, factor))
    cuts.append(n_patches)
    return cuts


def select_aggregators(num_partitions: int, nprocs: int) -> list[int]:
    """One aggregator rank per partition, spread uniformly over rank space."""
    if num_partitions < 1:
        raise ConfigError(f"need >= 1 partition, got {num_partitions}")
    if num_partitions > nprocs:
        raise ConfigError(
            f"{num_partitions} partitions need {num_partitions} aggregators, "
            f"but only {nprocs} ranks exist (partition factor too small?)"
        )
    return [p * nprocs // num_partitions for p in range(num_partitions)]


class BaseAggregationGrid:
    """Interface every aggregation grid flavour implements.

    The exchange and writer code (:mod:`repro.core.exchange`,
    :mod:`repro.core.writer`) is written against this protocol, so the
    aligned grid (§3.1), the non-aligned general case (§3.3), and the §6
    adaptive grid are interchangeable.
    """

    nprocs: int
    aggregators: list[int]

    @property
    def num_partitions(self) -> int:
        raise NotImplementedError

    @property
    def num_files(self) -> int:
        return self.num_partitions

    def partition_box(self, flat: int) -> Box:
        raise NotImplementedError

    def aggregator_of_partition(self, flat: int) -> int:
        return self.aggregators[flat]

    def partitions_owned_by(self, rank: int) -> list[int]:
        return [p for p, agg in enumerate(self.aggregators) if agg == rank]

    def senders_of_partition(self, flat: int) -> list[int]:
        """Ranks that will send (possibly empty) payloads to this partition."""
        raise NotImplementedError

    def route_particles(self, rank: int, batch) -> list[tuple[int, object]]:
        """Split rank-local particles into (partition id, sub-batch) pairs."""
        raise NotImplementedError

    def participating_ranks(self) -> set[int]:
        """Ranks that take part in the exchange as senders."""
        out: set[int] = set()
        for p in range(self.num_partitions):
            out.update(self.senders_of_partition(p))
        return out


class AggregationGrid(BaseAggregationGrid):
    """A partition of patch-index space into aggregation partitions."""

    def __init__(
        self,
        decomp: PatchDecomposition,
        axis_cuts: tuple[Sequence[int], Sequence[int], Sequence[int]],
        nprocs: int | None = None,
    ):
        self.decomp = decomp
        self.nprocs = decomp.nprocs if nprocs is None else int(nprocs)
        self.axis_cuts = tuple(
            np.asarray(sorted(int(c) for c in cuts), dtype=np.int64)
            for cuts in axis_cuts
        )
        for axis, cuts in enumerate(self.axis_cuts):
            if len(cuts) < 2:
                raise DomainError(f"axis {axis}: need at least 2 cut points")
            if len(np.unique(cuts)) != len(cuts):
                raise DomainError(f"axis {axis}: duplicate cut points {cuts}")
            if cuts[0] < 0 or cuts[-1] > decomp.proc_dims[axis]:
                raise DomainError(
                    f"axis {axis}: cuts {cuts} exceed patch range "
                    f"[0, {decomp.proc_dims[axis]}]"
                )
        self.dims = tuple(len(c) - 1 for c in self.axis_cuts)
        self.aggregators = select_aggregators(self.num_partitions, self.nprocs)

    # -- construction --------------------------------------------------------

    @classmethod
    def aligned(
        cls, decomp: PatchDecomposition, partition_factor: tuple[int, int, int]
    ) -> "AggregationGrid":
        """The §3.1 aligned grid: partitions of ``(Px, Py, Pz)`` patches."""
        cuts = tuple(
            uniform_axis_cuts(decomp.proc_dims[a], partition_factor[a])
            for a in range(3)
        )
        return cls(decomp, cuts)  # type: ignore[arg-type]

    # -- sizes ------------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return self.dims[0] * self.dims[1] * self.dims[2]

    @property
    def num_files(self) -> int:
        """Output files = partitions: the paper's ``f = prod(n_axis/P_axis)``."""
        return self.num_partitions

    def flatten(self, pijk: Sequence[int]) -> int:
        i, j, k = (int(v) for v in pijk)
        return i + self.dims[0] * (j + self.dims[1] * k)

    def unflatten(self, flat: int) -> tuple[int, int, int]:
        if not 0 <= flat < self.num_partitions:
            raise DomainError(
                f"partition id {flat} out of range ({self.num_partitions})"
            )
        i = flat % self.dims[0]
        j = (flat // self.dims[0]) % self.dims[1]
        k = flat // (self.dims[0] * self.dims[1])
        return (int(i), int(j), int(k))

    # -- geometry -----------------------------------------------------------------

    def partition_box(self, flat: int) -> Box:
        """The spatial box of a partition (union of its patches)."""
        i, j, k = self.unflatten(flat)
        cx, cy, cz = self.axis_cuts
        patch_grid = self.decomp.grid
        lo_idx = np.array([cx[i], cy[j], cz[k]], dtype=np.float64)
        hi_idx = np.array([cx[i + 1], cy[j + 1], cz[k + 1]], dtype=np.float64)
        dims = np.asarray(patch_grid.dims, dtype=np.float64)
        lo = patch_grid.domain.lo + (lo_idx / dims) * patch_grid.domain.extent
        hi = patch_grid.domain.lo + (hi_idx / dims) * patch_grid.domain.extent
        return Box(lo, hi)

    def all_partition_boxes(self) -> list[Box]:
        return [self.partition_box(f) for f in range(self.num_partitions)]

    # -- ownership ---------------------------------------------------------------

    def partition_of_patch(self, patch_ijk: Sequence[int]) -> int | None:
        """Flat partition id of the patch, or None if outside every partition
        (possible for adaptive grids that exclude empty regions)."""
        pidx = []
        for axis in range(3):
            cuts = self.axis_cuts[axis]
            v = int(patch_ijk[axis])
            if v < cuts[0] or v >= cuts[-1]:
                return None
            pidx.append(int(np.searchsorted(cuts, v, side="right") - 1))
        return self.flatten(pidx)

    def partition_of_rank(self, rank: int) -> int | None:
        """Which partition rank ``rank``'s patch belongs to (aligned case)."""
        return self.partition_of_patch(self.decomp.cell_of_rank(rank))

    def aggregator_of_partition(self, flat: int) -> int:
        self.unflatten(flat)  # range check
        return self.aggregators[flat]

    def partitions_owned_by(self, rank: int) -> list[int]:
        """Partition ids whose aggregator is ``rank`` (usually 0 or 1)."""
        return [p for p, agg in enumerate(self.aggregators) if agg == rank]

    def senders_of_partition(self, flat: int) -> list[int]:
        """Ranks whose patches lie inside (or straddle into) the partition.

        Deterministic from the decomposition, so aggregators can compute
        their expected senders with no extra communication.
        """
        i, j, k = self.unflatten(flat)
        cx, cy, cz = self.axis_cuts
        ranks = []
        for pk in range(cz[k], cz[k + 1]):
            for pj in range(cy[j], cy[j + 1]):
                for pi in range(cx[i], cx[i + 1]):
                    ranks.append(self.decomp.rank_of_cell((pi, pj, pk)))
        return ranks

    def partitions_intersecting_box(self, box: Box) -> list[int]:
        """Partitions overlapping an arbitrary box (non-aligned path)."""
        return [
            f
            for f in range(self.num_partitions)
            if self.partition_box(f).intersects(box)
        ]

    def route_particles(self, rank: int, batch) -> list[tuple[int, object]]:
        """Aligned fast path: the whole batch goes to one partition (§3.3).

        No per-particle scan happens here — alignment guarantees the rank's
        patch (and hence all its particles) lies inside a single partition.
        """
        pid = self.partition_of_rank(rank)
        if pid is None:
            raise DomainError(
                f"rank {rank}'s patch is outside every partition of {self!r}"
            )
        return [(pid, batch)]

    def __repr__(self) -> str:
        return (
            f"AggregationGrid(dims={self.dims}, partitions={self.num_partitions}, "
            f"nprocs={self.nprocs})"
        )


class FreeAggregationGrid(BaseAggregationGrid):
    """A non-aligned aggregation grid: arbitrary cells over the domain.

    This exercises the general path of §3.3: a rank's patch may straddle
    several partitions, so the rank must scan its particles and bin them per
    intersecting partition (``route_particles``).  The paper supports this
    case but avoids it for uniform simulations; we keep it for adaptive-
    resolution decompositions and for the alignment ablation.
    """

    def __init__(self, decomp: PatchDecomposition, cell_grid, nprocs: int | None = None):
        from repro.domain.grid import CellGrid  # local import to avoid cycle noise

        if not isinstance(cell_grid, CellGrid):
            raise ConfigError(f"cell_grid must be a CellGrid, got {type(cell_grid)}")
        if not cell_grid.domain.contains_box(decomp.domain):
            raise DomainError(
                "non-aligned aggregation grid must cover the simulation domain: "
                f"{cell_grid.domain} does not contain {decomp.domain}"
            )
        self.decomp = decomp
        self.cell_grid = cell_grid
        self.nprocs = decomp.nprocs if nprocs is None else int(nprocs)
        self.aggregators = select_aggregators(cell_grid.num_cells, self.nprocs)

    @property
    def num_partitions(self) -> int:
        return self.cell_grid.num_cells

    def partition_box(self, flat: int) -> Box:
        return self.cell_grid.cell_box_flat(flat)

    def senders_of_partition(self, flat: int) -> list[int]:
        box = self.partition_box(flat)
        return self.decomp.ranks_intersecting(box)

    def route_particles(self, rank: int, batch) -> list[tuple[int, object]]:
        """General path: per-particle binning into intersecting partitions."""
        patch = self.decomp.patch_of_rank(rank)
        pids = [
            f
            for f in range(self.num_partitions)
            if self.partition_box(f).intersects(patch)
        ]
        if len(batch) == 0:
            return [(pid, batch) for pid in pids]
        cells = self.cell_grid.flat_cell_of_points(batch.positions)
        out = []
        for pid in pids:
            sub = batch[cells == pid] if (cells == pid).any() else batch[0:0]
            out.append((pid, sub))
        routed = sum(len(b) for _, b in out)
        if routed != len(batch):
            raise DomainError(
                f"rank {rank}: routed {routed} of {len(batch)} particles — "
                "particles outside the patch's intersecting partitions"
            )
        return out

    def __repr__(self) -> str:
        return (
            f"FreeAggregationGrid(dims={self.cell_grid.dims}, "
            f"partitions={self.num_partitions}, nprocs={self.nprocs})"
        )
