"""Cross-query batched planning: one coalesced read pass serves many plans.

The paper's core idea is spatial aggregation — merge many small scattered
requests into few large well-placed I/O operations.  PR 5 applied it
*within* one query (chunk runs coalesced per file); this module lifts it
*across* queries: the :class:`~repro.serve.service.QueryService` collects
the :class:`~repro.query.engine.QueryPlan`\\ s that are in flight during a
small batching window, and :func:`stage_plans` merges their per-file
demand into one coalesced scatter-gather read per file.  Execution then
*scatters* each query's slices back out of the shared decoded buffers
(:meth:`repro.query.engine.StagedReads.fetch`) instead of re-reading the
backend — N overlapping queries cost one backend pass per shared file
instead of N.

Bit-identical by construction
-----------------------------

Parity with serial execution is not checked after the fact; it falls out
of how the stage is built:

* the staged read uses the **same decode path** a direct read would
  (``read_columnar_runs_into`` for v4, ``read_data_file_into`` /
  ``read_particle_runs_into`` for rows), under the engine's own retry
  policy, with ``strict=True`` — the bytes landing in the stage are the
  bytes a serial read would have produced, or the file is not staged;
* each query run is provably contained in exactly one merged run (a
  merged run is a connected component of the union of intervals, and any
  single query run is itself one interval), so a fetch is a contiguous
  copy, never a re-decode;
* anything not stageable — LOD-prefix entries (their checksum
  verification belongs to the direct path), files that fail the staged
  read, plans whose fields are missing — simply **misses** and falls back
  to its own direct read, i.e. exactly serial behaviour.

Demand rules: a file is staged only when two or more distinct queries
want it (staging a single-reader file would just add a copy); the merged
dtype is the union of the demanding queries' projected fields (row files
always decode full records, as their direct reads do).
"""

from __future__ import annotations

import numpy as np

from repro.format.datafile import (
    read_columnar_runs_into,
    read_data_file_into,
    read_particle_runs_into,
)
from repro.format.metadata import MetadataRecord
from repro.obs.recorder import Recorder
from repro.query.engine import QueryEngine, QueryPlan, QueryResult, StagedReads

__all__ = ["stage_plans", "execute_batch", "merge_runs"]


def merge_runs(
    runs: list[tuple[int, int]]
) -> tuple[tuple[int, int], ...]:
    """Coalesce ``(start, count)`` intervals: union, overlapping/adjacent
    intervals merged, ascending.  The union of chunk-aligned intervals is
    chunk-aligned (every component boundary is a boundary of some input
    run), so merged runs stay valid for columnar reads."""
    if not runs:
        return ()
    ordered = sorted((int(s), int(c)) for s, c in runs if c > 0)
    merged: list[list[int]] = []
    for start, count in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], start + count)
        else:
            merged.append([start, start + count])
    return tuple((s, e - s) for s, e in merged)


def _union_dtype(
    full_dtype: np.dtype, field_sets: list[tuple[str, ...]]
) -> np.dtype:
    """The union of the demanding queries' projected fields, in file order."""
    keep = set()
    for names in field_sets:
        keep.update(names)
    if keep >= set(full_dtype.names or ()):
        return full_dtype
    fields: list[tuple] = []
    for name in full_dtype.names or ():
        if name not in keep:
            continue
        sub = full_dtype.fields[name][0]  # type: ignore[index]
        if sub.shape:
            fields.append((name, sub.base, sub.shape))
        else:
            fields.append((name, sub.base))
    return np.dtype(fields)


def _demand_for(
    plan: QueryPlan, exact: bool
) -> list[tuple[MetadataRecord, tuple[tuple[int, int], ...]]]:
    """The per-file particle runs one plan's execution will request.

    Mirrors :meth:`QueryEngine.run` exactly: chunk runs apply only to
    exact box reads; empty-run entries read nothing; LOD-prefix entries
    (a head read shorter than the file) are excluded — they are never
    served from a stage.
    """
    use_runs = exact and plan.box is not None
    demand = []
    for i, (rec, count) in enumerate(plan.entries):
        if count <= 0:
            continue
        runs = plan.chunk_runs.get(i) if use_runs else None
        if runs is not None and not runs:
            continue
        if runs is None and count < rec.particle_count:
            continue  # LOD prefix: direct path only
        want = runs if runs is not None else ((0, count),)
        demand.append((rec, want))
    return demand


def stage_plans(
    engine: QueryEngine,
    items: list[tuple[QueryPlan, bool]],
    recorder: Recorder | None = None,
) -> StagedReads:
    """Pre-read every file that two or more of ``items`` will touch.

    ``items`` are ``(plan, exact)`` pairs exactly as they will be passed
    to :meth:`QueryEngine.run`.  Returns the :class:`StagedReads` to pass
    to each of those runs; files whose staged read fails (after the
    engine's own retries) are silently left unstaged, so every query
    falls back to its direct read and overall behaviour — including
    degraded-mode skipping — is exactly serial.

    Staged-read retry events land on ``recorder`` (default: the engine's
    recorder), not on any one query's — a transient fault absorbed once
    for the whole batch is accounted to the batch.
    """
    recorder = recorder if recorder is not None else engine.recorder
    full_dtype = engine.dtype
    # path -> (record, [runs per demanding query], [projected field names]).
    demand: dict[
        str, tuple[MetadataRecord, list[tuple[tuple[int, int], ...]], list[tuple[str, ...]]]
    ] = {}
    for plan, exact in items:
        names = tuple(plan.result_dtype(full_dtype).names or ())
        for rec, want in _demand_for(plan, exact):
            entry = demand.get(rec.file_path)
            if entry is None:
                demand[rec.file_path] = (rec, [want], [names])
            else:
                entry[1].append(want)
                entry[2].append(names)
    staged = StagedReads()
    for path, (rec, wants, field_sets) in demand.items():
        if len(wants) < 2:
            continue  # nobody to share with: direct reads are already optimal
        merged = merge_runs([r for want in wants for r in want])
        total = sum(c for _s, c in merged)
        if total == 0:
            continue
        index = engine.dataset.chunk_index(rec)
        columnar = index is not None and getattr(index, "codec", None) is not None
        try:
            if columnar:
                buf = np.empty(total, dtype=_union_dtype(full_dtype, field_sets))
                discard: list[tuple[int, str, str]] = []
                engine.retry.call(
                    read_columnar_runs_into,
                    engine.backend,
                    path,
                    full_dtype,
                    index,
                    merged,
                    buf,
                    actor=engine.actor,
                    strict=True,
                    skipped=discard,
                    recorder=recorder,
                )
            else:
                # Row files decode whole records whatever the projection,
                # exactly as their direct reads do.
                buf = np.empty(total, dtype=full_dtype)
                if merged == ((0, rec.particle_count),):
                    # Whole file: use the footer-verifying read, the same
                    # primitive a direct whole-file read runs.
                    engine.retry.call(
                        read_data_file_into,
                        engine.backend,
                        path,
                        full_dtype,
                        buf,
                        actor=engine.actor,
                        recorder=recorder,
                    )
                else:
                    engine.retry.call(
                        read_particle_runs_into,
                        engine.backend,
                        path,
                        full_dtype,
                        merged,
                        buf,
                        actor=engine.actor,
                        recorder=recorder,
                    )
        except Exception:  # noqa: BLE001 — any failure degrades to direct reads
            continue
        staged.stage(path, merged, buf)
    return staged


def execute_batch(
    engine: QueryEngine,
    items: list[tuple[QueryPlan, bool]],
    recorder: Recorder | None = None,
) -> tuple[list[QueryResult], StagedReads]:
    """Stage, then run every plan against the shared stage, serially.

    The deterministic single-threaded core of batched serving — the
    service wraps this in admission control and worker threads, and the
    parity tests call it directly.  Returns the per-query results in
    ``items`` order plus the stage (for ops accounting).
    """
    staged = stage_plans(engine, items, recorder=recorder)
    results = [
        engine.run(plan, exact, recorder=recorder, staged=staged)
        for plan, exact in items
    ]
    return results, staged
