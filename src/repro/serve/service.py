"""The multi-tenant query service: admission, batching windows, dispatch.

:class:`QueryService` serves spatial queries from many concurrent clients
over shared open :class:`~repro.dataset.Dataset` facades:

* **admission control** at :meth:`submit` — a closed service, a full
  pending queue, or an exhausted per-client quota rejects *at the door*
  (:class:`~repro.errors.AdmissionError`, counted under
  ``server.rejected``); an admitted query is always executed;
* a **batching window** — the dispatcher collects queries that arrive
  within ``batch_window`` seconds (up to ``max_batch``) into one batch,
  trading a bounded sliver of latency for cross-query I/O coalescing;
* **batched planning** — each batch is planned with the dataset's shared
  :class:`~repro.query.engine.QueryEngine`, files wanted by two or more
  queries are pre-read once (:func:`repro.serve.batch.stage_plans`), and
  every query then executes against the shared stage, bit-identical to
  running it alone;
* **per-query isolation** — each query records into its own child
  recorder (merged into the service recorder afterwards), gets its own
  :class:`~repro.query.engine.QueryResult` future, and a failing query
  fails only its own future.

Everything observable lands on one :class:`~repro.obs.recorder.Recorder`
under the ``server.*`` names (see OBSERVABILITY.md): queries and bytes
per client, batches and widths, queue depth at dispatch, admission
rejections by reason, and backend ops saved by staging.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Mapping
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.dataset import Dataset, as_dataset
from repro.errors import AdmissionError, DeadlineExceededError, ServiceError
from repro.io.resilience import Deadline
from repro.obs.names import (
    DEADLINE_SHED,
    EV_DEADLINE_SHED,
    EV_SERVER_REJECT,
    SERVER_BATCH_WIDTH,
    SERVER_BATCHES,
    SERVER_CLIENT_BYTES,
    SERVER_OPS_SAVED,
    SERVER_QUERIES,
    SERVER_QUEUE_DEPTH,
    SERVER_REJECTED,
    SERVER_STAGED_FILES,
    SPAN_SERVER_BATCH,
)
from repro.obs.recorder import Recorder
from repro.query.engine import QueryResult
from repro.serve.batch import stage_plans

__all__ = ["QueryService", "ClientQuota"]


@dataclass(frozen=True)
class ClientQuota:
    """Per-client admission limits (``None`` disables a limit)."""

    #: queries a client may have admitted-but-unfinished at once.
    max_inflight: int | None = None
    #: cumulative result bytes a client may be delivered over the
    #: service's lifetime (a hard byte budget, the openPMD/Darshan-style
    #: per-consumer traffic accounting turned into a control).
    max_bytes: int | None = None


@dataclass
class _PendingQuery:
    """One admitted query waiting in (or leaving) the batching window."""

    client: str
    dataset: str
    box: Any
    max_level: int | None
    attrs: tuple[str, ...] | None
    where: dict[str, tuple[float, float]] | None
    exact: bool
    future: "Future[QueryResult]"
    deadline: Deadline | None = None
    submitted: float = field(default_factory=time.monotonic)


class QueryService:
    """Bounded-concurrency batched query serving over shared datasets.

    ``datasets`` is one :class:`~repro.dataset.Dataset` (or backend/path)
    or a mapping of name -> dataset for multi-dataset serving; queries
    address a dataset by name (a single dataset is named ``"default"``).
    Facades are shared across all clients — their memoization and the
    executor must be (and are) thread-safe.

    ``batch_window`` is the coalescing window in seconds: the dispatcher
    waits that long after the first pending query for companions before
    dispatching (``0`` dispatches immediately — no cross-query batching
    unless queries are already queued).  ``max_batch`` caps batch width,
    ``max_pending`` the admission queue.  ``max_workers`` service worker
    threads execute batches concurrently.

    With ``autostart=False`` the service admits queries but dispatches
    nothing until :meth:`start` — tests and benchmarks use this to build
    full batches deterministically.
    """

    def __init__(
        self,
        datasets: "Dataset | Mapping[str, Dataset] | object",
        *,
        max_workers: int = 2,
        batch_window: float = 0.002,
        max_batch: int = 16,
        max_pending: int = 256,
        quota: ClientQuota | None = None,
        recorder: Recorder | None = None,
        autostart: bool = True,
    ):
        if isinstance(datasets, Mapping):
            named = {str(k): as_dataset(v) for k, v in datasets.items()}
        else:
            named = {"default": as_dataset(datasets)}
        if not named:
            raise ServiceError("a QueryService needs at least one dataset")
        for ds in named.values():
            ds.load()
        self._datasets = named
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if batch_window < 0:
            raise ServiceError(f"batch_window must be >= 0, got {batch_window}")
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self.quota = quota if quota is not None else ClientQuota()
        self.recorder = recorder if recorder is not None else Recorder(rank=-1)
        self._cond = threading.Condition()
        self._queue: deque[_PendingQuery] = deque()
        self._closed = False
        self._inflight: dict[str, int] = {}
        self._client_bytes: dict[str, int] = {}
        self._latencies: list[float] = []
        self._queries_done = 0
        self._batches = 0
        self._batch_width_sum = 0
        self._ops_saved = 0
        self._staged_files = 0
        self._drained = 0
        self._cancelled = 0
        #: dispatched batches (pool future + members) still possibly live;
        #: close()'s force-cancel path needs to find stragglers.
        self._batch_futures: list[tuple[Future, list[_PendingQuery]]] = []
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._dispatcher: threading.Thread | None = None
        if autostart:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryService":
        """Start the dispatcher (idempotent).  Queries admitted before
        ``start`` are dispatched as soon as it runs — submitting a burst
        against a stopped service then starting it yields maximal batches."""
        with self._cond:
            if self._closed:
                raise ServiceError("service is closed")
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="repro-serve-dispatch",
                    daemon=True,
                )
                self._dispatcher.start()
        return self

    def close(self, drain_timeout: float | None = None) -> None:
        """Stop admitting, drain admitted queries, release the workers.

        Clean-shutdown contract: every future obtained from :meth:`submit`
        before ``close`` is resolved (result or exception) by the time
        ``close`` returns.  With ``drain_timeout=None`` the drain blocks
        until every admitted query has executed (the historical behaviour).
        With a timeout, queries that have not finished within
        ``drain_timeout`` seconds are **force-cancelled**: their futures
        fail with :class:`~repro.errors.ServiceError` immediately — a dead
        remote store can therefore never wedge shutdown.  Queries that
        completed during the drain count as *drained*, force-failed ones
        as *cancelled*; :meth:`stats` reports both.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            dispatcher = self._dispatcher
            done_at_close = self._queries_done
            self._cond.notify_all()
        if dispatcher is not None:
            dispatcher.join(drain_timeout)
        else:
            # Never started: fail the queue rather than strand its futures.
            self._cancel_all(
                ServiceError("service closed before dispatch started")
            )
        if drain_timeout is None:
            self._pool.shutdown(wait=True)
        else:
            # Bounded drain: give in-flight batches what is left of the
            # budget, then cut every straggler loose.
            stop = time.monotonic() + max(0.0, drain_timeout)
            for fut, _batch in self._snapshot_batches():
                remaining = stop - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    fut.exception(timeout=remaining)
                except Exception:  # noqa: BLE001 — timeout or batch failure
                    pass
            self._cancel_all(
                ServiceError(
                    f"query cancelled: close() drain timeout "
                    f"({drain_timeout}s) expired"
                )
            )
            self._pool.shutdown(wait=False, cancel_futures=True)
        with self._cond:
            self._drained += self._queries_done - done_at_close

    def _snapshot_batches(self) -> list[tuple[Future, list[_PendingQuery]]]:
        with self._cond:
            return list(self._batch_futures)

    def _cancel_all(self, exc: ServiceError) -> None:
        """Fail every unresolved admitted query with ``exc`` (see close)."""
        with self._cond:
            queued = list(self._queue)
            self._queue.clear()
            batches = list(self._batch_futures)
        for fut, batch in batches:
            fut.cancel()  # keeps a not-yet-started batch from ever running
            for pending in batch:
                self._cancel(pending, exc)
        for pending in queued:
            self._cancel(pending, exc)

    def _cancel(self, pending: _PendingQuery, exc: ServiceError) -> None:
        with self._cond:
            if pending.future.done():
                return
            self._inflight[pending.client] = max(
                0, self._inflight.get(pending.client, 0) - 1
            )
            self._cancelled += 1
            pending.future.set_exception(exc)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- admission -----------------------------------------------------------

    def _reject(self, client: str, reason: str, detail: str) -> AdmissionError:
        self.recorder.add(SERVER_REJECTED, 1, key=(reason,))
        self.recorder.event(EV_SERVER_REJECT, client=client, reason=reason)
        return AdmissionError(reason, detail)

    def submit(
        self,
        box,
        *,
        client: str = "anon",
        dataset: str = "default",
        max_level: int | None = None,
        attrs: tuple[str, ...] | list[str] | None = None,
        where: dict[str, tuple[float, float]] | None = None,
        exact: bool = True,
        deadline_s: float | None = None,
    ) -> "Future[QueryResult]":
        """Admit one spatial query; returns a future of its
        :class:`~repro.query.engine.QueryResult`.

        Admission is all-or-nothing and synchronous: on return the query
        is queued for the batching window, or an
        :class:`~repro.errors.AdmissionError` was raised (and counted).

        ``deadline_s`` gives the query an end-to-end budget: a budget the
        service knows it cannot meet (it does not even cover the batching
        window) is shed *at admission* with reason ``"deadline"``; an
        admitted deadline rides the query into the engine, where the
        remote tier's per-request timeouts, retries, and degraded reads
        all honour it.  A deadline that expires while the query waits in
        the queue fails that query's future with
        :class:`~repro.errors.DeadlineExceededError` at dispatch.
        """
        client = str(client)
        deadline: Deadline | None = None
        if deadline_s is not None:
            if deadline_s <= self.batch_window:
                raise self._reject(
                    client,
                    "deadline",
                    f"deadline of {deadline_s * 1e3:.1f} ms cannot be met: "
                    f"it does not cover the {self.batch_window * 1e3:.1f} ms "
                    "batching window",
                )
            deadline = Deadline.after(deadline_s)
        with self._cond:
            if self._closed:
                raise self._reject(client, "closed", "service is closed")
            if dataset not in self._datasets:
                raise self._reject(
                    client,
                    "unknown-dataset",
                    f"unknown dataset {dataset!r}; serving "
                    f"{sorted(self._datasets)}",
                )
            if len(self._queue) >= self.max_pending:
                raise self._reject(
                    client,
                    "queue-full",
                    f"pending queue is full ({self.max_pending})",
                )
            quota = self.quota
            if (
                quota.max_inflight is not None
                and self._inflight.get(client, 0) >= quota.max_inflight
            ):
                raise self._reject(
                    client,
                    "client-inflight",
                    f"client {client!r} already has "
                    f"{self._inflight.get(client, 0)} queries in flight "
                    f"(limit {quota.max_inflight})",
                )
            if (
                quota.max_bytes is not None
                and self._client_bytes.get(client, 0) >= quota.max_bytes
            ):
                raise self._reject(
                    client,
                    "client-bytes",
                    f"client {client!r} exhausted its byte budget "
                    f"({self._client_bytes.get(client, 0)} of "
                    f"{quota.max_bytes})",
                )
            attrs_t = tuple(attrs) if attrs is not None else None
            pending = _PendingQuery(
                client=client,
                dataset=dataset,
                box=box,
                max_level=max_level,
                attrs=attrs_t,
                where=dict(where) if where else None,
                exact=exact,
                future=Future(),
                deadline=deadline,
            )
            self._inflight[client] = self._inflight.get(client, 0) + 1
            self.recorder.add(SERVER_QUERIES, 1, key=(client,))
            self._queue.append(pending)
            self._cond.notify_all()
        return pending.future

    def query(self, box, **kwargs: Any) -> QueryResult:
        """Synchronous :meth:`submit` — blocks for the result."""
        return self.submit(box, **kwargs).result()

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                # Batch collection: wait out the window (or until the
                # batch is full / the service closes) for companions.
                deadline = time.monotonic() + self.batch_window
                while len(self._queue) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                depth = len(self._queue)
                batch = [
                    self._queue.popleft()
                    for _ in range(min(depth, self.max_batch))
                ]
            fut = self._pool.submit(self._run_batch, batch, depth)
            with self._cond:
                self._batch_futures = [
                    (f, b) for f, b in self._batch_futures if not f.done()
                ]
                self._batch_futures.append((fut, batch))

    def _run_batch(self, batch: list[_PendingQuery], depth: int) -> None:
        try:
            self._run_batch_inner(batch, depth)
        finally:
            # Clean-shutdown backstop: whatever went wrong above, no
            # admitted query may be left with an unresolved future.
            for pending in batch:
                if not pending.future.done():
                    self._finish(
                        pending,
                        None,
                        ServiceError(
                            "internal dispatch failure; query not executed"
                        ),
                    )

    def _run_batch_inner(self, batch: list[_PendingQuery], depth: int) -> None:
        with self.recorder.span(
            SPAN_SERVER_BATCH, cat="serve", width=len(batch), queue_depth=depth
        ):
            with self._cond:
                self._batches += 1
                self._batch_width_sum += len(batch)
            self.recorder.add(SERVER_BATCHES, 1)
            self.recorder.add(SERVER_BATCH_WIDTH, len(batch))
            self.recorder.add(SERVER_QUEUE_DEPTH, depth)
            # Plan every query up front; a plan failure fails only its own
            # future and drops it from the batch.
            planned: list[tuple[_PendingQuery, Any]] = []
            for pending in batch:
                if pending.deadline is not None and pending.deadline.expired():
                    # Expired while queued: shed before any planning or I/O.
                    self.recorder.add(DEADLINE_SHED, 1)
                    self.recorder.event(
                        EV_DEADLINE_SHED, path=pending.dataset, op="serve"
                    )
                    self._finish(
                        pending,
                        None,
                        DeadlineExceededError(
                            f"deadline of {pending.deadline.total_s * 1e3:.0f} "
                            "ms expired while the query was queued"
                        ),
                    )
                    continue
                engine = self._datasets[pending.dataset].engine()
                try:
                    plan = engine.plan_box(
                        pending.box,
                        max_level=pending.max_level,
                        attrs=pending.attrs,
                        where=pending.where,
                    )
                except Exception as exc:  # noqa: BLE001 — per-query isolation
                    self._finish(pending, None, exc)
                    continue
                planned.append((pending, plan))
            # Stage shared files per dataset, then execute each query
            # against its dataset's stage.
            by_dataset: dict[str, list[tuple[_PendingQuery, Any]]] = {}
            for pending, plan in planned:
                by_dataset.setdefault(pending.dataset, []).append((pending, plan))
            for name, group in by_dataset.items():
                engine = self._datasets[name].engine()
                staged = None
                if len(group) > 1:
                    batch_recorder = self.recorder.child()
                    staged = stage_plans(
                        engine,
                        [(plan, pending.exact) for pending, plan in group],
                        recorder=batch_recorder,
                    )
                    self.recorder.merge(batch_recorder)
                for pending, plan in group:
                    child = self.recorder.child()
                    try:
                        result = engine.run(
                            plan,
                            pending.exact,
                            recorder=child,
                            staged=staged,
                            deadline=pending.deadline,
                        )
                    except Exception as exc:  # noqa: BLE001
                        self.recorder.merge(child)
                        self._finish(pending, None, exc)
                        continue
                    self.recorder.merge(child)
                    self._finish(pending, result, None)
                if staged is not None:
                    saved = max(0, staged.hits - len(staged))
                    with self._cond:
                        self._ops_saved += saved
                        self._staged_files += len(staged)
                    if saved:
                        self.recorder.add(SERVER_OPS_SAVED, saved)
                    if len(staged):
                        self.recorder.add(SERVER_STAGED_FILES, len(staged))

    def _finish(
        self,
        pending: _PendingQuery,
        result: QueryResult | None,
        error: Exception | None,
    ) -> None:
        """Resolve one query's future and settle its admission accounting.

        The future is resolved under the service lock so this can never
        race :meth:`_cancel` (close's force-cancel path); a query that was
        already cancelled is a no-op here — its accounting settled when it
        was cancelled.
        """
        nbytes = (
            int(result.batch.data.nbytes) if result is not None else 0
        )
        with self._cond:
            if pending.future.done():
                return  # force-cancelled by close(); already settled
            self._inflight[pending.client] = max(
                0, self._inflight.get(pending.client, 0) - 1
            )
            if nbytes:
                self._client_bytes[pending.client] = (
                    self._client_bytes.get(pending.client, 0) + nbytes
                )
            self._queries_done += 1
            self._latencies.append(time.monotonic() - pending.submitted)
            if error is not None:
                pending.future.set_exception(error)
            else:
                assert result is not None
                pending.future.set_result(result)
        if nbytes:
            self.recorder.add(
                SERVER_CLIENT_BYTES, nbytes, key=(pending.client,)
            )

    # -- introspection -------------------------------------------------------

    @staticmethod
    def _percentile(values: list[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        pos = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[int(pos)]

    def stats(self) -> dict[str, Any]:
        """A snapshot of the service's lifetime accounting."""
        with self._cond:
            latencies = list(self._latencies)
            batches = self._batches
            widths = self._batch_width_sum
            return {
                "queries": self._queries_done,
                "pending": len(self._queue),
                "batches": batches,
                "mean_batch_width": (widths / batches) if batches else 0.0,
                "ops_saved": self._ops_saved,
                "staged_files": self._staged_files,
                "p50_latency_s": self._percentile(latencies, 0.50),
                "p99_latency_s": self._percentile(latencies, 0.99),
                "client_bytes": dict(self._client_bytes),
                "drained": self._drained,
                "cancelled": self._cancelled,
            }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"QueryService(datasets={sorted(self._datasets)}, {state}, "
            f"window={self.batch_window}s, max_batch={self.max_batch})"
        )
