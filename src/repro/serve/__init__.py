"""Multi-tenant query serving over the spatial format.

The "millions of users" layer: many concurrent clients, shared open
:class:`~repro.dataset.Dataset` facades, bounded concurrency, per-client
quotas — and the paper's aggregate-before-storage idea applied *across*
queries: plans that arrive within a small batching window have their
per-file chunk runs merged into one coalesced read pass per shared file,
and each query's result is scattered back out of the shared buffers,
bit-identical to running it alone.

* :class:`~repro.serve.service.QueryService` — admission control,
  batching windows, worker dispatch, ``server.*`` observability;
* :func:`~repro.serve.batch.stage_plans` /
  :func:`~repro.serve.batch.execute_batch` — the deterministic batched
  planner underneath (directly testable, no threads).
"""

from repro.serve.batch import execute_batch, merge_runs, stage_plans
from repro.serve.service import ClientQuota, QueryService

__all__ = [
    "QueryService",
    "ClientQuota",
    "stage_plans",
    "execute_batch",
    "merge_runs",
]
