"""Uintah-style workloads (paper §5.1).

"In our experiments we used two workloads with 32,768 and 65,536 particles
per core.  Each particle is represented by 15 double precision values
(position, stress tensor, density, volume, ID) and 1 single precision
variable (type).  For the two workloads this configuration corresponds to 4
and 8 MB respectively, data per core for each timestep."

:class:`UintahWorkload` bundles a decomposition with a per-rank generator so
SPMD writer code stays one line per rank; distributions beyond uniform map
to the §6 / Fig. 9 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.domain.box import Box
from repro.domain.decomposition import PatchDecomposition
from repro.errors import ConfigError
from repro.particles.batch import ParticleBatch
from repro.particles.dtype import UINTAH_DTYPE, UINTAH_PARTICLE_BYTES
from repro.particles.generators import (
    clustered_particles,
    injection_jet_particles,
    occupancy_particles,
    uniform_particles,
)

#: The two per-core loads evaluated in the paper.
UINTAH_PARTICLES_PER_CORE = (32_768, 65_536)


def per_core_bytes(particles_per_core: int) -> int:
    """Bytes per core per timestep (4 MB / 8 MB for the paper's workloads)."""
    return particles_per_core * UINTAH_PARTICLE_BYTES


@dataclass
class UintahWorkload:
    """A reproducible particle workload over a decomposed domain.

    ``distribution`` selects the generator:

    * ``"uniform"`` — the §5 weak-scaling workload;
    * ``"clustered"`` — Gaussian blobs (Fig. 10a-style density variation);
    * ``"occupancy"`` — particles confined to a fraction of the domain
      (§6.1; requires ``occupancy``);
    * ``"jet"`` — the coal-injection cone of Fig. 9 (optional ``progress``).
    """

    decomp: PatchDecomposition
    particles_per_core: int = 32_768
    distribution: str = "uniform"
    seed: int = 0
    occupancy: float = 1.0
    progress: float = 1.0
    dtype: object = field(default=UINTAH_DTYPE)

    _DISTRIBUTIONS = ("uniform", "clustered", "occupancy", "jet")

    def __post_init__(self) -> None:
        if self.distribution not in self._DISTRIBUTIONS:
            raise ConfigError(
                f"distribution must be one of {self._DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if self.particles_per_core < 1:
            raise ConfigError(
                f"particles_per_core must be >= 1, got {self.particles_per_core}"
            )

    @property
    def domain(self) -> Box:
        return self.decomp.domain

    @property
    def nprocs(self) -> int:
        return self.decomp.nprocs

    def generate_rank(self, rank: int) -> ParticleBatch:
        """The particles held by ``rank`` at this timestep."""
        patch = self.decomp.patch_of_rank(rank)
        if self.distribution == "uniform":
            return uniform_particles(
                patch, self.particles_per_core, self.dtype, self.seed, rank
            )
        if self.distribution == "clustered":
            return clustered_particles(
                patch, self.particles_per_core, dtype=self.dtype,
                seed=self.seed, rank=rank,
            )
        if self.distribution == "occupancy":
            return occupancy_particles(
                self.domain, patch, self.particles_per_core, self.occupancy,
                self.dtype, self.seed, rank,
            )
        # "jet": particles live along the injection cone; each rank keeps
        # the part of the global jet that falls inside its patch.
        jet = injection_jet_particles(
            self.domain,
            self.particles_per_core,
            progress=self.progress,
            dtype=self.dtype,
            seed=self.seed,
            rank=rank,
        )
        return jet.select_in_box(patch)

    def total_particles(self) -> int:
        """Exact global particle count (sums per-rank generator output)."""
        return sum(len(self.generate_rank(r)) for r in range(self.nprocs))
