"""The paper's experiment grids: process counts, reader counts, occupancies."""

from __future__ import annotations

from repro.errors import ConfigError

#: Weak-scaling process counts of Fig. 5 (512 to 262,144, powers of two).
PAPER_PROCESS_COUNTS: tuple[int, ...] = tuple(512 * 2**i for i in range(10))

#: Reader counts for the Fig. 7 strong-scaling reads.
READ_PROCESS_COUNTS_THETA: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048)
READ_PROCESS_COUNTS_WORKSTATION: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: §6.1 occupancy sweep: whole domain down to one eighth.
OCCUPANCY_LEVELS: tuple[float, ...] = (1.0, 0.5, 0.25, 0.125)


def weak_scaling_points(
    min_procs: int = 512, max_procs: int = 262_144
) -> list[int]:
    """Power-of-two process counts in [min, max], like the paper's sweep."""
    if min_procs < 1 or max_procs < min_procs:
        raise ConfigError(
            f"invalid weak-scaling range [{min_procs}, {max_procs}]"
        )
    out = []
    n = 1
    while n < min_procs:
        n *= 2
    while n <= max_procs:
        out.append(n)
        n *= 2
    return out
