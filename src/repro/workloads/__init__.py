"""Workload definitions matching the paper's experimental setup (§5.1, §6.1)."""

from repro.workloads.uintah import (
    UINTAH_PARTICLES_PER_CORE,
    UintahWorkload,
    per_core_bytes,
)
from repro.workloads.scaling import (
    PAPER_PROCESS_COUNTS,
    READ_PROCESS_COUNTS_THETA,
    READ_PROCESS_COUNTS_WORKSTATION,
    OCCUPANCY_LEVELS,
    weak_scaling_points,
)

__all__ = [
    "UintahWorkload",
    "UINTAH_PARTICLES_PER_CORE",
    "per_core_bytes",
    "PAPER_PROCESS_COUNTS",
    "READ_PROCESS_COUNTS_THETA",
    "READ_PROCESS_COUNTS_WORKSTATION",
    "OCCUPANCY_LEVELS",
    "weak_scaling_points",
]
