"""Synthetic particle distributions used across tests, examples and benches.

The paper evaluates on Uintah-style workloads (uniform per-core particle
counts) and on progressively non-uniform distributions (§6): regions of the
domain with lower density or no particles at all, and a coal-particle
injection jet (Fig. 9).  Each generator here produces positions inside a
target :class:`~repro.domain.box.Box` using half-open sampling (``[lo, hi)``)
so tiling boxes partition the output exactly.

All generators fill the non-geometric fields with plausible values (ids are
globally unique when a ``rank`` is supplied; density/volume positive) so the
attribute-range query paths have something real to chew on.
"""

from __future__ import annotations

import numpy as np

from repro.domain.box import Box
from repro.particles.batch import ParticleBatch
from repro.particles.dtype import UINTAH_DTYPE
from repro.utils.rng import spawn_rng


def _fill_fields(
    positions: np.ndarray,
    dtype: np.dtype,
    rng: np.random.Generator,
    rank: int,
    id_base: int,
) -> ParticleBatch:
    out = np.zeros(len(positions), dtype=dtype)
    out["position"] = positions
    names = dtype.names or ()
    n = len(positions)
    if "id" in names:
        out["id"] = np.arange(id_base, id_base + n, dtype=np.float64)
    if "density" in names:
        out["density"] = rng.lognormal(mean=0.0, sigma=0.4, size=n)
    if "volume" in names:
        out["volume"] = rng.uniform(0.5, 1.5, size=n)
    if "stress" in names:
        out["stress"] = rng.normal(0.0, 1.0, size=(n, 3, 3))
    if "type" in names:
        out["type"] = (rank % 4).__float__()
    return ParticleBatch(out)


def _sample_in_box(box: Box, n: int, rng: np.random.Generator) -> np.ndarray:
    """n uniform samples in [lo, hi) of ``box``."""
    u = rng.random((n, 3))  # in [0, 1)
    return box.lo + u * box.extent


def uniform_particles(
    box: Box,
    count: int,
    dtype: np.dtype = UINTAH_DTYPE,
    seed: int | None = 0,
    rank: int = 0,
) -> ParticleBatch:
    """``count`` particles uniformly distributed in ``box``.

    ``rank`` keys the RNG stream and the global id range, so per-rank calls
    with the same seed produce disjoint, reproducible particle sets — the
    weak-scaling workload of §5.
    """
    rng = spawn_rng(seed, rank)
    pos = _sample_in_box(box, count, rng)
    return _fill_fields(pos, dtype, rng, rank, id_base=rank * count)


def clustered_particles(
    box: Box,
    count: int,
    num_clusters: int = 4,
    spread: float = 0.08,
    dtype: np.dtype = UINTAH_DTYPE,
    seed: int | None = 0,
    rank: int = 0,
) -> ParticleBatch:
    """Gaussian-blob clusters inside ``box`` (Fig. 10a-style non-uniformity).

    ``spread`` is the cluster standard deviation as a fraction of the box
    extent.  Samples falling outside the box are reflected back inside, so
    the count is exact and the half-open invariant holds.
    """
    rng = spawn_rng(seed, rank, 1)
    centers = _sample_in_box(box, num_clusters, rng)
    assignment = rng.integers(0, num_clusters, size=count)
    pos = centers[assignment] + rng.normal(
        0.0, spread, size=(count, 3)
    ) * box.extent
    pos = _reflect_into(pos, box)
    return _fill_fields(pos, dtype, rng, rank, id_base=rank * count)


def occupancy_particles(
    domain: Box,
    patch: Box,
    count: int,
    occupancy: float,
    dtype: np.dtype = UINTAH_DTYPE,
    seed: int | None = 0,
    rank: int = 0,
) -> ParticleBatch:
    """The §6.1 shrinking-occupancy workload.

    Particles are confined to the sub-box covering the first ``occupancy``
    fraction of the domain along x (100% -> whole domain, 12.5% -> first
    eighth).  A rank whose ``patch`` lies outside the populated slab gets an
    empty batch; a rank straddling or inside it receives ``count`` particles
    in the overlap — total particle count is preserved across occupancy
    levels by boosting the per-populated-rank density, exactly as in the
    paper ("the total number of particles are same across all
    configurations").
    """
    if not 0.0 < occupancy <= 1.0:
        raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
    hi = domain.lo.copy()
    hi = domain.lo + domain.extent * np.array([occupancy, 1.0, 1.0])
    slab = Box(domain.lo, hi)
    overlap = patch.intersection(slab)
    if overlap is None:
        return ParticleBatch(np.zeros(0, dtype=dtype))
    # Scale the count so the *global* total stays constant: the populated
    # fraction of ranks carries 1/occupancy times the per-rank base load.
    frac = overlap.volume / patch.volume
    boosted = int(round(count * frac / occupancy))
    rng = spawn_rng(seed, rank, 2)
    pos = _sample_in_box(overlap, boosted, rng)
    return _fill_fields(pos, dtype, rng, rank, id_base=rank * 4 * count)


def injection_jet_particles(
    domain: Box,
    count: int,
    progress: float = 1.0,
    cone_half_angle: float = 0.18,
    dtype: np.dtype = UINTAH_DTYPE,
    seed: int | None = 0,
    rank: int = 0,
) -> ParticleBatch:
    """A coal-injection-style jet (Fig. 9): particles stream from an inlet.

    The jet enters at the center of the low-x face and expands as a cone
    along +x.  ``progress`` in (0, 1] is how far into the domain the front
    has advanced — time-stepping a simulation is modelled by increasing it.
    Density of particles decays along the jet, with turbulence-like jitter.
    """
    if not 0.0 < progress <= 1.0:
        raise ValueError(f"progress must be in (0, 1], got {progress}")
    rng = spawn_rng(seed, rank, 3)
    # Depth along the jet: biased toward the inlet (injected over time).
    depth = rng.beta(1.2, 2.2, size=count) * progress
    radius = np.tan(cone_half_angle) * depth + 0.01
    theta = rng.uniform(0.0, 2 * np.pi, size=count)
    r = radius * np.sqrt(rng.random(count))
    jitter = rng.normal(0.0, 0.01, size=(count, 3))
    ext = domain.extent
    x = domain.lo[0] + depth * ext[0]
    y = domain.center[1] + r * np.cos(theta) * ext[1]
    z = domain.center[2] + r * np.sin(theta) * ext[2]
    pos = np.stack([x, y, z], axis=1) + jitter * ext
    pos = _reflect_into(pos, domain)
    return _fill_fields(pos, dtype, rng, rank, id_base=rank * count)


def _reflect_into(pos: np.ndarray, box: Box) -> np.ndarray:
    """Reflect stray samples back into [lo, hi) of ``box``."""
    ext = box.extent
    rel = (pos - box.lo) / ext
    rel = np.abs(rel)
    rel = np.where(rel > 1.0, 2.0 - rel, rel)
    rel = np.clip(rel, 0.0, np.nextafter(1.0, 0.0))
    return box.lo + rel * ext
