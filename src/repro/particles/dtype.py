"""Particle record layouts.

The experimental setup in the paper (§5.1): "Each particle is represented by
15 double precision values (i.e., position vector with 3 components, stress
tensor with 9 components, density, volume, ID), and 1 single precision
variable (i.e., type)" — 15*8 + 4 = 124 bytes.  ``UINTAH_DTYPE`` encodes
exactly that layout; :func:`make_particle_dtype` builds reduced variants for
tests and lighter-weight examples.

All on-disk data is little-endian; the dtypes here are explicitly
little-endian so files are portable across hosts.
"""

from __future__ import annotations

import numpy as np

#: Fields every particle dtype must start with: a 3-component position.
POSITION_FIELD = ("position", "<f8", (3,))

#: The Uintah-style particle record from the paper's evaluation (124 bytes).
UINTAH_DTYPE = np.dtype(
    [
        POSITION_FIELD,
        ("stress", "<f8", (3, 3)),
        ("density", "<f8"),
        ("volume", "<f8"),
        ("id", "<f8"),
        ("type", "<f4"),
    ]
)

UINTAH_PARTICLE_BYTES = UINTAH_DTYPE.itemsize
assert UINTAH_PARTICLE_BYTES == 124, UINTAH_PARTICLE_BYTES


def make_particle_dtype(
    extra_scalars: tuple[str, ...] = (),
    include_stress: bool = False,
    include_id: bool = True,
) -> np.dtype:
    """Build a particle dtype with a position plus optional fields.

    ``extra_scalars`` adds named float64 scalar attributes (e.g.
    ``("temperature",)``).  The position field always comes first, which the
    file format relies on when extracting coordinates without a full decode.
    """
    fields: list[tuple] = [POSITION_FIELD]
    if include_stress:
        fields.append(("stress", "<f8", (3, 3)))
    for name in extra_scalars:
        if name == "position":
            raise ValueError("'position' is implicit and cannot be re-added")
        fields.append((name, "<f8"))
    if include_id:
        fields.append(("id", "<f8"))
    return np.dtype(fields)


#: A compact dtype for unit tests: position + id (32 bytes).
MINIMAL_DTYPE = make_particle_dtype()


def particle_nbytes(dtype: np.dtype) -> int:
    """Bytes per particle for ``dtype`` (itemsize, named for readability)."""
    return int(np.dtype(dtype).itemsize)


def validate_particle_dtype(dtype: np.dtype) -> np.dtype:
    """Check that ``dtype`` is a structured dtype led by a (3,) position."""
    dtype = np.dtype(dtype)
    if dtype.names is None or "position" not in dtype.names:
        raise ValueError(
            f"particle dtype must be structured with a 'position' field, got {dtype}"
        )
    pos = dtype["position"]
    if pos.shape != (3,) or pos.base.kind != "f":
        raise ValueError(
            f"'position' must be a float (3,)-vector field, got {pos}"
        )
    return dtype
