"""Particle schema, batches, and synthetic workload generators.

The paper's experiments use Uintah-style particles: 15 double-precision
values (3-vector position, 9-component stress tensor, density, volume, id)
plus one single-precision ``type`` — 124 bytes per particle.  This package
defines that schema as a NumPy structured dtype, a :class:`ParticleBatch`
wrapper with geometry helpers, and generators for the particle distributions
the evaluation exercises (uniform, clustered, shrinking-occupancy,
injection-jet).
"""

from repro.particles.dtype import (
    UINTAH_DTYPE,
    UINTAH_PARTICLE_BYTES,
    make_particle_dtype,
    particle_nbytes,
)
from repro.particles.batch import ParticleBatch, concatenate
from repro.particles.generators import (
    clustered_particles,
    injection_jet_particles,
    occupancy_particles,
    uniform_particles,
)

__all__ = [
    "UINTAH_DTYPE",
    "UINTAH_PARTICLE_BYTES",
    "make_particle_dtype",
    "particle_nbytes",
    "ParticleBatch",
    "concatenate",
    "uniform_particles",
    "clustered_particles",
    "occupancy_particles",
    "injection_jet_particles",
]
