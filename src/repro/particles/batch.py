"""ParticleBatch: a structured array of particles with geometry helpers.

A batch is the unit the I/O pipeline moves around: a process's local
particles, a packet sent to an aggregator, an aggregator's assembled buffer,
or the result of a read.  It wraps a 1-D structured :class:`numpy.ndarray`
(zero-copy views wherever possible) and offers the spatial operations the
paper's aggregation and query paths need: bounding boxes, box containment
masks, and partition binning.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.domain.box import Box
from repro.particles.dtype import validate_particle_dtype


class ParticleBatch:
    """A 1-D structured array of particles.

    Parameters
    ----------
    data:
        Structured array whose dtype passes
        :func:`~repro.particles.dtype.validate_particle_dtype`.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValueError(f"particle data must be 1-D, got shape {data.shape}")
        validate_particle_dtype(data.dtype)
        self.data = data

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, dtype: np.dtype) -> "ParticleBatch":
        return cls(np.empty(0, dtype=dtype))

    @classmethod
    def from_positions(
        cls, positions: np.ndarray, dtype: np.dtype, rng=None
    ) -> "ParticleBatch":
        """Build a batch from an (N, 3) position array.

        Non-position fields are filled with zeros except ``id`` (sequential)
        — enough structure for tests and examples that only care about
        geometry.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(f"positions must be (N, 3), got {positions.shape}")
        out = np.zeros(len(positions), dtype=dtype)
        out["position"] = positions
        if "id" in (dtype.names or ()):
            out["id"] = np.arange(len(positions), dtype=np.float64)
        return cls(out)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, key) -> "ParticleBatch":
        return ParticleBatch(np.atleast_1d(self.data[key]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParticleBatch):
            return NotImplemented
        return self.data.dtype == other.data.dtype and bool(
            np.array_equal(self.data, other.data)
        )

    def __hash__(self):  # mutable container
        raise TypeError("ParticleBatch is unhashable")

    def __repr__(self) -> str:
        return f"ParticleBatch(n={len(self)}, dtype={self.data.dtype.names})"

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def positions(self) -> np.ndarray:
        """(N, 3) view of particle positions."""
        return self.data["position"]

    # -- geometry ---------------------------------------------------------------

    def bounding_box(self) -> Box:
        """Tight axis-aligned bounding box of the particle positions.

        Raises on an empty batch — an empty region has no box, and the
        aggregation code treats that case explicitly.
        """
        if len(self) == 0:
            raise ValueError("bounding_box() of an empty ParticleBatch")
        pos = self.positions
        return Box(pos.min(axis=0), pos.max(axis=0))

    def mask_in_box(self, box: Box) -> np.ndarray:
        """Boolean mask of particles inside ``box`` (lo-inclusive, hi-exclusive).

        Half-open on every axis so a set of tiling boxes partitions the
        particles with no duplicates and no losses — the invariant the whole
        aggregation scheme rests on.  Callers handling the domain's upper
        boundary close it explicitly (see ``Box.contains_points``).
        """
        return box.contains_points(self.positions)

    def select_in_box(self, box: Box) -> "ParticleBatch":
        return ParticleBatch(self.data[self.mask_in_box(box)])

    def bin_by_boxes(self, boxes: Sequence[Box]) -> list["ParticleBatch"]:
        """Split the batch into one sub-batch per box (the non-aligned path).

        This is the per-particle scan the paper describes for aggregation
        grids that do not align with the simulation decomposition: each
        particle is assigned to the first box containing it.  Boxes are
        expected to tile the particle extent; particles falling in no box
        raise, because silently dropping data is never acceptable in an I/O
        layer.
        """
        remaining = np.arange(len(self.data))
        out: list[ParticleBatch] = []
        pos = self.positions
        for box in boxes:
            if len(remaining) == 0:
                out.append(ParticleBatch(self.data[:0]))
                continue
            mask = box.contains_points(pos[remaining])
            out.append(ParticleBatch(self.data[remaining[mask]]))
            remaining = remaining[~mask]
        if len(remaining):
            stray = pos[remaining[0]]
            raise ValueError(
                f"{len(remaining)} particle(s) fall outside all {len(boxes)} "
                f"partition boxes; first stray position {stray}"
            )
        return out

    # -- transforms ----------------------------------------------------------------

    def permuted(self, order: np.ndarray) -> "ParticleBatch":
        """A new batch with rows reordered by index array ``order``."""
        order = np.asarray(order)
        if sorted(order.tolist()) != list(range(len(self))):
            raise ValueError("order must be a permutation of range(len(batch))")
        return ParticleBatch(self.data[order])

    def copy(self) -> "ParticleBatch":
        return ParticleBatch(self.data.copy())

    def tobytes(self) -> bytes:
        return np.ascontiguousarray(self.data).tobytes()

    @classmethod
    def frombuffer(cls, buf: bytes, dtype: np.dtype) -> "ParticleBatch":
        return cls(np.frombuffer(buf, dtype=dtype).copy())


def concatenate(batches: Iterable[ParticleBatch]) -> ParticleBatch:
    """Concatenate batches (all must share a dtype); empty input is an error."""
    batches = list(batches)
    if not batches:
        raise ValueError("concatenate() needs at least one batch")
    dtypes = {b.dtype for b in batches}
    if len(dtypes) > 1:
        raise ValueError(f"cannot concatenate mixed dtypes: {dtypes}")
    return ParticleBatch(np.concatenate([b.data for b in batches]))
