"""Timestep series: simulations checkpoint repeatedly, not once.

A :class:`SeriesWriter` places each timestep's dataset under its own prefix
(``t<NNNNNN>/``) of a shared backend and maintains a JSON series index
(simulation time per step, running totals).  :class:`SeriesReader` opens any
step as a normal :class:`~repro.core.reader.SpatialReader` and supports
time-window iteration — the access pattern of trajectory analysis and of
"scrub through time" visualization.
"""

from repro.series.writer import SeriesWriter
from repro.series.reader import SeriesReader
from repro.series.index import SeriesIndex, StepInfo

__all__ = ["SeriesWriter", "SeriesReader", "SeriesIndex", "StepInfo"]
