"""Reading a timestep series.

Each timestep is an ordinary dataset under a prefix; opening one goes
through the :class:`~repro.dataset.Dataset` facade, so the whole policy
bundle (strict/degraded, retry, recorder, executor) set on the
:class:`SeriesReader` carries into every per-step reader.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.reader import SpatialReader
from repro.dataset import Dataset
from repro.domain.box import Box
from repro.io.backend import FileBackend
from repro.io.executor import IoExecutor
from repro.io.prefix import PrefixBackend
from repro.io.retry import RetryPolicy
from repro.obs.recorder import Recorder
from repro.particles.batch import ParticleBatch
from repro.series.index import SeriesIndex, StepInfo


class SeriesReader:
    """Opens timesteps of a series as ordinary spatial readers."""

    def __init__(
        self,
        backend: FileBackend,
        actor: int = -1,
        strict: bool = True,
        retry: RetryPolicy | None = None,
        recorder: Recorder | None = None,
        executor: IoExecutor | None = None,
    ):
        self.backend = backend
        self.actor = actor
        self.strict = strict
        self.retry = retry
        self.recorder = recorder
        self.executor = executor
        self.index = SeriesIndex.read(backend, actor=actor)

    def __len__(self) -> int:
        return len(self.index)

    @property
    def steps(self) -> list[StepInfo]:
        return list(self.index)

    def open_dataset(self, step: int, generation: int | None = None) -> Dataset:
        """The facade for one step's dataset, sharing this reader's policies.

        ``generation`` pins the step to a specific committed generation
        (time-travel within the step's own append chain); None reads the
        step's current generation.
        """
        info = self.index.step_for(step)
        return Dataset(
            PrefixBackend(self.backend, info.prefix),
            actor=self.actor,
            strict=self.strict,
            retry=self.retry,
            recorder=self.recorder,
            executor=self.executor,
            generation=generation,
        )

    def open_step(self, step: int) -> SpatialReader:
        return self.open_dataset(step).reader()

    def open_latest(self) -> SpatialReader:
        return self.open_step(self.index.latest().step)

    # -- trajectory-style access ------------------------------------------------

    def iter_steps(self) -> Iterator[tuple[StepInfo, SpatialReader]]:
        for info in self.index:
            yield info, self.open_step(info.step)

    def read_box_over_time(
        self,
        box: Box,
        t0: float = float("-inf"),
        t1: float = float("inf"),
        max_level: int | None = None,
    ) -> list[tuple[StepInfo, ParticleBatch]]:
        """The same spatial query at every step in a time window.

        The bread-and-butter pattern of region tracking: watch one region of
        the domain evolve.  Each step pays only for the files its metadata
        says the box touches.
        """
        out: list[tuple[StepInfo, ParticleBatch]] = []
        for info in self.index.steps_in_window(t0, t1):
            reader = self.open_step(info.step)
            out.append((info, reader.read_box(box, max_level=max_level)))
        return out

    def particle_count_history(self) -> list[tuple[float, int]]:
        """(time, total particles) per step, straight from the index."""
        return [(s.time, s.total_particles) for s in self.index]
