"""Reading a timestep series."""

from __future__ import annotations

from typing import Iterator

from repro.core.reader import SpatialReader
from repro.domain.box import Box
from repro.io.backend import FileBackend
from repro.io.prefix import PrefixBackend
from repro.particles.batch import ParticleBatch
from repro.series.index import SeriesIndex, StepInfo


class SeriesReader:
    """Opens timesteps of a series as ordinary spatial readers."""

    def __init__(self, backend: FileBackend, actor: int = -1):
        self.backend = backend
        self.actor = actor
        self.index = SeriesIndex.read(backend, actor=actor)

    def __len__(self) -> int:
        return len(self.index)

    @property
    def steps(self) -> list[StepInfo]:
        return list(self.index)

    def open_step(self, step: int) -> SpatialReader:
        info = self.index.step_for(step)
        return SpatialReader(PrefixBackend(self.backend, info.prefix), actor=self.actor)

    def open_latest(self) -> SpatialReader:
        return self.open_step(self.index.latest().step)

    # -- trajectory-style access ------------------------------------------------

    def iter_steps(self) -> Iterator[tuple[StepInfo, SpatialReader]]:
        for info in self.index:
            yield info, self.open_step(info.step)

    def read_box_over_time(
        self,
        box: Box,
        t0: float = float("-inf"),
        t1: float = float("inf"),
        max_level: int | None = None,
    ) -> list[tuple[StepInfo, ParticleBatch]]:
        """The same spatial query at every step in a time window.

        The bread-and-butter pattern of region tracking: watch one region of
        the domain evolve.  Each step pays only for the files its metadata
        says the box touches.
        """
        out: list[tuple[StepInfo, ParticleBatch]] = []
        for info in self.index.steps_in_window(t0, t1):
            reader = self.open_step(info.step)
            out.append((info, reader.read_box(box, max_level=max_level)))
        return out

    def particle_count_history(self) -> list[tuple[float, int]]:
        """(time, total particles) per step, straight from the index."""
        return [(s.time, s.total_particles) for s in self.index]
