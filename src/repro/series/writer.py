"""Writing a timestep series.

``SeriesWriter`` owns the per-step prefixes and the index maintenance; the
actual dataset write is the ordinary eight-step
:class:`~repro.core.writer.SpatialWriter` pipeline against a
:class:`~repro.io.prefix.PrefixBackend` view.  Only rank 0 touches the
index, after a barrier, so a crashed step never leaves a dangling entry.
"""

from __future__ import annotations

from repro.core.config import WriterConfig
from repro.core.writer import SpatialWriter, WriteResult
from repro.dataset import Dataset
from repro.domain.decomposition import PatchDecomposition
from repro.errors import FormatError
from repro.format.generations import CURRENT_PATH
from repro.io.backend import FileBackend
from repro.io.prefix import PrefixBackend
from repro.mpi.comm import SimComm
from repro.particles.batch import ParticleBatch
from repro.series.index import SeriesIndex, StepInfo, step_prefix


class SeriesWriter:
    """Appends timestep datasets to one backend and maintains the index."""

    def __init__(self, config: WriterConfig | None = None):
        self.writer = SpatialWriter(config)

    @property
    def config(self) -> WriterConfig:
        return self.writer.config

    def write_step(
        self,
        comm: SimComm,
        step: int,
        time: float,
        batch: ParticleBatch,
        decomp: PatchDecomposition,
        backend: FileBackend,
    ) -> WriteResult:
        """SPMD: write one timestep and append it to the series index."""
        prefix = step_prefix(step)
        # Either commit marker counts as "written": a classic step carries
        # manifest.json, a step that was appended to (generation chain)
        # may carry only CURRENT + manifest.gen-N.json.
        if comm.rank == 0 and (
            backend.exists(f"{prefix}/manifest.json")
            or backend.exists(f"{prefix}/{CURRENT_PATH}")
        ):
            raise FormatError(f"timestep {step} already written ({prefix}/)")
        view = PrefixBackend(backend, prefix)
        result = self.writer.write(comm, batch, decomp, view)

        # All data files and the step's own metadata are durable before the
        # series index points at the step.
        comm.barrier()
        if comm.rank == 0:
            try:
                index = SeriesIndex.read(backend)
            except FormatError:
                index = SeriesIndex()
            manifest = Dataset(view).read_manifest()
            index.append(
                StepInfo(
                    step=step,
                    time=float(time),
                    total_particles=manifest.total_particles,
                    num_files=manifest.num_files,
                )
            )
            index.write(backend, actor=0)
        comm.barrier()
        return result
