"""The series index: one JSON document describing every written timestep."""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import FormatError
from repro.io.backend import FileBackend

SERIES_INDEX_PATH = "series.json"
SERIES_VERSION = 1


def step_prefix(step: int) -> str:
    """Directory prefix for a timestep dataset (zero-padded, sortable)."""
    if step < 0:
        raise FormatError(f"timestep must be >= 0, got {step}")
    return f"t{step:06d}"


@dataclass(frozen=True)
class StepInfo:
    """One timestep's entry in the series index."""

    step: int
    time: float
    total_particles: int
    num_files: int

    @property
    def prefix(self) -> str:
        return step_prefix(self.step)


class SeriesIndex:
    """Ordered collection of :class:`StepInfo`, serialised as JSON."""

    def __init__(self, steps: list[StepInfo] | None = None):
        self.steps: list[StepInfo] = list(steps or [])
        seen = [s.step for s in self.steps]
        if len(set(seen)) != len(seen):
            raise FormatError(f"duplicate timesteps in series index: {seen}")
        times = [s.time for s in self.steps]
        if any(b < a for a, b in zip(times, times[1:])):
            raise FormatError(f"series times must be non-decreasing: {times}")

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def append(self, info: StepInfo) -> None:
        if self.steps:
            last = self.steps[-1]
            if info.step <= last.step:
                raise FormatError(
                    f"timestep {info.step} is not after the last step {last.step}"
                )
            if info.time < last.time:
                raise FormatError(
                    f"time {info.time} regresses from {last.time} at step {info.step}"
                )
        self.steps.append(info)

    def step_for(self, step: int) -> StepInfo:
        for s in self.steps:
            if s.step == step:
                return s
        raise FormatError(f"timestep {step} not in series ({[s.step for s in self.steps]})")

    def steps_in_window(self, t0: float, t1: float) -> list[StepInfo]:
        """Steps with simulation time in [t0, t1]."""
        if t1 < t0:
            raise FormatError(f"empty time window [{t0}, {t1}]")
        return [s for s in self.steps if t0 <= s.time <= t1]

    def latest(self) -> StepInfo:
        if not self.steps:
            raise FormatError("series is empty")
        return self.steps[-1]

    # -- serialisation --------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "spio-series",
                "version": SERIES_VERSION,
                "steps": [
                    {
                        "step": s.step,
                        "time": s.time,
                        "total_particles": s.total_particles,
                        "num_files": s.num_files,
                    }
                    for s in self.steps
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "SeriesIndex":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FormatError(f"series index is not valid JSON: {exc}") from exc
        if doc.get("format") != "spio-series":
            raise FormatError(f"not a series index: {doc.get('format')!r}")
        if doc.get("version") != SERIES_VERSION:
            raise FormatError(f"unsupported series version {doc.get('version')!r}")
        try:
            steps = [
                StepInfo(
                    step=int(s["step"]),
                    time=float(s["time"]),
                    total_particles=int(s["total_particles"]),
                    num_files=int(s["num_files"]),
                )
                for s in doc["steps"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"malformed series step entry: {exc}") from exc
        return cls(steps)

    def write(self, backend: FileBackend, actor: int = -1) -> None:
        backend.write_file(SERIES_INDEX_PATH, self.to_json().encode(), actor=actor)

    @classmethod
    def read(cls, backend: FileBackend, actor: int = -1) -> "SeriesIndex":
        try:
            raw = backend.read_file(SERIES_INDEX_PATH, actor=actor)
        except Exception as exc:
            raise FormatError(f"cannot read series index: {exc}") from exc
        return cls.from_json(raw.decode("utf-8"))
