"""Traffic accounting for the simulated MPI runtime.

The performance models need the communication *pattern* of an algorithm —
how many messages, how many bytes, between which ranks — rather than
wall-clock timings.  Since the instrumentation refactor, the numbers live
in a :class:`~repro.obs.recorder.Recorder` as ``mpi.messages`` /
``mpi.bytes`` counters keyed by ``(source, dest)``; :class:`TrafficStats`
is a *view* over that recorder preserving the historical query API
(``world.stats.total_bytes()`` etc.).  The :class:`~repro.mpi.world.World`
feeds every completed send through :meth:`TrafficStats.record`.
"""

from __future__ import annotations

from repro.obs.names import MPI_BYTES, MPI_MESSAGES
from repro.obs.recorder import Recorder


class TrafficStats:
    """Point-to-point traffic totals, backed by an obs recorder.

    Thread-safe (the recorder locks internally).  Self-sends — a rank
    delivering to itself, e.g. an aggregator keeping its own particles —
    stay distinguishable via their ``(r, r)`` key so network models can
    exclude them.
    """

    def __init__(self, recorder: Recorder | None = None):
        #: The backing recorder; shared with the world that owns this view.
        self.recorder = recorder if recorder is not None else Recorder(rank=-1)

    def record(self, source: int, dest: int, nbytes: int) -> None:
        self.recorder.add(MPI_MESSAGES, 1, key=(source, dest))
        self.recorder.add(MPI_BYTES, int(nbytes), key=(source, dest))

    # -- aggregate views -------------------------------------------------

    @property
    def by_pair(self) -> dict[tuple[int, int], list[int]]:
        """``(source, dest) -> [messages, bytes]`` (the legacy shape)."""
        msgs = self.recorder.series(MPI_MESSAGES)
        byts = self.recorder.series(MPI_BYTES)
        return {
            (int(k[0]), int(k[1])): [int(msgs.get(k, 0)), int(byts.get(k, 0))]
            for k in msgs.keys() | byts.keys()
        }

    def total_messages(self, include_self: bool = True) -> int:
        return sum(
            int(v)
            for (s, d), v in self.recorder.series(MPI_MESSAGES).items()
            if include_self or s != d
        )

    def total_bytes(self, include_self: bool = True) -> int:
        return sum(
            int(v)
            for (s, d), v in self.recorder.series(MPI_BYTES).items()
            if include_self or s != d
        )

    def bytes_sent_by(self, rank: int) -> int:
        return sum(
            int(v)
            for (s, _d), v in self.recorder.series(MPI_BYTES).items()
            if s == rank
        )

    def bytes_received_by(self, rank: int) -> int:
        return sum(
            int(v)
            for (_s, d), v in self.recorder.series(MPI_BYTES).items()
            if d == rank
        )

    def peers_of(self, rank: int) -> set[int]:
        """Ranks that ``rank`` exchanged at least one message with."""
        pairs = self.recorder.series(MPI_MESSAGES)
        peers = {int(d) for (s, d) in pairs if s == rank and d != rank}
        peers |= {int(s) for (s, d) in pairs if d == rank and s != rank}
        return peers

    def pair_bytes(self, source: int, dest: int) -> int:
        return int(self.recorder.value(MPI_BYTES, key=(source, dest)))

    def snapshot(self) -> dict[tuple[int, int], tuple[int, int]]:
        """An immutable copy of the (source, dest) -> (messages, bytes) map."""
        return {pair: (c[0], c[1]) for pair, c in self.by_pair.items()}

    def clear(self) -> None:
        self.recorder.clear_counter(MPI_MESSAGES)
        self.recorder.clear_counter(MPI_BYTES)
