"""Traffic accounting for the simulated MPI runtime.

The performance models need the communication *pattern* of an algorithm —
how many messages, how many bytes, between which ranks — rather than
wall-clock timings.  The :class:`World` feeds every completed send into a
:class:`TrafficStats` instance, which the benchmarks and tests read back.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class TrafficStats:
    """Thread-safe accumulator of point-to-point traffic.

    ``by_pair`` maps ``(source, dest)`` to ``[messages, bytes]``.  Self-sends
    (a rank delivering to itself, e.g. an aggregator keeping its own
    particles) are recorded separately so network models can exclude them.
    """

    by_pair: dict[tuple[int, int], list[int]] = field(
        default_factory=lambda: defaultdict(lambda: [0, 0])
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, source: int, dest: int, nbytes: int) -> None:
        with self._lock:
            cell = self.by_pair[(source, dest)]
            cell[0] += 1
            cell[1] += int(nbytes)

    # -- aggregate views -------------------------------------------------

    def total_messages(self, include_self: bool = True) -> int:
        with self._lock:
            return sum(
                c[0]
                for (s, d), c in self.by_pair.items()
                if include_self or s != d
            )

    def total_bytes(self, include_self: bool = True) -> int:
        with self._lock:
            return sum(
                c[1]
                for (s, d), c in self.by_pair.items()
                if include_self or s != d
            )

    def bytes_sent_by(self, rank: int) -> int:
        with self._lock:
            return sum(c[1] for (s, _d), c in self.by_pair.items() if s == rank)

    def bytes_received_by(self, rank: int) -> int:
        with self._lock:
            return sum(c[1] for (_s, d), c in self.by_pair.items() if d == rank)

    def peers_of(self, rank: int) -> set[int]:
        """Ranks that ``rank`` exchanged at least one message with."""
        with self._lock:
            peers = {d for (s, d) in self.by_pair if s == rank and d != rank}
            peers |= {s for (s, d) in self.by_pair if d == rank and s != rank}
            return peers

    def pair_bytes(self, source: int, dest: int) -> int:
        with self._lock:
            return self.by_pair.get((source, dest), [0, 0])[1]

    def snapshot(self) -> dict[tuple[int, int], tuple[int, int]]:
        """An immutable copy of the (source, dest) -> (messages, bytes) map."""
        with self._lock:
            return {pair: (c[0], c[1]) for pair, c in self.by_pair.items()}

    def clear(self) -> None:
        with self._lock:
            self.by_pair.clear()
