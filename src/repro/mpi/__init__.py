"""An in-process simulated MPI runtime (substrate for the I/O library).

The paper's algorithms are SPMD programs over MPI point-to-point and
collective operations.  No MPI implementation is available in this
environment, so this package provides a functional simulator: each rank runs
in its own thread, messages flow through in-memory mailboxes, and collective
operations are built on the same matching rules MPI uses (source + tag,
FIFO per (source, tag) channel).

The simulator is *functional*, not *temporal*: it executes the real
communication pattern and moves the real bytes, and it records per-rank
traffic statistics (message counts, byte counts, peer sets) that the
performance models in :mod:`repro.perf` consume.  Wall-clock behaviour of
Mira/Theta-scale machines is modelled there, not here.

Typical use::

    from repro.mpi import run_mpi

    def main(comm):
        data = comm.allgather(comm.rank ** 2)
        return sum(data)

    results = run_mpi(8, main)   # -> [140, 140, ..., 140]
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, SimComm
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.runtime import run_mpi
from repro.mpi.stats import TrafficStats
from repro.mpi.world import World

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "SimComm",
    "Request",
    "SendRequest",
    "RecvRequest",
    "run_mpi",
    "TrafficStats",
    "World",
]
