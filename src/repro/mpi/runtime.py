"""The SPMD launcher: run one function on N simulated ranks.

``run_mpi(n, fn, *args)`` is the simulator's ``mpiexec -n N``.  Each rank
executes ``fn(comm, *args)`` in its own thread; return values come back as a
rank-indexed list.  If any rank raises, the world is poisoned so blocked
peers abort promptly, and a :class:`~repro.errors.RankFailedError` carrying
every original exception is raised in the caller.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import MPIError, RankFailedError
from repro.mpi.comm import SimComm
from repro.mpi.world import World


def run_mpi(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    world: World | None = None,
    block_timeout: float = 0.25,
    per_rank_args: list[tuple] | None = None,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    nprocs:
        Number of ranks.  Threads are cheap here but not free; functional
        tests typically use 4-128.
    fn:
        The SPMD program.  Its first argument is the rank's
        :class:`~repro.mpi.comm.SimComm`.
    world:
        Optionally supply a pre-built :class:`World` (e.g. to inspect traffic
        statistics afterwards).  Its size must equal ``nprocs``.
    block_timeout:
        Deadlock-detection polling interval for blocked receives.
    per_rank_args:
        If given, rank ``r`` is called as ``fn(comm, *args, *per_rank_args[r])``.

    Returns
    -------
    list
        ``fn``'s return value for each rank, index = rank.
    """
    if world is None:
        world = World(nprocs, block_timeout=block_timeout)
    elif world.size != nprocs:
        raise MPIError(
            f"supplied world has size {world.size}, but nprocs={nprocs}"
        )
    if per_rank_args is not None and len(per_rank_args) != nprocs:
        raise MPIError(
            f"per_rank_args has {len(per_rank_args)} entries for {nprocs} ranks"
        )

    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def rank_main(rank: int) -> None:
        comm = SimComm(world, rank)
        try:
            extra = per_rank_args[rank] if per_rank_args is not None else ()
            results[rank] = fn(comm, *args, *extra)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            with failures_lock:
                failures[rank] = exc
            world.abort(exc)
        finally:
            world.rank_done(rank)

    if nprocs == 1:
        # Single rank: run inline so tracebacks and debuggers work naturally.
        rank_main(0)
    else:
        threads = [
            threading.Thread(
                target=rank_main, args=(r,), name=f"simrank-{r}", daemon=True
            )
            for r in range(nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if failures:
        # Secondary aborts (ranks killed by the world poison) are noise;
        # keep only root causes unless everything was an abort.
        roots = {
            r: e
            for r, e in failures.items()
            if not (isinstance(e, MPIError) and "world aborted" in str(e))
        }
        raise RankFailedError(roots or failures)
    return results
