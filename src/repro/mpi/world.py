"""The shared state behind a set of simulated ranks.

A :class:`World` owns one mailbox per rank, the traffic statistics, and the
abort machinery.  Ranks never touch each other's Python state directly; all
inter-rank communication flows through ``deliver`` / ``match`` on the
destination mailbox, which gives the simulator MPI's matching semantics:
messages from the same (source, tag, channel) are received in send order
(non-overtaking), and wildcards match the earliest pending message.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import DeadlockError, MPIError
from repro.mpi.message import Message
from repro.mpi.stats import TrafficStats
from repro.obs.recorder import Recorder


class Mailbox:
    """Pending-message queue for one rank, with condition-based blocking."""

    def __init__(self, world: "World", rank: int):
        self.world = world
        self.rank = rank
        self._pending: list[Message] = []
        self._cond = threading.Condition()

    def deliver(self, msg: Message) -> None:
        with self._cond:
            self._pending.append(msg)
            self._cond.notify_all()

    def try_match(self, source: int, tag: int, channel: int) -> Message | None:
        """Pop and return the earliest matching message, or None."""
        with self._cond:
            return self._pop_locked(source, tag, channel)

    def _pop_locked(self, source: int, tag: int, channel: int) -> Message | None:
        for i, msg in enumerate(self._pending):
            if msg.matches(source, tag, channel):
                self.world.note_progress()
                return self._pending.pop(i)
        return None

    def wait_match(self, source: int, tag: int, channel: int) -> Message:
        """Block until a matching message arrives; honours world abort.

        The deadlock check runs *outside* the mailbox lock (so concurrent
        checkers cannot deadlock on each other's mailboxes) and uses the
        world progress counter to rule out the race where another rank
        matched a message between our two looks.
        """
        deadline_step = self.world.block_timeout
        self.world.rank_blocked(self.rank)
        try:
            while True:
                with self._cond:
                    self.world.check_abort()
                    msg = self._pop_locked(source, tag, channel)
                    if msg is not None:
                        return msg
                    signalled = self._cond.wait(timeout=deadline_step)
                if not signalled:
                    self.world.check_abort()
                    progress_before = self.world.progress
                    if (
                        self.world.all_blocked_or_done()
                        and self.world.progress == progress_before
                    ):
                        raise DeadlockError(
                            f"rank {self.rank} blocked in recv(source={source}, "
                            f"tag={tag}) with every other live rank also blocked "
                            "— the program has deadlocked"
                        )
        finally:
            self.world.rank_unblocked(self.rank)

    def pending_count(self) -> int:
        with self._cond:
            return len(self._pending)

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()


class World:
    """Shared communication fabric for ``size`` simulated ranks."""

    def __init__(self, size: int, block_timeout: float = 0.25):
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        # How long a blocked rank sleeps between deadlock checks.  This is a
        # polling interval, not a correctness timeout: waiters are woken
        # immediately on delivery.
        self.block_timeout = block_timeout
        self.mailboxes = [Mailbox(self, r) for r in range(size)]
        #: Shared instrumentation recorder: traffic counters land here
        #: (``rank=-1`` marks records not attributable to a single rank).
        self.recorder = Recorder(rank=-1)
        self.stats = TrafficStats(self.recorder)
        self._abort_exc: BaseException | None = None
        self._state_lock = threading.Lock()
        self._blocked: set[int] = set()
        self._done: set[int] = set()
        self._progress = 0

    def note_progress(self) -> None:
        """Record that some message was matched (used by deadlock detection)."""
        with self._state_lock:
            self._progress += 1

    @property
    def progress(self) -> int:
        with self._state_lock:
            return self._progress

    # -- message transport ------------------------------------------------

    def send(self, msg: Message) -> None:
        if not 0 <= msg.dest < self.size:
            raise MPIError(
                f"invalid destination rank {msg.dest} (world size {self.size})"
            )
        self.check_abort()
        self.stats.record(msg.source, msg.dest, msg.nbytes)
        self.mailboxes[msg.dest].deliver(msg)

    # -- abort / deadlock bookkeeping --------------------------------------

    def abort(self, exc: BaseException) -> None:
        """Poison the world: wake every waiter and make them re-raise."""
        with self._state_lock:
            if self._abort_exc is None:
                self._abort_exc = exc
        for box in self.mailboxes:
            box.wake()

    def check_abort(self) -> None:
        if self._abort_exc is not None:
            raise MPIError(
                f"world aborted after a failure on another rank: {self._abort_exc!r}"
            ) from self._abort_exc

    @property
    def aborted(self) -> bool:
        return self._abort_exc is not None

    def rank_blocked(self, rank: int) -> None:
        with self._state_lock:
            self._blocked.add(rank)

    def rank_unblocked(self, rank: int) -> None:
        with self._state_lock:
            self._blocked.discard(rank)

    def rank_done(self, rank: int) -> None:
        with self._state_lock:
            self._done.add(rank)
        for box in self.mailboxes:
            box.wake()

    def all_blocked_or_done(self) -> bool:
        """True when no live rank can make progress (deadlock heuristic).

        A rank counts as stuck only if it is blocked *and* its mailbox holds
        nothing — a pending message might still be a match for a different
        (source, tag) the rank will ask for next, so we only declare deadlock
        when every live rank is blocked with an empty mailbox.
        """
        with self._state_lock:
            live = set(range(self.size)) - self._done
            if not live.issubset(self._blocked):
                return False
        return all(
            self.mailboxes[r].pending_count() == 0
            for r in range(self.size)
            if r not in self._done
        )

    # -- convenience -------------------------------------------------------

    def total_traffic(self) -> dict[str, Any]:
        return {
            "messages": self.stats.total_messages(),
            "bytes": self.stats.total_bytes(),
            "offnode_bytes": self.stats.total_bytes(include_self=False),
        }
