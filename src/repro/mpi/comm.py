"""The simulated communicator.

:class:`SimComm` provides the mpi4py-flavoured API surface the library uses:
``send``/``recv``/``isend``/``irecv`` (point-to-point, with tags and
wildcards) plus the collectives mixin (:mod:`repro.mpi.collectives`).  A
communicator is a *view*: sub-communicators created by :meth:`split` share
the parent's :class:`~repro.mpi.world.World` and translate group-local ranks
to world ranks.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import MPIError
from repro.mpi.collectives import CollectivesMixin
from repro.mpi.message import CHANNEL_COLL, CHANNEL_P2P, Message, snapshot_payload
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.world import World
from repro.obs.names import MPI_COLLECTIVES

ANY_SOURCE = -1
ANY_TAG = -1

# Collective tags pack (context id, sequence number) so that traffic from
# different communicators, and from successive collectives on the same
# communicator, can never cross-match.
_COLL_SEQ_BITS = 32
_COLL_SEQ_MASK = (1 << _COLL_SEQ_BITS) - 1


class SimComm(CollectivesMixin):
    """One rank's handle on a communicator over a simulated world."""

    def __init__(
        self,
        world: World,
        world_rank: int,
        group: Sequence[int] | None = None,
        context_id: int = 0,
    ):
        self.world = world
        self._world_rank = world_rank
        if group is None:
            group = range(world.size)
        self._group: tuple[int, ...] = tuple(group)
        if world_rank not in self._group:
            raise MPIError(
                f"world rank {world_rank} is not a member of group {self._group}"
            )
        self._rank = self._group.index(world_rank)
        self._context_id = context_id
        self._coll_seq = 0
        self._split_seq = 0

    # -- identity ----------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator (0-based)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._group)

    @property
    def world_rank(self) -> int:
        """This process's rank in the underlying world (global rank)."""
        return self._world_rank

    def world_rank_of(self, rank: int) -> int:
        """Translate a communicator-local rank to a world rank."""
        return self._group[self._check_rank(rank)]

    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range for size-{self.size} comm")
        return rank

    # -- point-to-point ------------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send; the buffer is reusable on return."""
        self.isend(payload, dest, tag).wait()

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send.  Eager: the payload is snapshotted now."""
        if tag < 0:
            raise MPIError(f"send tag must be >= 0, got {tag}")
        data, nbytes = snapshot_payload(payload)
        self.world.send(
            Message(
                source=self._world_rank,
                dest=self._group[self._check_rank(dest)],
                tag=tag,
                channel=self._p2p_channel_tag(tag)[0],
                payload=data,
                nbytes=nbytes,
            )
        )
        return SendRequest()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        return self.irecv(source, tag).wait()

    def recv_with_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int]:
        """Blocking receive returning ``(payload, actual_source, actual_tag)``."""
        req = self.irecv(source, tag)
        payload = req.wait()
        src_world, actual_tag = req.status
        return payload, self._group.index(src_world), actual_tag

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Non-blocking receive."""
        if source != ANY_SOURCE:
            source = self._group[self._check_rank(source)]
        channel, _ = self._p2p_channel_tag(max(tag, 0))
        return RecvRequest(
            self.world.mailboxes[self._world_rank], source, tag, channel
        )

    @staticmethod
    def _p2p_channel_tag(tag: int) -> tuple[int, int]:
        return CHANNEL_P2P, tag

    # -- internal transport for collectives ---------------------------------

    def _coll_tag(self) -> int:
        """A fresh tag for one collective call, identical on every member.

        Correct because collectives are called in the same order on all
        ranks of a communicator (an MPI requirement the simulator inherits).
        """
        tag = (self._context_id << _COLL_SEQ_BITS) | (self._coll_seq & _COLL_SEQ_MASK)
        self._coll_seq += 1
        # §3.3-style accounting: collective operations initiated, per rank.
        self.world.recorder.add(MPI_COLLECTIVES, 1, key=(self._world_rank,))
        return tag

    def _coll_send(self, payload: Any, dest: int, tag: int) -> None:
        data, nbytes = snapshot_payload(payload)
        self.world.send(
            Message(
                source=self._world_rank,
                dest=self._group[dest],
                tag=tag,
                channel=CHANNEL_COLL,
                payload=data,
                nbytes=nbytes,
            )
        )

    def _coll_recv(self, source: int, tag: int) -> Any:
        msg = self.world.mailboxes[self._world_rank].wait_match(
            self._group[source], tag, CHANNEL_COLL
        )
        return msg.payload

    # -- communicator management ---------------------------------------------

    def split(self, color: int, key: int | None = None) -> "SimComm | None":
        """Partition the communicator by ``color`` (MPI_Comm_split).

        Ranks passing the same color end up in the same child communicator,
        ordered by ``key`` (default: current rank).  Passing a negative color
        opts out and returns ``None``.
        """
        if key is None:
            key = self._rank
        entries = self.allgather((color, key, self._rank))
        self._split_seq += 1
        if color < 0:
            return None
        members = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        group = [self._group[r] for (_k, r) in members]
        child_ctx = (
            self._context_id * 1_000_003 + self._split_seq * 131 + color + 1
        )
        return SimComm(self.world, self._world_rank, group, context_id=child_ctx)

    def dup(self) -> "SimComm":
        """A new communicator with the same group but isolated tag space."""
        self._split_seq += 1
        child_ctx = self._context_id * 1_000_003 + self._split_seq * 131
        # Keep call counts aligned across members (dup is collective in MPI).
        self.barrier()
        return SimComm(
            self.world, self._world_rank, self._group, context_id=child_ctx
        )

    def __repr__(self) -> str:
        return (
            f"SimComm(rank={self._rank}/{self.size}, "
            f"world_rank={self._world_rank}, ctx={self._context_id})"
        )
