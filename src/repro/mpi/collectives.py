"""Collective operations for the simulated communicator.

Implemented over the internal collective channel with linear algorithms
(root-based fan-in/fan-out).  Functional fidelity is what matters here: the
paper's code paths use ``MPI_Allgather`` (spatial metadata, adaptive-grid
extent exchange), gather/bcast, barrier, and alltoall(v)-style exchanges.
Network *cost* of collectives at scale is modelled analytically in
:mod:`repro.perf.network`, not measured from these loops.

Every collective consumes one fresh tag from ``_coll_tag()`` (two for the
fan-in + fan-out phases of the "all" variants), so back-to-back collectives
and overlapping sub-communicators can never cross-match.
"""

from __future__ import annotations

import operator
from functools import reduce as _functools_reduce
from typing import Any, Callable, Sequence

from repro.errors import CommMismatchError

ReduceOp = "Callable[[Any, Any], Any] | str"

_NAMED_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": operator.add,
    "prod": operator.mul,
    "max": max,
    "min": min,
    "land": lambda a, b: bool(a) and bool(b),
    "lor": lambda a, b: bool(a) or bool(b),
}


def _resolve_op(op: "ReduceOp") -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return _NAMED_OPS[op]
    except KeyError:
        raise CommMismatchError(
            f"unknown reduce op {op!r}; expected one of {sorted(_NAMED_OPS)} "
            "or a callable"
        ) from None


class CollectivesMixin:
    """Collectives over the point-to-point core; mixed into ``SimComm``."""

    # The mixin relies on these members of SimComm:
    rank: int
    size: int
    _coll_tag: Callable[[], int]
    _coll_send: Callable[..., None]
    _coll_recv: Callable[..., Any]

    # -- one-to-all / all-to-one -------------------------------------------

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast ``payload`` from ``root``; returns it on every rank."""
        self._check_rank(root)
        tag = self._coll_tag()
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._coll_send(payload, dest, tag)
            return payload
        return self._coll_recv(root, tag)

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one payload per rank to ``root`` (rank order); None elsewhere."""
        self._check_rank(root)
        tag = self._coll_tag()
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for source in range(self.size):
                if source != root:
                    out[source] = self._coll_recv(source, tag)
            return out
        self._coll_send(payload, root, tag)
        return None

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one payload to each rank from ``root``."""
        self._check_rank(root)
        tag = self._coll_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                got = None if payloads is None else len(payloads)
                raise CommMismatchError(
                    f"scatter root needs exactly {self.size} payloads, got {got}"
                )
            for dest in range(self.size):
                if dest != root:
                    self._coll_send(payloads[dest], dest, tag)
            return payloads[root]
        return self._coll_recv(root, tag)

    def reduce(self, payload: Any, op: "ReduceOp" = "sum", root: int = 0) -> Any:
        """Reduce payloads to ``root`` with ``op``; None on non-roots.

        Reduction is applied in rank order (deterministic), matching MPI's
        requirement that ops be associative.
        """
        gathered = self.gather(payload, root)
        if gathered is None:
            return None
        return _functools_reduce(_resolve_op(op), gathered)

    # -- all variants --------------------------------------------------------

    def allgather(self, payload: Any) -> list[Any]:
        """Gather to rank 0 then broadcast the full list (MPI_Allgather)."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def allreduce(self, payload: Any, op: "ReduceOp" = "sum") -> Any:
        reduced = self.reduce(payload, op, root=0)
        return self.bcast(reduced, root=0)

    def alltoall(self, payloads: Sequence[Any]) -> list[Any]:
        """Personalised all-to-all: ``payloads[d]`` goes to rank ``d``.

        Returns a list where slot ``s`` is what rank ``s`` sent to us.
        """
        if len(payloads) != self.size:
            raise CommMismatchError(
                f"alltoall needs exactly {self.size} payloads, got {len(payloads)}"
            )
        tag = self._coll_tag()
        for dest in range(self.size):
            if dest != self.rank:
                self._coll_send(payloads[dest], dest, tag)
        out: list[Any] = [None] * self.size
        out[self.rank] = payloads[self.rank]
        for source in range(self.size):
            if source != self.rank:
                out[source] = self._coll_recv(source, tag)
        return out

    def barrier(self) -> None:
        """Synchronise all ranks (fan-in to 0, fan-out)."""
        self.allgather(None)

    def scan(self, payload: Any, op: "ReduceOp" = "sum") -> Any:
        """Inclusive prefix reduction: rank r gets op(p_0, ..., p_r)."""
        everything = self.allgather(payload)
        return _functools_reduce(_resolve_op(op), everything[: self.rank + 1])

    def exscan(self, payload: Any, op: "ReduceOp" = "sum") -> Any:
        """Exclusive prefix reduction; ``None`` on rank 0 (like MPI_Exscan)."""
        everything = self.allgather(payload)
        if self.rank == 0:
            return None
        return _functools_reduce(_resolve_op(op), everything[: self.rank])
