"""Message envelope and payload copy semantics for the simulated MPI.

MPI send semantics allow the sender to reuse its buffer as soon as the send
completes, so the simulator must snapshot payloads at send time.  NumPy
arrays are snapshotted with ``ndarray.copy()`` (fast); every other object is
round-tripped through pickle, which both isolates the receiver from later
sender-side mutation and gives an honest wire-size estimate for the traffic
statistics.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from itertools import count
from typing import Any

import numpy as np

# Channels separate user point-to-point traffic from internal collective
# traffic so a collective can never match a user recv and vice versa.
CHANNEL_P2P = 0
CHANNEL_COLL = 1

_seq = count()


def snapshot_payload(payload: Any) -> tuple[Any, int]:
    """Return an isolated copy of ``payload`` and its size in bytes.

    NumPy arrays take the fast path; tuples/lists/dicts whose leaves are all
    arrays still go through pickle (correct, just slower), which is fine for
    the metadata-sized objects the library sends that way.
    """
    if isinstance(payload, np.ndarray):
        return payload.copy(), int(payload.nbytes)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.loads(blob), len(blob)


@dataclass
class Message:
    """A message in flight: envelope (source, tag, channel) plus payload."""

    source: int
    dest: int
    tag: int
    channel: int
    payload: Any
    nbytes: int
    seq: int = field(default_factory=lambda: next(_seq))

    def matches(self, source: int, tag: int, channel: int) -> bool:
        """Envelope matching with MPI wildcard rules.

        ``source``/``tag`` may be the wildcards ``ANY_SOURCE``/``ANY_TAG``
        (-1); the channel never has a wildcard.
        """
        if self.channel != channel:
            return False
        if source != -1 and self.source != source:
            return False
        if tag != -1 and self.tag != tag:
            return False
        return True
