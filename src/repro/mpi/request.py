"""Non-blocking request objects (MPI_Request equivalents).

The paper's exchange phase uses non-blocking point-to-point messages
(``MPI_Isend``/``MPI_Irecv`` + waitall), so the simulator exposes the same
shape.  Sends are eager/buffered — the payload is snapshotted and delivered
at ``isend`` time — so a :class:`SendRequest` is complete on creation.
A :class:`RecvRequest` completes when a matching message is matched out of
the mailbox.
"""

from __future__ import annotations

from typing import Any


class Request:
    """Base class: ``wait()`` returns the received payload (None for sends)."""

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, payload_or_None)``."""
        raise NotImplementedError

    @staticmethod
    def waitall(requests: list["Request"]) -> list[Any]:
        """Wait on every request, returning their payloads in order."""
        return [req.wait() for req in requests]


class SendRequest(Request):
    """An eager send: already complete when constructed."""

    def wait(self) -> None:
        return None

    def test(self) -> tuple[bool, None]:
        return True, None


class RecvRequest(Request):
    """A pending receive bound to (source, tag) on one rank's mailbox."""

    def __init__(self, mailbox, source: int, tag: int, channel: int):
        self._mailbox = mailbox
        self._source = source
        self._tag = tag
        self._channel = channel
        self._done = False
        self._payload: Any = None
        self._status: tuple[int, int] | None = None

    def wait(self) -> Any:
        if not self._done:
            msg = self._mailbox.wait_match(self._source, self._tag, self._channel)
            self._payload = msg.payload
            self._status = (msg.source, msg.tag)
            self._done = True
        return self._payload

    def test(self) -> tuple[bool, Any]:
        if not self._done:
            msg = self._mailbox.try_match(self._source, self._tag, self._channel)
            if msg is None:
                return False, None
            self._payload = msg.payload
            self._status = (msg.source, msg.tag)
            self._done = True
        return True, self._payload

    @property
    def status(self) -> tuple[int, int]:
        """(actual source, actual tag) — valid once the request completed."""
        if self._status is None:
            raise RuntimeError("request not complete; call wait() first")
        return self._status
