"""The sub-file spatial chunk index (read-path performance layer).

File-level pruning (the paper's §4 fast path) stops paying off once a query
box clips only a corner of a partition: the whole file (or whole LOD
prefix) is still read.  The chunk index pushes the same min/max pruning one
level down.  At write time each data file's LOD-ordered payload is split
into fixed-size *chunks* — runs of ``chunk_size`` consecutive particles —
and each chunk records its particle range, the tight bounding box of the
particles inside it, and per-indexed-attribute (min, max) pairs.  Chunks
never straddle a per-file LOD level boundary (the boundaries of
:func:`repro.format.datafile.prefix_checksum_boundaries`), so any prefix of
the chunk list is still a valid description of an LOD prefix.

The index is serialised twice, like every other per-file fact: as the
``chunks`` key of the file's manifest checksum entry and inside the v3
recovery trailer.  The JSON form of one chunk is::

    [start, count, [lo_x, lo_y, lo_z], [hi_x, hi_y, hi_z],
     [[min, max], ...indexed attrs, in attr_index order]]

with ``start``/``count`` in particles from the head of the payload.  Chunks
are stored in payload order and must tile the file exactly (``start`` 0,
contiguous, summing to the particle count) — :meth:`FileChunkIndex.from_entry`
validates that before a reader prunes against it.

Query-time pruning is a single numpy broadcast: a chunk can contain a
particle of a *closed* box query (``lo <= p <= hi``, the reader's exact
filter) iff its tight bounds closed-intersect the query box.  Selected
chunks that are adjacent in the payload coalesce into one ranged read
(:meth:`FileChunkIndex.select_runs`), which is what turns a selective query
into a handful of contiguous byte ranges instead of a whole-file read.
"""

from __future__ import annotations

import numpy as np

from repro.domain.box import Box
from repro.errors import DataFileError

__all__ = [
    "build_chunk_entry",
    "chunks_from_entry",
    "chunks_to_entry",
    "FileChunkIndex",
]


def build_chunk_entry(
    batch,
    chunk_size: int,
    boundaries: list[int],
    attr_names: tuple[str, ...] = (),
) -> list:
    """The manifest/trailer ``chunks`` entry for one LOD-ordered payload.

    ``boundaries`` are the cumulative per-file LOD level counts
    (:func:`repro.format.datafile.prefix_checksum_boundaries`); chunking
    restarts at each so no chunk straddles a level boundary.  Bounds and
    attribute ranges are tight (computed from the actual particles), so
    pruning against them is exact for closed-box queries.
    """
    if chunk_size < 1:
        raise DataFileError(f"chunk_size must be >= 1, got {chunk_size}")
    if not len(batch):
        return []
    positions = np.asarray(batch.positions, dtype=np.float64)
    columns = {
        name: np.asarray(batch.data[name], dtype=np.float64)
        for name in attr_names
    }
    entry: list = []
    seg_start = 0
    for boundary in boundaries:
        for start in range(seg_start, boundary, chunk_size):
            end = min(start + chunk_size, boundary)
            pos = positions[start:end]
            entry.append(
                [
                    int(start),
                    int(end - start),
                    [float(v) for v in pos.min(axis=0)],
                    [float(v) for v in pos.max(axis=0)],
                    [
                        [float(columns[n][start:end].min()),
                         float(columns[n][start:end].max())]
                        for n in attr_names
                    ],
                ]
            )
        seg_start = boundary
    return entry


def chunks_from_entry(entry) -> tuple:
    """Parse the JSON ``chunks`` list into the canonical tuple form the
    :class:`~repro.format.datafile.RecoveryTrailer` carries (hashable,
    comparable field-by-field).

    Columnar (format v4) chunks carry a sixth element — the per-column
    segment descriptors ``[[offset, encoded_length, crc32], ...]`` — which
    round-trips as a nested tuple; five-element row-format chunks parse to
    five-element tuples, keeping pre-v4 trailers and manifests
    byte-identical.
    """
    out: list[tuple] = []
    try:
        for item in entry:
            start, count, lo, hi, attrs = item[0], item[1], item[2], item[3], item[4]
            chunk = (
                int(start),
                int(count),
                tuple(float(v) for v in lo),
                tuple(float(v) for v in hi),
                tuple((float(mn), float(mx)) for mn, mx in attrs),
            )
            if len(item) > 5:
                chunk = chunk + (
                    tuple(
                        (int(off), int(ln), int(crc))
                        for off, ln, crc in item[5]
                    ),
                )
            out.append(chunk)
        return tuple(out)
    except (TypeError, ValueError, IndexError) as exc:
        raise DataFileError(f"malformed chunk index entry: {exc}") from exc


def chunks_to_entry(chunks: tuple) -> list:
    """Inverse of :func:`chunks_from_entry`: the JSON list form, bit-exact
    (floats round-trip through JSON unchanged)."""
    out: list = []
    for chunk in chunks:
        start, count, lo, hi, attrs = chunk[0], chunk[1], chunk[2], chunk[3], chunk[4]
        item: list = [
            int(start),
            int(count),
            [float(v) for v in lo],
            [float(v) for v in hi],
            [[float(mn), float(mx)] for mn, mx in attrs],
        ]
        if len(chunk) > 5:
            item.append([[int(off), int(ln), int(crc)] for off, ln, crc in chunk[5]])
        out.append(item)
    return out


class FileChunkIndex:
    """One file's chunk index as structure-of-arrays ndarrays.

    ``starts``/``counts`` are int64 ``(N,)``; ``lo``/``hi`` are float64
    ``(N, 3)`` tight chunk bounds.  Built once per file via
    :meth:`from_entry` (the :class:`~repro.dataset.Dataset` facade memoizes
    the result) so per-query pruning is pure numpy broadcasting.
    """

    __slots__ = (
        "starts", "counts", "lo", "hi", "attr_ranges",
        "segments", "codec", "attr_names",
    )

    def __init__(
        self,
        starts: np.ndarray,
        counts: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        attr_ranges: np.ndarray | None = None,
        segments: tuple | None = None,
        codec: str | None = None,
        attr_names: tuple[str, ...] = (),
    ):
        self.starts = starts
        self.counts = counts
        self.lo = lo
        self.hi = hi
        #: float64 (N, num_attrs, 2) per-chunk attribute (min, max), or None.
        self.attr_ranges = attr_ranges
        #: Per-chunk ``((offset, encoded_length, crc32), ...)`` column
        #: segment descriptors for columnar (v4) files, or None for row
        #: layouts.
        self.segments = segments
        #: Codec name the segments were encoded with, or None (row layout).
        self.codec = codec
        #: Names behind ``attr_ranges`` columns (the dataset's attr_index
        #: order); empty when the caller did not supply them.
        self.attr_names = tuple(attr_names)

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def total_particles(self) -> int:
        return int(self.counts.sum()) if len(self.counts) else 0

    @classmethod
    def from_entry(
        cls,
        entry,
        particle_count: int,
        path: str = "<chunk index>",
        codec: str | None = None,
        attr_names: tuple[str, ...] = (),
    ) -> "FileChunkIndex":
        """Parse and validate one JSON ``chunks`` entry.

        Raises :class:`~repro.errors.DataFileError` unless the chunks tile
        the payload exactly: first starts at 0, each is non-empty, each
        begins where the previous ended, and together they cover exactly
        ``particle_count`` particles.  A reader must never prune against an
        index that silently skips or double-counts particles.

        ``codec`` marks the file columnar (format v4); every chunk must
        then carry a consistent segment-descriptor list with non-negative,
        non-overlapping extents.
        """
        chunks = chunks_from_entry(entry)
        if not chunks:
            if particle_count:
                raise DataFileError(
                    f"{path}: empty chunk index for {particle_count} particles"
                )
            empty3 = np.empty((0, 3), dtype=np.float64)
            return cls(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                empty3,
                empty3,
                codec=codec,
                attr_names=attr_names,
            )
        starts = np.array([c[0] for c in chunks], dtype=np.int64)
        counts = np.array([c[1] for c in chunks], dtype=np.int64)
        lo = np.array([c[2] for c in chunks], dtype=np.float64)
        hi = np.array([c[3] for c in chunks], dtype=np.float64)
        if lo.shape != (len(chunks), 3) or hi.shape != (len(chunks), 3):
            raise DataFileError(f"{path}: chunk bounds are not 3-D")
        if starts[0] != 0:
            raise DataFileError(
                f"{path}: chunk index starts at particle {starts[0]}, not 0"
            )
        if (counts < 1).any():
            raise DataFileError(f"{path}: chunk index contains an empty chunk")
        ends = starts + counts
        if (starts[1:] != ends[:-1]).any():
            raise DataFileError(
                f"{path}: chunk index is not contiguous over the payload"
            )
        if int(ends[-1]) != int(particle_count):
            raise DataFileError(
                f"{path}: chunk index covers {int(ends[-1])} particles, "
                f"file holds {particle_count}"
            )
        nattrs = len(chunks[0][4])
        attr_ranges = None
        if any(len(c[4]) != nattrs for c in chunks):
            raise DataFileError(
                f"{path}: chunk index attribute ranges are ragged"
            )
        if nattrs:
            attr_ranges = np.array([c[4] for c in chunks], dtype=np.float64)
        segments: tuple | None = None
        has_segs = [len(c) > 5 for c in chunks]
        if any(has_segs):
            if not all(has_segs):
                raise DataFileError(
                    f"{path}: chunk index mixes segment-bearing and bare chunks"
                )
            ncols = len(chunks[0][5])
            prev_end = 0
            for i, c in enumerate(chunks):
                if len(c[5]) != ncols:
                    raise DataFileError(
                        f"{path}: chunk {i} has {len(c[5])} column segments, "
                        f"chunk 0 has {ncols}"
                    )
                for off, ln, _crc in c[5]:
                    if off < 0 or ln < 0 or off < prev_end:
                        raise DataFileError(
                            f"{path}: chunk {i} segment [{off}, {off + ln}) "
                            "overlaps or regresses in the payload"
                        )
                    prev_end = off + ln
            segments = tuple(c[5] for c in chunks)
        if codec is not None and segments is None and len(chunks):
            raise DataFileError(
                f"{path}: codec {codec!r} recorded but chunks carry no "
                "column segments"
            )
        return cls(
            starts, counts, lo, hi, attr_ranges,
            segments=segments, codec=codec, attr_names=attr_names,
        )

    def select_runs(
        self,
        box: Box,
        where: dict[str, tuple[float, float]] | None = None,
    ) -> tuple[tuple[int, int], ...]:
        """Coalesced ``(start, count)`` particle runs a closed-box query needs.

        Chunk bounds are tight, so a chunk holds a candidate particle iff
        its bounds and the query box intersect as *closed* intervals (the
        reader's exact filter is ``lo <= p <= hi``).  ``where`` maps indexed
        attribute names to ``(lo, hi)`` value ranges — predicate pushdown:
        a chunk whose recorded ``[min, max]`` for that attribute misses the
        range (closed-interval test, matching the reader's post-filter)
        is pruned before any I/O, composing with the spatial test.  Adjacent
        selected chunks merge into one run — one ranged read each.
        """
        if not len(self.starts):
            return ()
        qlo = np.asarray(box.lo, dtype=np.float64)
        qhi = np.asarray(box.hi, dtype=np.float64)
        mask = (self.lo <= qhi).all(axis=1) & (qlo <= self.hi).all(axis=1)
        if where:
            for name, (alo, ahi) in where.items():
                if name not in self.attr_names or self.attr_ranges is None:
                    continue  # not indexed at chunk level: no pruning
                k = self.attr_names.index(name)
                amin = self.attr_ranges[:, k, 0]
                amax = self.attr_ranges[:, k, 1]
                mask &= (amin <= float(ahi)) & (float(alo) <= amax)
        sel = np.flatnonzero(mask)
        if not len(sel):
            return ()
        breaks = np.flatnonzero(np.diff(sel) > 1) + 1
        runs = []
        for group in np.split(sel, breaks):
            first, last = int(group[0]), int(group[-1])
            start = int(self.starts[first])
            end = int(self.starts[last] + self.counts[last])
            runs.append((start, end - start))
        return tuple(runs)

    def __repr__(self) -> str:
        return (
            f"FileChunkIndex(chunks={len(self)}, "
            f"particles={self.total_particles})"
        )
