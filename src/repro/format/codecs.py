"""Self-describing column-segment codecs for format v4 (see FORMAT.md).

Format v4 stores each chunk's payload as per-attribute column segments, and
every segment is passed through exactly one *codec* before it hits storage.
A codec is a reversible byte transform; the codec *name* is recorded in the
manifest checksum entry and the recovery trailer, so a reader (or the repair
subsystem working from a trailer alone) can always decode a segment without
out-of-band knowledge — the scda-style serial-equivalence principle the v3
trailers already follow.

The registry is deliberately tiny and append-only:

========================  =====================================================
name                      transform
========================  =====================================================
``none``                  identity (bytes stored verbatim)
``shuffle-zlib``          byte shuffle (stride = attribute itemsize), then zlib
``shuffle-lz4``           byte shuffle, then LZ4 block compression (only
                          registered when the optional ``lz4`` package is
                          importable; never a hard dependency)
========================  =====================================================

Byte shuffle transposes an ``(n, itemsize)`` view of the raw column so all
first bytes of every value land together, then all second bytes, and so on.
For smooth simulation attributes the high-order exponent/sign bytes are
near-constant, which turns an incompressible float stream into long runs a
generic entropy coder handles well — the classic HDF5/Blosc trick.

Decoding is defensive: the encoded bytes come straight from storage, so any
structural problem (bad stream, wrong decoded length) raises
:class:`~repro.errors.DataFileError` rather than an arbitrary library error.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import ConfigError, DataFileError

__all__ = [
    "Codec",
    "available_codecs",
    "byte_shuffle",
    "byte_unshuffle",
    "get_codec",
]

try:  # pragma: no cover - exercised only where lz4 is installed
    import lz4.block as _lz4_block
except ImportError:  # pragma: no cover
    _lz4_block = None


def byte_shuffle(raw: bytes, itemsize: int) -> bytes:
    """Transpose ``raw`` from value-major to byte-plane-major order.

    ``raw`` must be a whole number of ``itemsize``-byte values.  With
    ``itemsize == 1`` (or empty input) the transform is the identity.
    """
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    if len(raw) % itemsize:
        raise DataFileError(
            f"cannot shuffle {len(raw)} bytes with itemsize {itemsize}"
        )
    if itemsize == 1 or not raw:
        return bytes(raw)
    arr = np.frombuffer(raw, dtype=np.uint8).reshape(-1, itemsize)
    return arr.T.tobytes()


def byte_unshuffle(shuffled: bytes, itemsize: int) -> bytes:
    """Invert :func:`byte_shuffle`."""
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    if len(shuffled) % itemsize:
        raise DataFileError(
            f"cannot unshuffle {len(shuffled)} bytes with itemsize {itemsize}"
        )
    if itemsize == 1 or not shuffled:
        return bytes(shuffled)
    arr = np.frombuffer(shuffled, dtype=np.uint8).reshape(itemsize, -1)
    return arr.T.tobytes()


class Codec:
    """One named, reversible segment transform.

    ``encode`` maps raw column bytes to stored bytes; ``decode`` inverts it.
    ``itemsize`` is the attribute's scalar width (the shuffle stride) and
    ``raw_len`` the expected decoded length — both come from the particle
    dtype and the chunk geometry, so they are never stored per segment.
    """

    name: str = "none"

    def encode(self, raw: bytes, itemsize: int) -> bytes:
        return bytes(raw)

    def decode(self, enc: bytes, itemsize: int, raw_len: int) -> bytes:
        out = bytes(enc)
        self._check_len(out, raw_len)
        return out

    def _check_len(self, out: bytes, raw_len: int) -> None:
        if len(out) != raw_len:
            raise DataFileError(
                f"codec {self.name!r} decoded {len(out)} bytes, "
                f"expected {raw_len}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Codec({self.name!r})"


class _ShuffleZlibCodec(Codec):
    name = "shuffle-zlib"

    def encode(self, raw: bytes, itemsize: int) -> bytes:
        return zlib.compress(byte_shuffle(raw, itemsize), level=6)

    def decode(self, enc: bytes, itemsize: int, raw_len: int) -> bytes:
        try:
            shuffled = zlib.decompress(bytes(enc))
        except zlib.error as exc:
            raise DataFileError(f"zlib segment decode failed: {exc}") from exc
        out = byte_unshuffle(shuffled, itemsize)
        self._check_len(out, raw_len)
        return out


class _ShuffleLz4Codec(Codec):  # pragma: no cover - needs optional lz4
    name = "shuffle-lz4"

    def encode(self, raw: bytes, itemsize: int) -> bytes:
        assert _lz4_block is not None
        return _lz4_block.compress(byte_shuffle(raw, itemsize))

    def decode(self, enc: bytes, itemsize: int, raw_len: int) -> bytes:
        assert _lz4_block is not None
        try:
            shuffled = _lz4_block.decompress(bytes(enc))
        except Exception as exc:
            raise DataFileError(f"lz4 segment decode failed: {exc}") from exc
        out = byte_unshuffle(shuffled, itemsize)
        self._check_len(out, raw_len)
        return out


_REGISTRY: dict[str, Codec] = {"none": Codec(), "shuffle-zlib": _ShuffleZlibCodec()}
if _lz4_block is not None:  # pragma: no cover - needs optional lz4
    _REGISTRY["shuffle-lz4"] = _ShuffleLz4Codec()


def available_codecs() -> tuple[str, ...]:
    """Names of every codec usable in this process, registration order."""
    return tuple(_REGISTRY)


def get_codec(name: str) -> Codec:
    """Look up a codec by its registered name.

    Unknown names raise :class:`~repro.errors.ConfigError`; the error for
    ``shuffle-lz4`` on a host without the optional ``lz4`` package says so
    explicitly, since the file (not the request) may legitimately need it.
    """
    codec = _REGISTRY.get(name)
    if codec is None:
        if name == "shuffle-lz4":
            raise ConfigError(
                "codec 'shuffle-lz4' requires the optional 'lz4' package, "
                "which is not importable on this host"
            )
        raise ConfigError(
            f"unknown codec {name!r}; available: {', '.join(_REGISTRY)}"
        )
    return codec
