"""The dataset manifest: everything a reader needs that isn't per-file.

``manifest.json`` records the particle dtype (as a NumPy ``descr``), the LOD
parameters the dataset was written with (base level size ``P``, resolution
scale ``S``, ordering heuristic, shuffle seed), and the writer configuration
(partition factor, process grid, adaptivity) for provenance.  The spatial
table lives separately in binary (``spatial.meta``) because readers on many
ranks parse it on their hot path.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.errors import FormatError
from repro.io.backend import FileBackend

MANIFEST_PATH = "manifest.json"
MANIFEST_VERSION = 2
#: Version written for chained manifests (``manifest.gen-N.json``); adds the
#: ``generation``/``parent`` fields.  Generation-0 manifests keep writing
#: version 2 so classic datasets stay byte-identical.
MANIFEST_VERSION_GEN = 3

#: Versions this reader understands (1 = pre-checksum legacy).
SUPPORTED_MANIFEST_VERSIONS = (1, 2, 3)


def dtype_to_descr(dtype: np.dtype) -> list:
    """A JSON-stable NumPy descr (shared with the v3 recovery trailer)."""
    descr = dtype.descr
    # JSON has no tuples; normalise to lists for stable round-trips.
    return json.loads(json.dumps(descr))


def descr_to_dtype(descr: Any) -> np.dtype:
    """Inverse of :func:`dtype_to_descr`; raises FormatError on garbage."""
    def detuple(item):
        if isinstance(item, list):
            out = [detuple(x) for x in item]
            if (
                len(out) in (2, 3)
                and isinstance(out[0], str)
                and isinstance(out[1], (str, list))
            ):
                if len(out) == 3:
                    return (out[0], out[1], tuple(out[2]))
                return tuple(out)
            return out
        return item

    try:
        return np.dtype(detuple(descr))
    except Exception as exc:
        raise FormatError(f"manifest has an invalid dtype descr: {descr!r}") from exc


@dataclass
class Manifest:
    """Dataset-level metadata, serialised as ``manifest.json``."""

    dtype: np.dtype
    num_files: int
    total_particles: int
    lod_base: int = 32          # P: particles per reading process in level 0
    lod_scale: int = 2          # S: per-level multiplier
    lod_heuristic: str = "random"
    lod_seed: int | None = 0
    writer: dict[str, Any] = field(default_factory=dict)
    #: per-data-file payload checksums: path -> {"payload_crc32": int,
    #: "prefixes": [[count, crc32], ...]} (empty for v1 datasets).
    checksums: dict[str, dict] = field(default_factory=dict)
    #: CRC32 of the spatial.meta blob this manifest commits (None for v1).
    spatial_meta_crc32: int | None = None
    #: Position in the generation chain (0 = classic single-manifest layout).
    generation: int = 0
    #: Generation this one was committed on top of (None for generation 0).
    parent: int | None = None

    def __post_init__(self) -> None:
        self.dtype = np.dtype(self.dtype)
        if self.lod_base < 1:
            raise FormatError(f"lod_base must be >= 1, got {self.lod_base}")
        if self.lod_scale < 2:
            raise FormatError(f"lod_scale must be >= 2, got {self.lod_scale}")
        if self.num_files < 0 or self.total_particles < 0:
            raise FormatError("num_files and total_particles must be >= 0")
        if self.generation < 0:
            raise FormatError(f"generation must be >= 0, got {self.generation}")
        if self.generation == 0 and self.parent is not None:
            raise FormatError("generation 0 cannot have a parent")
        if self.parent is not None and self.parent >= self.generation:
            raise FormatError(
                f"parent generation {self.parent} must precede {self.generation}"
            )

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "format": "spio-particles",
            "version": MANIFEST_VERSION if self.generation == 0 else MANIFEST_VERSION_GEN,
            "dtype_descr": dtype_to_descr(self.dtype),
            "num_files": self.num_files,
            "total_particles": self.total_particles,
            "lod": {
                "base": self.lod_base,
                "scale": self.lod_scale,
                "heuristic": self.lod_heuristic,
                "seed": self.lod_seed,
            },
            "writer": self.writer,
            "checksums": self.checksums,
            "spatial_meta_crc32": self.spatial_meta_crc32,
        }
        if self.generation > 0:
            # Only chained manifests carry the fields, so a generation-0
            # manifest stays byte-identical to what earlier writers produced
            # (repair's bit-identical rebuild guarantee depends on that).
            doc["generation"] = self.generation
            doc["parent"] = self.parent
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FormatError(f"manifest is not valid JSON: {exc}") from exc
        if doc.get("format") != "spio-particles":
            raise FormatError(f"not a particle dataset manifest: {doc.get('format')!r}")
        if doc.get("version") not in SUPPORTED_MANIFEST_VERSIONS:
            raise FormatError(f"unsupported manifest version {doc.get('version')!r}")
        try:
            lod = doc["lod"]
            meta_crc = doc.get("spatial_meta_crc32")
            parent = doc.get("parent")
            return cls(
                dtype=descr_to_dtype(doc["dtype_descr"]),
                num_files=int(doc["num_files"]),
                total_particles=int(doc["total_particles"]),
                lod_base=int(lod["base"]),
                lod_scale=int(lod["scale"]),
                lod_heuristic=str(lod["heuristic"]),
                lod_seed=None if lod["seed"] is None else int(lod["seed"]),
                writer=dict(doc.get("writer", {})),
                checksums={
                    str(path): dict(entry)
                    for path, entry in dict(doc.get("checksums", {})).items()
                },
                spatial_meta_crc32=None if meta_crc is None else int(meta_crc),
                generation=int(doc.get("generation", 0)),
                parent=None if parent is None else int(parent),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"manifest missing or malformed field: {exc}") from exc

    def write(self, backend: FileBackend, path: str = MANIFEST_PATH, actor: int = -1) -> None:
        backend.write_file(path, self.to_json().encode("utf-8"), actor=actor)

    @classmethod
    def read(cls, backend: FileBackend, path: str = MANIFEST_PATH, actor: int = -1) -> "Manifest":
        try:
            raw = backend.read_file(path, actor=actor)
        except Exception as exc:
            raise FormatError(f"cannot read manifest {path!r}: {exc}") from exc
        return cls.from_json(raw.decode("utf-8"))

    def summary(self) -> dict[str, Any]:
        """A printable summary (used by examples)."""
        d = asdict(self)
        d["dtype"] = str(self.dtype)
        return d
