"""Particle data files.

Each aggregator writes one data file holding its LOD-ordered particles.  The
layout (format versions 2 and 3) is a small fixed header, the raw
little-endian structured records, and a CRC32 footer::

    offset  size  field
    0       8     magic  b"SPIODATA"
    8       4     format version (u32, currently 3)
    12      4     record size in bytes (u32)  — guards dtype mismatches
    16      8     particle count (u64)
    24      ...   particle records
            4     footer magic b"FCRC"
            4     CRC32 of header + records (u32)

Version-1 files (no footer) remain fully readable; they simply carry no
whole-file checksum, so corruption in them is only caught by the structural
checks (magic, version, record size, byte length).

**Version 3** appends a self-describing *recovery trailer* after the CRC
footer (see :class:`RecoveryTrailer`)::

    ...     ...   JSON trailer body (utf-8)
    -12     4     trailer magic b"RCVT"
    -8      4     trailer body length (u32)
    -4      4     CRC32 of the trailer body (u32)

The trailer redundantly carries everything the dataset-level metadata knows
about this one file — box id, aggregator rank, bounding box, per-attribute
ranges, dtype descr, LOD parameters, and the file's payload/prefix
checksums — so a dataset whose ``spatial.meta``/``manifest.json`` are lost
can be rebuilt purely from surviving data files (:mod:`repro.core.repair`).
It sits entirely past the footer: the version gate lets v3 length checks
tolerate the extra tail, and v1/v2 files simply have none.

The header stores only the record *size*; the full dtype lives in the
dataset manifest.  Keeping it in both places lets a reader detect a manifest
/ data-file mismatch without decoding garbage.

Besides the footer, the writer records **per-LOD-level prefix checksums** in
the manifest (see :func:`compute_file_checksums`): CRC32s of the payload up
to each per-file level boundary.  Prefix reads — which never see the footer
— verify against these when the requested count lands on a boundary, and the
scrubber verifies all of them.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.domain.box import Box
from repro.errors import DataChecksumError, DataFileError
from repro.format.chunks import chunks_from_entry, chunks_to_entry
from repro.io.backend import FileBackend
from repro.particles.batch import ParticleBatch

DATA_MAGIC = b"SPIODATA"
#: Version written when a recovery trailer is supplied (the spatial writer).
DATA_VERSION = 3
#: Version written for bare files with no trailer (baseline formats).
DATA_VERSION_PLAIN = 2
_HEADER = struct.Struct("<8sIIQ")
HEADER_BYTES = _HEADER.size

FOOTER_MAGIC = b"FCRC"
_FOOTER = struct.Struct("<4sI")
FOOTER_BYTES = _FOOTER.size

TRAILER_MAGIC = b"RCVT"
_TRAILER_FOOTER = struct.Struct("<4sII")
TRAILER_FOOTER_BYTES = _TRAILER_FOOTER.size

#: Versions this reader understands.
SUPPORTED_DATA_VERSIONS = (1, 2, 3)


def data_file_name(agg_rank: int, gen: int = 0) -> str:
    """Data files are named from the aggregator's rank, as in Fig. 4
    ("Agg rank is used to derive the name of the data file").

    Generation-chained datasets (append/compaction) namespace the file per
    generation — ``data/gN_file_R.pbin`` — so no committed byte is ever
    overwritten in place; generation 0 keeps the classic name.
    """
    if agg_rank < 0:
        raise DataFileError(f"aggregator rank must be >= 0, got {agg_rank}")
    if gen < 0:
        raise DataFileError(f"generation must be >= 0, got {gen}")
    if gen == 0:
        return f"data/file_{agg_rank}.pbin"
    return f"data/g{gen}_file_{agg_rank}.pbin"


# -- the recovery trailer (format v3) ------------------------------------------


@dataclass(frozen=True)
class RecoveryTrailer:
    """The self-describing tail of a v3 data file.

    One trailer carries every fact about its file that otherwise lives only
    in the dataset-level ``spatial.meta`` record and ``manifest.json``
    checksum entry, making the file recoverable without either:

    * spatial facts — ``box_id``, ``agg_rank``, ``particle_count``, the
      partition bounding box, and the indexed per-attribute ranges (an
      *ordered* list, so the metadata table's attribute order survives);
    * dataset facts — the particle ``dtype_descr`` and the LOD parameters,
      identical across all files of one dataset;
    * integrity facts — the payload CRC32 and the per-LOD prefix checksums
      (the manifest's per-file entry, verbatim).

    Serialised as a compact JSON body followed by a 12-byte checksummed
    tail (``RCVT`` magic | body length | body CRC32), appended *after* the
    data footer so it is invisible to plain payload reads.
    """

    box_id: int
    agg_rank: int
    particle_count: int
    bounds_lo: tuple[float, float, float]
    bounds_hi: tuple[float, float, float]
    #: ``(name, min, max)`` per indexed attribute, in metadata-table order.
    attr_ranges: tuple[tuple[str, float, float], ...]
    dtype_descr: list
    lod_base: int
    lod_scale: int
    lod_heuristic: str
    lod_seed: int | None
    payload_crc32: int
    #: ``(count, crc32)`` at each per-file LOD boundary.
    prefixes: tuple[tuple[int, int], ...]
    #: Sub-file spatial chunk index in canonical tuple form
    #: (see :func:`repro.format.chunks.chunks_from_entry`); empty for
    #: datasets written with chunking disabled, keeping their trailers
    #: byte-identical to pre-chunk-index files.
    chunks: tuple = ()
    #: Generation that wrote this file (0 = classic layout).  Serialised
    #: only when nonzero so generation-0 trailers stay byte-identical.
    gen: int = 0

    @property
    def bounds(self) -> Box:
        return Box(self.bounds_lo, self.bounds_hi)

    @property
    def attr_ranges_dict(self) -> dict[str, tuple[float, float]]:
        return {name: (lo, hi) for name, lo, hi in self.attr_ranges}

    @property
    def checksum_entry(self) -> dict:
        """The manifest ``checksums`` entry this trailer reconstructs."""
        entry = {
            "payload_crc32": int(self.payload_crc32),
            "prefixes": [[int(c), int(crc)] for c, crc in self.prefixes],
        }
        if self.chunks:
            entry["chunks"] = chunks_to_entry(self.chunks)
        return entry

    def to_bytes(self) -> bytes:
        doc = {
            "box_id": self.box_id,
            "agg_rank": self.agg_rank,
            "particle_count": self.particle_count,
            "bounds": {"lo": list(self.bounds_lo), "hi": list(self.bounds_hi)},
            "attr_ranges": [[n, lo, hi] for n, lo, hi in self.attr_ranges],
            "dtype_descr": self.dtype_descr,
            "lod": {
                "base": self.lod_base,
                "scale": self.lod_scale,
                "heuristic": self.lod_heuristic,
                "seed": self.lod_seed,
            },
            "payload_crc32": self.payload_crc32,
            "prefixes": [[c, crc] for c, crc in self.prefixes],
        }
        if self.chunks:
            doc["chunks"] = chunks_to_entry(self.chunks)
        if self.gen:
            doc["gen"] = self.gen
        body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return body + _TRAILER_FOOTER.pack(TRAILER_MAGIC, len(body), zlib.crc32(body))

    @classmethod
    def from_json_bytes(cls, body: bytes, path: str) -> "RecoveryTrailer":
        try:
            doc = json.loads(body.decode("utf-8"))
            lod = doc["lod"]
            seed = lod["seed"]
            return cls(
                box_id=int(doc["box_id"]),
                agg_rank=int(doc["agg_rank"]),
                particle_count=int(doc["particle_count"]),
                bounds_lo=tuple(float(v) for v in doc["bounds"]["lo"]),
                bounds_hi=tuple(float(v) for v in doc["bounds"]["hi"]),
                attr_ranges=tuple(
                    (str(n), float(lo), float(hi))
                    for n, lo, hi in doc["attr_ranges"]
                ),
                dtype_descr=doc["dtype_descr"],
                lod_base=int(lod["base"]),
                lod_scale=int(lod["scale"]),
                lod_heuristic=str(lod["heuristic"]),
                lod_seed=None if seed is None else int(seed),
                payload_crc32=int(doc["payload_crc32"]),
                prefixes=tuple((int(c), int(crc)) for c, crc in doc["prefixes"]),
                chunks=chunks_from_entry(doc.get("chunks", [])),
                gen=int(doc.get("gen", 0)),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise DataFileError(
                f"{path}: malformed recovery trailer body: {exc}"
            ) from exc


def extract_recovery_trailer(raw: bytes, path: str) -> RecoveryTrailer:
    """Parse the recovery trailer from a complete v3 file image."""
    if len(raw) < TRAILER_FOOTER_BYTES:
        raise DataFileError(f"{path}: no recovery trailer ({len(raw)} bytes)")
    magic, body_len, stored = _TRAILER_FOOTER.unpack(raw[-TRAILER_FOOTER_BYTES:])
    if magic != TRAILER_MAGIC:
        raise DataFileError(f"{path}: bad recovery-trailer magic {magic!r}")
    if body_len > len(raw) - TRAILER_FOOTER_BYTES:
        raise DataFileError(
            f"{path}: recovery-trailer body length {body_len} exceeds file"
        )
    body = raw[len(raw) - TRAILER_FOOTER_BYTES - body_len : -TRAILER_FOOTER_BYTES]
    actual = zlib.crc32(body)
    if actual != stored:
        raise DataChecksumError(
            f"{path}: recovery-trailer CRC32 mismatch — stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )
    return RecoveryTrailer.from_json_bytes(body, path)


def read_recovery_trailer(
    backend: FileBackend, path: str, actor: int = -1
) -> RecoveryTrailer:
    """Read just the recovery trailer of ``path`` via ranged reads."""
    size = backend.size(path)
    if size < HEADER_BYTES + FOOTER_BYTES + TRAILER_FOOTER_BYTES:
        raise DataFileError(f"{path}: no recovery trailer ({size} bytes)")
    tail = backend.read_range(path, size - TRAILER_FOOTER_BYTES,
                              TRAILER_FOOTER_BYTES, actor=actor)
    magic, body_len, _stored = _TRAILER_FOOTER.unpack(tail)
    if magic != TRAILER_MAGIC:
        raise DataFileError(f"{path}: bad recovery-trailer magic {magic!r}")
    if body_len > size - TRAILER_FOOTER_BYTES:
        raise DataFileError(
            f"{path}: recovery-trailer body length {body_len} exceeds file"
        )
    body = backend.read_range(
        path, size - TRAILER_FOOTER_BYTES - body_len, body_len, actor=actor
    )
    return extract_recovery_trailer(bytes(body) + bytes(tail), path)


# -- writing -------------------------------------------------------------------


def build_data_blob(
    payload: bytes,
    itemsize: int,
    count: int,
    trailer: RecoveryTrailer | None = None,
) -> bytes:
    """Assemble a complete data-file image from a raw payload.

    Shared by :func:`write_data_file` and the repair subsystem's torn-file
    truncation, which rebuilds a shorter file from salvaged payload bytes.
    """
    version = DATA_VERSION if trailer is not None else DATA_VERSION_PLAIN
    header = _HEADER.pack(DATA_MAGIC, version, itemsize, count)
    footer = _FOOTER.pack(FOOTER_MAGIC, zlib.crc32(payload, zlib.crc32(header)))
    blob = header + payload + footer
    if trailer is not None:
        blob += trailer.to_bytes()
    return blob


def write_data_file(
    backend: FileBackend,
    path: str,
    batch: ParticleBatch,
    actor: int = -1,
    trailer: RecoveryTrailer | None = None,
) -> int:
    """Write ``batch`` (already LOD-ordered) to ``path``; returns bytes written.

    With a :class:`RecoveryTrailer` the file is written as format v3
    (self-describing); without one it stays a plain v2 file, byte-identical
    to what earlier writers produced.
    """
    blob = build_data_blob(batch.tobytes(), batch.dtype.itemsize, len(batch), trailer)
    backend.write_file(path, blob, actor=actor)
    return len(blob)


def parse_data_header(raw: bytes, path: str) -> tuple[int, int, int]:
    """Validate the fixed header without a dtype in hand.

    Returns ``(version, record_size, particle_count)`` — the lenient parse
    the repair subsystem uses on files whose manifest (and therefore dtype)
    may be lost.
    """
    if len(raw) < HEADER_BYTES:
        raise DataFileError(f"{path}: truncated header ({len(raw)} bytes)")
    magic, version, rec_size, count = _HEADER.unpack_from(raw)
    if magic != DATA_MAGIC:
        raise DataFileError(f"{path}: bad magic {magic!r}")
    if version not in SUPPORTED_DATA_VERSIONS:
        raise DataFileError(f"{path}: unsupported version {version}")
    return int(version), int(rec_size), int(count)


def _parse_header(raw: bytes, path: str, dtype: np.dtype) -> tuple[int, int]:
    """Validate the fixed header; returns ``(version, particle_count)``."""
    version, rec_size, count = parse_data_header(raw, path)
    if rec_size != dtype.itemsize:
        raise DataFileError(
            f"{path}: record size {rec_size} does not match dtype itemsize "
            f"{dtype.itemsize} — manifest and data file disagree"
        )
    return version, count


def verify_data_footer(raw: bytes, path: str) -> None:
    """Check the v2+ CRC footer of a complete file image (header + records +
    footer, no trailer).  Shared with the repair subsystem's inspection."""
    body, footer = raw[:-FOOTER_BYTES], raw[-FOOTER_BYTES:]
    magic, stored = _FOOTER.unpack(footer)
    if magic != FOOTER_MAGIC:
        raise DataChecksumError(f"{path}: bad footer magic {magic!r}")
    actual = zlib.crc32(body)
    if actual != stored:
        raise DataChecksumError(
            f"{path}: CRC32 mismatch — stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )


def read_data_file(
    backend: FileBackend, path: str, dtype: np.dtype, actor: int = -1
) -> ParticleBatch:
    """Read every particle in ``path``, verifying the checksum footer (v2+).

    Version gating of the length check: v1/v2 files must match the expected
    byte count exactly, while v3 files may carry extra bytes past the footer
    (the recovery trailer), which a plain read ignores.
    """
    raw = backend.read_file(path, actor=actor)
    version, count = _parse_header(raw, path, dtype)
    footer = FOOTER_BYTES if version >= 2 else 0
    expected = HEADER_BYTES + count * dtype.itemsize + footer
    if (len(raw) < expected) if version >= 3 else (len(raw) != expected):
        raise DataFileError(
            f"{path}: expected {expected} bytes for {count} particles, "
            f"found {len(raw)}"
        )
    if version >= 2:
        verify_data_footer(raw[:expected], path)
    return ParticleBatch.frombuffer(raw[HEADER_BYTES : expected - footer], dtype)


def read_data_prefix(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    count: int,
    offset_particles: int = 0,
    actor: int = -1,
) -> ParticleBatch:
    """Read ``count`` particles starting at ``offset_particles``.

    This is the LOD read primitive: because files are written in level-of-
    detail order, a prefix *is* a coarse representation, and progressive
    refinement reads the next slice without re-reading the previous one.

    Ranged reads never touch the file footer, so they carry no whole-file
    verification; callers holding the manifest's prefix checksums can verify
    boundary-aligned prefixes (see :meth:`SpatialReader.execute`).
    """
    if count < 0 or offset_particles < 0:
        raise DataFileError(
            f"negative count/offset ({count}, {offset_particles}) for {path}"
        )
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    _version, total = _parse_header(header, path, dtype)
    if offset_particles + count > total:
        raise DataFileError(
            f"{path}: slice [{offset_particles}, {offset_particles + count}) "
            f"exceeds particle count {total}"
        )
    if count == 0:
        return ParticleBatch(np.empty(0, dtype=dtype))
    start = HEADER_BYTES + offset_particles * dtype.itemsize
    raw = backend.read_range(path, start, count * dtype.itemsize, actor=actor)
    return ParticleBatch.frombuffer(raw, dtype)


def read_data_file_into(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    out: np.ndarray,
    actor: int = -1,
) -> int:
    """Zero-copy :func:`read_data_file`: land the payload in ``out``.

    ``out`` must be a contiguous structured array of exactly the file's
    particle count; the payload is read straight into its buffer via
    :meth:`FileBackend.readinto` — no whole-file bytes object is ever
    materialised.  Verification is identical to :func:`read_data_file`
    (header structure, byte length vs. the on-disk size, v2+ CRC footer),
    with matching error messages, so the two paths are interchangeable to
    every caller that inspects failures.  Returns the particle count.
    """
    size = backend.size(path)
    if size < HEADER_BYTES:
        raise DataFileError(f"{path}: truncated header ({size} bytes)")
    # Speculative scatter-gather: the caller's ``out`` predicts the payload
    # extent, so header, payload, and footer land in ONE readv (one open).
    # When the on-disk size contradicts the prediction, fall back to a
    # header-only read — the validation below then raises exactly the error
    # the sized-read path would have.
    buf = out.view(np.uint8)
    header = bytearray(HEADER_BYTES)
    payload = len(out) * dtype.itemsize
    rem = size - HEADER_BYTES - payload
    footer_buf = bytearray(FOOTER_BYTES) if rem >= FOOTER_BYTES else None
    if rem == 0 or footer_buf is not None:
        segments: list = [(0, header)]
        if payload:
            segments.append((HEADER_BYTES, buf))
        if footer_buf is not None:
            segments.append((HEADER_BYTES + payload, footer_buf))
        backend.readv(path, segments, actor=actor)
    else:
        header[:] = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    version, count = _parse_header(bytes(header), path, dtype)
    footer = FOOTER_BYTES if version >= 2 else 0
    expected = HEADER_BYTES + count * dtype.itemsize + footer
    if (size < expected) if version >= 3 else (size != expected):
        raise DataFileError(
            f"{path}: expected {expected} bytes for {count} particles, "
            f"found {size}"
        )
    if count != len(out):
        raise DataFileError(
            f"{path}: holds {count} particles, caller expected {len(out)}"
        )
    if version >= 2:
        # The checks above passing guarantees the speculative layout was
        # right, so the footer segment holds the real footer bytes.
        magic, stored = _FOOTER.unpack(bytes(footer_buf))
        if magic != FOOTER_MAGIC:
            raise DataChecksumError(f"{path}: bad footer magic {magic!r}")
        actual = zlib.crc32(buf, zlib.crc32(header))
        if actual != stored:
            raise DataChecksumError(
                f"{path}: CRC32 mismatch — stored {stored:#010x}, "
                f"computed {actual:#010x}"
            )
    return count


def read_data_prefix_into(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    out: np.ndarray,
    offset_particles: int = 0,
    actor: int = -1,
) -> int:
    """Zero-copy :func:`read_data_prefix`: land ``len(out)`` particles
    starting at ``offset_particles`` directly in ``out``'s buffer.

    Same validation and error messages as :func:`read_data_prefix`, but
    header and payload arrive via one :meth:`FileBackend.readv` (a single
    open); like it, carries no whole-file verification.  Returns the
    particle count read.
    """
    count = len(out)
    if offset_particles < 0:
        raise DataFileError(
            f"negative count/offset ({count}, {offset_particles}) for {path}"
        )
    header = bytearray(HEADER_BYTES)
    start = HEADER_BYTES + offset_particles * dtype.itemsize
    nbytes = count * dtype.itemsize
    # Header and payload in one readv when the slice fits the on-disk size;
    # a slice past EOF implies it exceeds the particle count, so the
    # header-only fallback always ends in the legacy slice error below.
    if nbytes and start + nbytes <= backend.size(path):
        backend.readv(
            path, [(0, header), (start, out.view(np.uint8))], actor=actor
        )
    else:
        header[:] = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    _version, total = _parse_header(bytes(header), path, dtype)
    if offset_particles + count > total:
        raise DataFileError(
            f"{path}: slice [{offset_particles}, {offset_particles + count}) "
            f"exceeds particle count {total}"
        )
    return count


def read_particle_runs_into(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    runs,
    out: np.ndarray,
    actor: int = -1,
) -> int:
    """Scatter-gather read of coalesced ``(start, count)`` particle runs.

    The chunked read primitive: each run lands in the next ``count``
    particles of ``out``, all runs gathered in one
    :meth:`FileBackend.readv` (a single open serves the whole file).
    Runs must be in ascending order and sum to ``len(out)``.  Like prefix
    reads, run reads never see the file footer, so they carry no whole-file
    verification — the chunk index they were planned from is validated
    against the manifest instead.  Returns the particle count read.
    """
    runs = list(runs)
    itemsize = dtype.itemsize
    header = bytearray(HEADER_BYTES)
    # Header plus every run in one readv (one open).  The segment list is
    # built speculatively; validation against the parsed header runs after,
    # and an out-of-bounds plan (which cannot assemble valid segments) takes
    # the header-only fallback and raises from the checks below.
    segments: list = [(0, header)]
    pos = 0
    end_max = 0
    sane = True
    for start, count in runs:
        if start < 0 or count < 0 or pos + count > len(out):
            sane = False
            break
        if count:
            segments.append(
                (
                    HEADER_BYTES + start * itemsize,
                    out[pos : pos + count].view(np.uint8),
                )
            )
        end_max = max(end_max, start + count)
        pos += count
    if sane and HEADER_BYTES + end_max * itemsize <= backend.size(path):
        backend.readv(path, segments, actor=actor)
    else:
        header[:] = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    _version, total = _parse_header(bytes(header), path, dtype)
    pos = 0
    for start, count in runs:
        if start < 0 or count < 0 or start + count > total:
            raise DataFileError(
                f"{path}: run [{start}, {start + count}) exceeds particle "
                f"count {total}"
            )
        if pos + count > len(out):
            raise DataFileError(
                f"{path}: runs overflow destination of {len(out)} particles"
            )
        pos += count
    if pos != len(out):
        raise DataFileError(
            f"{path}: runs cover {pos} particles, destination holds {len(out)}"
        )
    return pos


def peek_data_header(
    backend: FileBackend, path: str, actor: int = -1
) -> tuple[int, int]:
    """``(version, particle_count)`` from the header alone (no payload read)."""
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    if len(header) < HEADER_BYTES or header[:8] != DATA_MAGIC:
        raise DataFileError(f"{path}: not a particle data file")
    _, version, _, count = _HEADER.unpack_from(header)
    return int(version), int(count)


def peek_particle_count(backend: FileBackend, path: str, actor: int = -1) -> int:
    """Particle count from the header alone (no payload read)."""
    return peek_data_header(backend, path, actor=actor)[1]


# -- prefix checksums ----------------------------------------------------------


def prefix_checksum_boundaries(count: int, base: int, scale: int) -> list[int]:
    """Particle counts at which prefix checksums are recorded.

    Boundaries follow the per-file LOD ladder for a single reader: level
    ``l`` contributes ``base * scale**l`` records, so boundaries are the
    cumulative level counts clipped to the file's total.  The last boundary
    always equals ``count`` (for non-empty files), so the full payload is
    always covered.
    """
    if count < 0:
        raise DataFileError(f"negative particle count {count}")
    bounds: list[int] = []
    cum, size = 0, base
    while cum < count:
        cum = min(count, cum + size)
        bounds.append(cum)
        size *= scale
    return bounds


def payload_prefix_checksums(
    payload: bytes, itemsize: int, boundaries: list[int]
) -> list[tuple[int, int]]:
    """``(count, CRC32 of payload[:count*itemsize])`` per boundary.

    Computed incrementally — one pass over the payload regardless of how
    many boundaries there are.
    """
    out: list[tuple[int, int]] = []
    crc, pos = 0, 0
    for b in boundaries:
        end = b * itemsize
        if end > len(payload):
            raise DataFileError(
                f"checksum boundary {b} exceeds payload "
                f"({len(payload) // max(itemsize, 1)} records)"
            )
        crc = zlib.crc32(payload[pos:end], crc)
        pos = end
        out.append((b, crc))
    return out


def compute_file_checksums(batch: ParticleBatch, base: int, scale: int) -> dict:
    """The manifest checksum entry for one data file's payload.

    ``payload_crc32`` covers the full payload (records only, no header);
    ``prefixes`` holds ``[count, crc32]`` pairs at the per-file LOD
    boundaries of :func:`prefix_checksum_boundaries`.
    """
    payload = batch.tobytes()
    boundaries = prefix_checksum_boundaries(len(batch), base, scale)
    prefixes = payload_prefix_checksums(payload, batch.dtype.itemsize, boundaries)
    return {
        "payload_crc32": zlib.crc32(payload),
        "prefixes": [[c, crc] for c, crc in prefixes],
    }
