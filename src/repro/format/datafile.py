"""Particle data files.

Each aggregator writes one data file holding its LOD-ordered particles.  The
layout is a small fixed header followed by the raw little-endian structured
records::

    offset  size  field
    0       8     magic  b"SPIODATA"
    8       4     format version (u32)
    12      4     record size in bytes (u32)  — guards dtype mismatches
    16      8     particle count (u64)
    24      ...   particle records

The header stores only the record *size*; the full dtype lives in the
dataset manifest.  Keeping it in both places lets a reader detect a manifest
/ data-file mismatch without decoding garbage.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import DataFileError
from repro.io.backend import FileBackend
from repro.particles.batch import ParticleBatch

DATA_MAGIC = b"SPIODATA"
DATA_VERSION = 1
_HEADER = struct.Struct("<8sIIQ")
HEADER_BYTES = _HEADER.size


def data_file_name(agg_rank: int) -> str:
    """Data files are named from the aggregator's rank, as in Fig. 4
    ("Agg rank is used to derive the name of the data file")."""
    if agg_rank < 0:
        raise DataFileError(f"aggregator rank must be >= 0, got {agg_rank}")
    return f"data/file_{agg_rank}.pbin"


def write_data_file(
    backend: FileBackend, path: str, batch: ParticleBatch, actor: int = -1
) -> int:
    """Write ``batch`` (already LOD-ordered) to ``path``; returns bytes written."""
    payload = batch.tobytes()
    header = _HEADER.pack(
        DATA_MAGIC, DATA_VERSION, batch.dtype.itemsize, len(batch)
    )
    blob = header + payload
    backend.write_file(path, blob, actor=actor)
    return len(blob)


def _parse_header(raw: bytes, path: str, dtype: np.dtype) -> int:
    if len(raw) < HEADER_BYTES:
        raise DataFileError(f"{path}: truncated header ({len(raw)} bytes)")
    magic, version, rec_size, count = _HEADER.unpack_from(raw)
    if magic != DATA_MAGIC:
        raise DataFileError(f"{path}: bad magic {magic!r}")
    if version != DATA_VERSION:
        raise DataFileError(f"{path}: unsupported version {version}")
    if rec_size != dtype.itemsize:
        raise DataFileError(
            f"{path}: record size {rec_size} does not match dtype itemsize "
            f"{dtype.itemsize} — manifest and data file disagree"
        )
    return int(count)


def read_data_file(
    backend: FileBackend, path: str, dtype: np.dtype, actor: int = -1
) -> ParticleBatch:
    """Read every particle in ``path``."""
    raw = backend.read_file(path, actor=actor)
    count = _parse_header(raw, path, dtype)
    expected = HEADER_BYTES + count * dtype.itemsize
    if len(raw) != expected:
        raise DataFileError(
            f"{path}: expected {expected} bytes for {count} particles, "
            f"found {len(raw)}"
        )
    return ParticleBatch.frombuffer(raw[HEADER_BYTES:], dtype)


def read_data_prefix(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    count: int,
    offset_particles: int = 0,
    actor: int = -1,
) -> ParticleBatch:
    """Read ``count`` particles starting at ``offset_particles``.

    This is the LOD read primitive: because files are written in level-of-
    detail order, a prefix *is* a coarse representation, and progressive
    refinement reads the next slice without re-reading the previous one.
    """
    if count < 0 or offset_particles < 0:
        raise DataFileError(
            f"negative count/offset ({count}, {offset_particles}) for {path}"
        )
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    total = _parse_header(header, path, dtype)
    if offset_particles + count > total:
        raise DataFileError(
            f"{path}: slice [{offset_particles}, {offset_particles + count}) "
            f"exceeds particle count {total}"
        )
    if count == 0:
        return ParticleBatch(np.empty(0, dtype=dtype))
    start = HEADER_BYTES + offset_particles * dtype.itemsize
    raw = backend.read_range(path, start, count * dtype.itemsize, actor=actor)
    return ParticleBatch.frombuffer(raw, dtype)


def peek_particle_count(backend: FileBackend, path: str, actor: int = -1) -> int:
    """Particle count from the header alone (no payload read)."""
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    if len(header) < HEADER_BYTES or header[:8] != DATA_MAGIC:
        raise DataFileError(f"{path}: not a particle data file")
    _, _, _, count = _HEADER.unpack_from(header)
    return int(count)
