"""Particle data files.

Each aggregator writes one data file holding its LOD-ordered particles.  The
layout (format versions 2 and 3) is a small fixed header, the raw
little-endian structured records, and a CRC32 footer::

    offset  size  field
    0       8     magic  b"SPIODATA"
    8       4     format version (u32, currently 3)
    12      4     record size in bytes (u32)  — guards dtype mismatches
    16      8     particle count (u64)
    24      ...   particle records
            4     footer magic b"FCRC"
            4     CRC32 of header + records (u32)

Version-1 files (no footer) remain fully readable; they simply carry no
whole-file checksum, so corruption in them is only caught by the structural
checks (magic, version, record size, byte length).

**Version 3** appends a self-describing *recovery trailer* after the CRC
footer (see :class:`RecoveryTrailer`)::

    ...     ...   JSON trailer body (utf-8)
    -12     4     trailer magic b"RCVT"
    -8      4     trailer body length (u32)
    -4      4     CRC32 of the trailer body (u32)

The trailer redundantly carries everything the dataset-level metadata knows
about this one file — box id, aggregator rank, bounding box, per-attribute
ranges, dtype descr, LOD parameters, and the file's payload/prefix
checksums — so a dataset whose ``spatial.meta``/``manifest.json`` are lost
can be rebuilt purely from surviving data files (:mod:`repro.core.repair`).
It sits entirely past the footer: the version gate lets v3 length checks
tolerate the extra tail, and v1/v2 files simply have none.

**Version 4** keeps the same header/footer/trailer framing but stores the
payload *column-oriented*: for each spatial chunk (the sub-file chunk index
of :mod:`repro.format.chunks`), one contiguous *segment* per attribute
column — ``x``, ``y``, ``z``, then every other dtype field — each passed
through a named codec (:mod:`repro.format.codecs`) before storage.  The
header's record size still records the *logical* row itemsize (the dtype
guard), while the chunk entries grow a sixth element holding per-segment
``[offset, encoded_length, crc32]`` descriptors (offsets relative to the
payload start).  The footer CRC and ``payload_crc32`` cover the *stored*
(encoded) payload; the per-LOD prefix checksums keep covering the *logical*
row payload, so LOD salvage semantics carry over unchanged.  A v4 file is
self-describing through its trailer (chunk geometry + segment table +
codec name), honouring the same recovery contract as v3.

The header stores only the record *size*; the full dtype lives in the
dataset manifest.  Keeping it in both places lets a reader detect a manifest
/ data-file mismatch without decoding garbage.

Besides the footer, the writer records **per-LOD-level prefix checksums** in
the manifest (see :func:`compute_file_checksums`): CRC32s of the payload up
to each per-file level boundary.  Prefix reads — which never see the footer
— verify against these when the requested count lands on a boundary, and the
scrubber verifies all of them.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.domain.box import Box
from repro.errors import DataChecksumError, DataFileError
from repro.format.chunks import chunks_from_entry, chunks_to_entry
from repro.format.codecs import get_codec
from repro.io.backend import FileBackend
from repro.particles.batch import ParticleBatch

DATA_MAGIC = b"SPIODATA"
#: Version written when a recovery trailer is supplied (the spatial writer).
DATA_VERSION = 3
#: Version written for bare files with no trailer (baseline formats).
DATA_VERSION_PLAIN = 2
#: Version written for columnar (per-chunk column segment) payloads.
DATA_VERSION_COLUMNAR = 4
_HEADER = struct.Struct("<8sIIQ")
HEADER_BYTES = _HEADER.size

FOOTER_MAGIC = b"FCRC"
_FOOTER = struct.Struct("<4sI")
FOOTER_BYTES = _FOOTER.size

TRAILER_MAGIC = b"RCVT"
_TRAILER_FOOTER = struct.Struct("<4sII")
TRAILER_FOOTER_BYTES = _TRAILER_FOOTER.size

#: Versions this reader understands.
SUPPORTED_DATA_VERSIONS = (1, 2, 3, 4)


def data_file_name(agg_rank: int, gen: int = 0) -> str:
    """Data files are named from the aggregator's rank, as in Fig. 4
    ("Agg rank is used to derive the name of the data file").

    Generation-chained datasets (append/compaction) namespace the file per
    generation — ``data/gN_file_R.pbin`` — so no committed byte is ever
    overwritten in place; generation 0 keeps the classic name.
    """
    if agg_rank < 0:
        raise DataFileError(f"aggregator rank must be >= 0, got {agg_rank}")
    if gen < 0:
        raise DataFileError(f"generation must be >= 0, got {gen}")
    if gen == 0:
        return f"data/file_{agg_rank}.pbin"
    return f"data/g{gen}_file_{agg_rank}.pbin"


# -- the recovery trailer (format v3) ------------------------------------------


@dataclass(frozen=True)
class RecoveryTrailer:
    """The self-describing tail of a v3 data file.

    One trailer carries every fact about its file that otherwise lives only
    in the dataset-level ``spatial.meta`` record and ``manifest.json``
    checksum entry, making the file recoverable without either:

    * spatial facts — ``box_id``, ``agg_rank``, ``particle_count``, the
      partition bounding box, and the indexed per-attribute ranges (an
      *ordered* list, so the metadata table's attribute order survives);
    * dataset facts — the particle ``dtype_descr`` and the LOD parameters,
      identical across all files of one dataset;
    * integrity facts — the payload CRC32 and the per-LOD prefix checksums
      (the manifest's per-file entry, verbatim).

    Serialised as a compact JSON body followed by a 12-byte checksummed
    tail (``RCVT`` magic | body length | body CRC32), appended *after* the
    data footer so it is invisible to plain payload reads.
    """

    box_id: int
    agg_rank: int
    particle_count: int
    bounds_lo: tuple[float, float, float]
    bounds_hi: tuple[float, float, float]
    #: ``(name, min, max)`` per indexed attribute, in metadata-table order.
    attr_ranges: tuple[tuple[str, float, float], ...]
    dtype_descr: list
    lod_base: int
    lod_scale: int
    lod_heuristic: str
    lod_seed: int | None
    payload_crc32: int
    #: ``(count, crc32)`` at each per-file LOD boundary.
    prefixes: tuple[tuple[int, int], ...]
    #: Sub-file spatial chunk index in canonical tuple form
    #: (see :func:`repro.format.chunks.chunks_from_entry`); empty for
    #: datasets written with chunking disabled, keeping their trailers
    #: byte-identical to pre-chunk-index files.
    chunks: tuple = ()
    #: Generation that wrote this file (0 = classic layout).  Serialised
    #: only when nonzero so generation-0 trailers stay byte-identical.
    gen: int = 0
    #: Codec every column segment of a columnar (v4) file was encoded
    #: with (see :mod:`repro.format.codecs`); ``None`` for row-oriented
    #: files, and serialised only when set so v1–v3 trailers stay
    #: byte-identical.
    codec: str | None = None

    @property
    def bounds(self) -> Box:
        return Box(self.bounds_lo, self.bounds_hi)

    @property
    def attr_ranges_dict(self) -> dict[str, tuple[float, float]]:
        return {name: (lo, hi) for name, lo, hi in self.attr_ranges}

    @property
    def checksum_entry(self) -> dict:
        """The manifest ``checksums`` entry this trailer reconstructs."""
        entry = {
            "payload_crc32": int(self.payload_crc32),
            "prefixes": [[int(c), int(crc)] for c, crc in self.prefixes],
        }
        if self.chunks:
            entry["chunks"] = chunks_to_entry(self.chunks)
        if self.codec is not None:
            entry["codec"] = str(self.codec)
        return entry

    def to_bytes(self) -> bytes:
        doc = {
            "box_id": self.box_id,
            "agg_rank": self.agg_rank,
            "particle_count": self.particle_count,
            "bounds": {"lo": list(self.bounds_lo), "hi": list(self.bounds_hi)},
            "attr_ranges": [[n, lo, hi] for n, lo, hi in self.attr_ranges],
            "dtype_descr": self.dtype_descr,
            "lod": {
                "base": self.lod_base,
                "scale": self.lod_scale,
                "heuristic": self.lod_heuristic,
                "seed": self.lod_seed,
            },
            "payload_crc32": self.payload_crc32,
            "prefixes": [[c, crc] for c, crc in self.prefixes],
        }
        if self.chunks:
            doc["chunks"] = chunks_to_entry(self.chunks)
        if self.gen:
            doc["gen"] = self.gen
        if self.codec is not None:
            doc["codec"] = str(self.codec)
        body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return body + _TRAILER_FOOTER.pack(TRAILER_MAGIC, len(body), zlib.crc32(body))

    @classmethod
    def from_json_bytes(cls, body: bytes, path: str) -> "RecoveryTrailer":
        try:
            doc = json.loads(body.decode("utf-8"))
            lod = doc["lod"]
            seed = lod["seed"]
            return cls(
                box_id=int(doc["box_id"]),
                agg_rank=int(doc["agg_rank"]),
                particle_count=int(doc["particle_count"]),
                bounds_lo=tuple(float(v) for v in doc["bounds"]["lo"]),
                bounds_hi=tuple(float(v) for v in doc["bounds"]["hi"]),
                attr_ranges=tuple(
                    (str(n), float(lo), float(hi))
                    for n, lo, hi in doc["attr_ranges"]
                ),
                dtype_descr=doc["dtype_descr"],
                lod_base=int(lod["base"]),
                lod_scale=int(lod["scale"]),
                lod_heuristic=str(lod["heuristic"]),
                lod_seed=None if seed is None else int(seed),
                payload_crc32=int(doc["payload_crc32"]),
                prefixes=tuple((int(c), int(crc)) for c, crc in doc["prefixes"]),
                chunks=chunks_from_entry(doc.get("chunks", [])),
                gen=int(doc.get("gen", 0)),
                codec=(None if doc.get("codec") is None else str(doc["codec"])),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise DataFileError(
                f"{path}: malformed recovery trailer body: {exc}"
            ) from exc


def extract_recovery_trailer(raw: bytes, path: str) -> RecoveryTrailer:
    """Parse the recovery trailer from a complete v3 file image."""
    if len(raw) < TRAILER_FOOTER_BYTES:
        raise DataFileError(f"{path}: no recovery trailer ({len(raw)} bytes)")
    magic, body_len, stored = _TRAILER_FOOTER.unpack(raw[-TRAILER_FOOTER_BYTES:])
    if magic != TRAILER_MAGIC:
        raise DataFileError(f"{path}: bad recovery-trailer magic {magic!r}")
    if body_len > len(raw) - TRAILER_FOOTER_BYTES:
        raise DataFileError(
            f"{path}: recovery-trailer body length {body_len} exceeds file"
        )
    body = raw[len(raw) - TRAILER_FOOTER_BYTES - body_len : -TRAILER_FOOTER_BYTES]
    actual = zlib.crc32(body)
    if actual != stored:
        raise DataChecksumError(
            f"{path}: recovery-trailer CRC32 mismatch — stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )
    return RecoveryTrailer.from_json_bytes(body, path)


def read_recovery_trailer(
    backend: FileBackend, path: str, actor: int = -1
) -> RecoveryTrailer:
    """Read just the recovery trailer of ``path`` via ranged reads."""
    size = backend.size(path)
    if size < HEADER_BYTES + FOOTER_BYTES + TRAILER_FOOTER_BYTES:
        raise DataFileError(f"{path}: no recovery trailer ({size} bytes)")
    tail = backend.read_range(path, size - TRAILER_FOOTER_BYTES,
                              TRAILER_FOOTER_BYTES, actor=actor)
    magic, body_len, _stored = _TRAILER_FOOTER.unpack(tail)
    if magic != TRAILER_MAGIC:
        raise DataFileError(f"{path}: bad recovery-trailer magic {magic!r}")
    if body_len > size - TRAILER_FOOTER_BYTES:
        raise DataFileError(
            f"{path}: recovery-trailer body length {body_len} exceeds file"
        )
    body = backend.read_range(
        path, size - TRAILER_FOOTER_BYTES - body_len, body_len, actor=actor
    )
    return extract_recovery_trailer(bytes(body) + bytes(tail), path)


# -- writing -------------------------------------------------------------------


def build_data_blob(
    payload: bytes,
    itemsize: int,
    count: int,
    trailer: RecoveryTrailer | None = None,
    version: int | None = None,
) -> bytes:
    """Assemble a complete data-file image from a raw payload.

    Shared by :func:`write_data_file` and the repair subsystem's torn-file
    truncation, which rebuilds a shorter file from salvaged payload bytes.
    Without an explicit ``version`` the presence of a trailer selects v3
    over v2; columnar writers pass ``version=DATA_VERSION_COLUMNAR`` with
    an already-encoded ``payload`` (``itemsize`` stays the logical row
    itemsize — the dtype guard).
    """
    if version is None:
        version = DATA_VERSION if trailer is not None else DATA_VERSION_PLAIN
    if version >= DATA_VERSION_COLUMNAR and trailer is None:
        raise DataFileError("columnar (v4) files require a recovery trailer")
    header = _HEADER.pack(DATA_MAGIC, version, itemsize, count)
    footer = _FOOTER.pack(FOOTER_MAGIC, zlib.crc32(payload, zlib.crc32(header)))
    blob = header + payload + footer
    if trailer is not None:
        blob += trailer.to_bytes()
    return blob


def write_data_file(
    backend: FileBackend,
    path: str,
    batch: ParticleBatch,
    actor: int = -1,
    trailer: RecoveryTrailer | None = None,
) -> int:
    """Write ``batch`` (already LOD-ordered) to ``path``; returns bytes written.

    With a :class:`RecoveryTrailer` the file is written as format v3
    (self-describing); without one it stays a plain v2 file, byte-identical
    to what earlier writers produced.
    """
    blob = build_data_blob(batch.tobytes(), batch.dtype.itemsize, len(batch), trailer)
    backend.write_file(path, blob, actor=actor)
    return len(blob)


def write_columnar_data_file(
    backend: FileBackend,
    path: str,
    payload: bytes,
    itemsize: int,
    count: int,
    trailer: RecoveryTrailer,
    actor: int = -1,
) -> int:
    """Write an already-encoded columnar payload as a v4 file.

    ``payload`` comes from :func:`encode_columnar_payload`; ``itemsize`` is
    the *logical* row itemsize (the header's dtype guard) and ``trailer``
    must carry the segment-bearing chunk list plus the codec name — a v4
    file without them is unreadable.  Returns bytes written.
    """
    blob = build_data_blob(
        payload, itemsize, count, trailer, version=DATA_VERSION_COLUMNAR
    )
    backend.write_file(path, blob, actor=actor)
    return len(blob)


def parse_data_header(raw: bytes, path: str) -> tuple[int, int, int]:
    """Validate the fixed header without a dtype in hand.

    Returns ``(version, record_size, particle_count)`` — the lenient parse
    the repair subsystem uses on files whose manifest (and therefore dtype)
    may be lost.
    """
    if len(raw) < HEADER_BYTES:
        raise DataFileError(f"{path}: truncated header ({len(raw)} bytes)")
    magic, version, rec_size, count = _HEADER.unpack_from(raw)
    if magic != DATA_MAGIC:
        raise DataFileError(f"{path}: bad magic {magic!r}")
    if version not in SUPPORTED_DATA_VERSIONS:
        raise DataFileError(f"{path}: unsupported version {version}")
    return int(version), int(rec_size), int(count)


def _parse_header(raw: bytes, path: str, dtype: np.dtype) -> tuple[int, int]:
    """Validate the fixed header; returns ``(version, particle_count)``."""
    version, rec_size, count = parse_data_header(raw, path)
    if rec_size != dtype.itemsize:
        raise DataFileError(
            f"{path}: record size {rec_size} does not match dtype itemsize "
            f"{dtype.itemsize} — manifest and data file disagree"
        )
    return version, count


def _reject_columnar(version: int, path: str) -> None:
    """Row-oriented ranged primitives cannot interpret encoded segments."""
    if version >= DATA_VERSION_COLUMNAR:
        raise DataFileError(
            f"{path}: columnar (v4) file requires a segment-aware read "
            "(see read_columnar_runs_into)"
        )


def verify_data_footer(raw: bytes, path: str) -> None:
    """Check the v2+ CRC footer of a complete file image (header + records +
    footer, no trailer).  Shared with the repair subsystem's inspection."""
    body, footer = raw[:-FOOTER_BYTES], raw[-FOOTER_BYTES:]
    magic, stored = _FOOTER.unpack(footer)
    if magic != FOOTER_MAGIC:
        raise DataChecksumError(f"{path}: bad footer magic {magic!r}")
    actual = zlib.crc32(body)
    if actual != stored:
        raise DataChecksumError(
            f"{path}: CRC32 mismatch — stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )


def read_data_file(
    backend: FileBackend, path: str, dtype: np.dtype, actor: int = -1
) -> ParticleBatch:
    """Read every particle in ``path``, verifying the checksum footer (v2+).

    Version gating of the length check: v1/v2 files must match the expected
    byte count exactly, while v3 files may carry extra bytes past the footer
    (the recovery trailer), which a plain read ignores.  Columnar (v4) files
    are decoded through their trailer's segment table — every segment CRC is
    verified — and return the same logical row batch a v3 file would.
    """
    raw = backend.read_file(path, actor=actor)
    version, count = _parse_header(raw, path, dtype)
    if version >= DATA_VERSION_COLUMNAR:
        return _read_columnar_image(raw, path, dtype, count)
    footer = FOOTER_BYTES if version >= 2 else 0
    expected = HEADER_BYTES + count * dtype.itemsize + footer
    if (len(raw) < expected) if version >= 3 else (len(raw) != expected):
        raise DataFileError(
            f"{path}: expected {expected} bytes for {count} particles, "
            f"found {len(raw)}"
        )
    if version >= 2:
        verify_data_footer(raw[:expected], path)
    return ParticleBatch.frombuffer(raw[HEADER_BYTES : expected - footer], dtype)


def read_data_prefix(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    count: int,
    offset_particles: int = 0,
    actor: int = -1,
) -> ParticleBatch:
    """Read ``count`` particles starting at ``offset_particles``.

    This is the LOD read primitive: because files are written in level-of-
    detail order, a prefix *is* a coarse representation, and progressive
    refinement reads the next slice without re-reading the previous one.

    Ranged reads never touch the file footer, so they carry no whole-file
    verification; callers holding the manifest's prefix checksums can verify
    boundary-aligned prefixes (see :meth:`SpatialReader.execute`).
    """
    if count < 0 or offset_particles < 0:
        raise DataFileError(
            f"negative count/offset ({count}, {offset_particles}) for {path}"
        )
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    _version, total = _parse_header(header, path, dtype)
    _reject_columnar(_version, path)
    if offset_particles + count > total:
        raise DataFileError(
            f"{path}: slice [{offset_particles}, {offset_particles + count}) "
            f"exceeds particle count {total}"
        )
    if count == 0:
        return ParticleBatch(np.empty(0, dtype=dtype))
    start = HEADER_BYTES + offset_particles * dtype.itemsize
    raw = backend.read_range(path, start, count * dtype.itemsize, actor=actor)
    return ParticleBatch.frombuffer(raw, dtype)


def read_data_file_into(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    out: np.ndarray,
    actor: int = -1,
) -> int:
    """Zero-copy :func:`read_data_file`: land the payload in ``out``.

    ``out`` must be a contiguous structured array of exactly the file's
    particle count; the payload is read straight into its buffer via
    :meth:`FileBackend.readinto` — no whole-file bytes object is ever
    materialised.  Verification is identical to :func:`read_data_file`
    (header structure, byte length vs. the on-disk size, v2+ CRC footer),
    with matching error messages, so the two paths are interchangeable to
    every caller that inspects failures.  Returns the particle count.
    """
    size = backend.size(path)
    if size < HEADER_BYTES:
        raise DataFileError(f"{path}: truncated header ({size} bytes)")
    # Speculative scatter-gather: the caller's ``out`` predicts the payload
    # extent, so header, payload, and footer land in ONE readv (one open).
    # When the on-disk size contradicts the prediction, fall back to a
    # header-only read — the validation below then raises exactly the error
    # the sized-read path would have.
    buf = out.view(np.uint8)
    header = bytearray(HEADER_BYTES)
    payload = len(out) * dtype.itemsize
    rem = size - HEADER_BYTES - payload
    footer_buf = bytearray(FOOTER_BYTES) if rem >= FOOTER_BYTES else None
    if rem == 0 or footer_buf is not None:
        segments: list = [(0, header)]
        if payload:
            segments.append((HEADER_BYTES, buf))
        if footer_buf is not None:
            segments.append((HEADER_BYTES + payload, footer_buf))
        backend.readv(path, segments, actor=actor)
    else:
        header[:] = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    version, count = _parse_header(bytes(header), path, dtype)
    _reject_columnar(version, path)
    footer = FOOTER_BYTES if version >= 2 else 0
    expected = HEADER_BYTES + count * dtype.itemsize + footer
    if (size < expected) if version >= 3 else (size != expected):
        raise DataFileError(
            f"{path}: expected {expected} bytes for {count} particles, "
            f"found {size}"
        )
    if count != len(out):
        raise DataFileError(
            f"{path}: holds {count} particles, caller expected {len(out)}"
        )
    if version >= 2:
        # The checks above passing guarantees the speculative layout was
        # right, so the footer segment holds the real footer bytes.
        magic, stored = _FOOTER.unpack(bytes(footer_buf))
        if magic != FOOTER_MAGIC:
            raise DataChecksumError(f"{path}: bad footer magic {magic!r}")
        actual = zlib.crc32(buf, zlib.crc32(header))
        if actual != stored:
            raise DataChecksumError(
                f"{path}: CRC32 mismatch — stored {stored:#010x}, "
                f"computed {actual:#010x}"
            )
    return count


def read_data_prefix_into(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    out: np.ndarray,
    offset_particles: int = 0,
    actor: int = -1,
) -> int:
    """Zero-copy :func:`read_data_prefix`: land ``len(out)`` particles
    starting at ``offset_particles`` directly in ``out``'s buffer.

    Same validation and error messages as :func:`read_data_prefix`, but
    header and payload arrive via one :meth:`FileBackend.readv` (a single
    open); like it, carries no whole-file verification.  Returns the
    particle count read.
    """
    count = len(out)
    if offset_particles < 0:
        raise DataFileError(
            f"negative count/offset ({count}, {offset_particles}) for {path}"
        )
    header = bytearray(HEADER_BYTES)
    start = HEADER_BYTES + offset_particles * dtype.itemsize
    nbytes = count * dtype.itemsize
    # Header and payload in one readv when the slice fits the on-disk size;
    # a slice past EOF implies it exceeds the particle count, so the
    # header-only fallback always ends in the legacy slice error below.
    if nbytes and start + nbytes <= backend.size(path):
        backend.readv(
            path, [(0, header), (start, out.view(np.uint8))], actor=actor
        )
    else:
        header[:] = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    _version, total = _parse_header(bytes(header), path, dtype)
    _reject_columnar(_version, path)
    if offset_particles + count > total:
        raise DataFileError(
            f"{path}: slice [{offset_particles}, {offset_particles + count}) "
            f"exceeds particle count {total}"
        )
    return count


def read_particle_runs_into(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    runs,
    out: np.ndarray,
    actor: int = -1,
) -> int:
    """Scatter-gather read of coalesced ``(start, count)`` particle runs.

    The chunked read primitive: each run lands in the next ``count``
    particles of ``out``, all runs gathered in one
    :meth:`FileBackend.readv` (a single open serves the whole file).
    Runs must be in ascending order and sum to ``len(out)``.  Like prefix
    reads, run reads never see the file footer, so they carry no whole-file
    verification — the chunk index they were planned from is validated
    against the manifest instead.  Returns the particle count read.
    """
    runs = list(runs)
    itemsize = dtype.itemsize
    header = bytearray(HEADER_BYTES)
    # Header plus every run in one readv (one open).  The segment list is
    # built speculatively; validation against the parsed header runs after,
    # and an out-of-bounds plan (which cannot assemble valid segments) takes
    # the header-only fallback and raises from the checks below.
    segments: list = [(0, header)]
    pos = 0
    end_max = 0
    sane = True
    for start, count in runs:
        if start < 0 or count < 0 or pos + count > len(out):
            sane = False
            break
        if count:
            segments.append(
                (
                    HEADER_BYTES + start * itemsize,
                    out[pos : pos + count].view(np.uint8),
                )
            )
        end_max = max(end_max, start + count)
        pos += count
    if sane and HEADER_BYTES + end_max * itemsize <= backend.size(path):
        backend.readv(path, segments, actor=actor)
    else:
        header[:] = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    _version, total = _parse_header(bytes(header), path, dtype)
    _reject_columnar(_version, path)
    pos = 0
    for start, count in runs:
        if start < 0 or count < 0 or start + count > total:
            raise DataFileError(
                f"{path}: run [{start}, {start + count}) exceeds particle "
                f"count {total}"
            )
        if pos + count > len(out):
            raise DataFileError(
                f"{path}: runs overflow destination of {len(out)} particles"
            )
        pos += count
    if pos != len(out):
        raise DataFileError(
            f"{path}: runs cover {pos} particles, destination holds {len(out)}"
        )
    return pos


def peek_data_header(
    backend: FileBackend, path: str, actor: int = -1
) -> tuple[int, int]:
    """``(version, particle_count)`` from the header alone (no payload read)."""
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    if len(header) < HEADER_BYTES or header[:8] != DATA_MAGIC:
        raise DataFileError(f"{path}: not a particle data file")
    _, version, _, count = _HEADER.unpack_from(header)
    return int(version), int(count)


def peek_particle_count(backend: FileBackend, path: str, actor: int = -1) -> int:
    """Particle count from the header alone (no payload read)."""
    return peek_data_header(backend, path, actor=actor)[1]


# -- columnar payloads (format v4) ---------------------------------------------


@dataclass(frozen=True)
class ColumnSpec:
    """One attribute column of a columnar payload.

    The canonical column order of a dtype is ``x``, ``y``, ``z`` (the three
    position components, each its own column) followed by every other field
    in dtype order, one column per field (subarray fields like a stress
    tensor stay one contiguous column).  ``itemsize`` is the scalar width —
    the codec shuffle stride — and ``nbytes`` the raw bytes one particle
    contributes to this column.
    """

    name: str
    field: str
    comp: int | None
    base: np.dtype
    shape: tuple
    itemsize: int
    nbytes: int


def columnar_columns(dtype: np.dtype) -> tuple[ColumnSpec, ...]:
    """The canonical column list for a particle ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype.names is None or "position" not in dtype.names:
        raise DataFileError(f"not a particle dtype: {dtype}")
    cols: list[ColumnSpec] = []
    for field in dtype.names:
        sub = dtype.fields[field][0]  # type: ignore[index]
        base = sub.base
        if field == "position":
            for comp, axis in enumerate("xyz"):
                cols.append(
                    ColumnSpec(
                        axis, field, comp, base, (), base.itemsize, base.itemsize
                    )
                )
        else:
            cols.append(
                ColumnSpec(
                    field, field, None, base, sub.shape,
                    base.itemsize, sub.itemsize,
                )
            )
    return tuple(cols)


def _column_bytes(rows: np.ndarray, col: ColumnSpec) -> bytes:
    """Raw little-endian bytes of one column over ``rows``."""
    if col.comp is not None:
        return np.ascontiguousarray(rows[col.field][:, col.comp]).tobytes()
    return np.ascontiguousarray(rows[col.field]).tobytes()


def _column_scatter(
    out: np.ndarray, pos: int, count: int, col: ColumnSpec, raw: bytes
) -> None:
    """Land one decoded column segment into rows ``[pos, pos+count)``."""
    vals = np.frombuffer(raw, dtype=col.base)
    if col.comp is not None:
        out[col.field][pos : pos + count, col.comp] = vals
    elif col.shape:
        out[col.field][pos : pos + count] = vals.reshape((count,) + col.shape)
    else:
        out[col.field][pos : pos + count] = vals


def encode_columnar_payload(
    batch: ParticleBatch, chunk_entry: list, codec_name: str
) -> tuple[bytes, list]:
    """Transpose ``batch`` into the v4 encoded payload.

    ``chunk_entry`` is the (five-element) JSON chunk list from
    :func:`repro.format.chunks.build_chunk_entry`.  Returns the stored
    payload bytes and, per chunk, the segment descriptor list
    ``[[offset, encoded_length, crc32], ...]`` in canonical column order
    (offsets relative to the payload start).
    """
    codec = get_codec(codec_name)
    cols = columnar_columns(batch.dtype)
    rowsv = batch.data
    parts: list[bytes] = []
    seg_lists: list[list] = []
    off = 0
    for start, count, *_rest in chunk_entry:
        rows = rowsv[int(start) : int(start) + int(count)]
        segs: list = []
        for col in cols:
            enc = codec.encode(_column_bytes(rows, col), col.itemsize)
            segs.append([off, len(enc), zlib.crc32(enc)])
            parts.append(enc)
            off += len(enc)
        seg_lists.append(segs)
    return b"".join(parts), seg_lists


def columnar_payload_length(chunks: tuple) -> int:
    """Stored payload byte length implied by a segment-bearing chunk list."""
    end = 0
    for chunk in chunks:
        if len(chunk) < 6:
            raise DataFileError("chunk entry carries no column segments")
        for off, ln, _crc in chunk[5]:
            end = max(end, int(off) + int(ln))
    return end


def decode_columnar_payload(
    payload: bytes,
    chunks: tuple,
    codec_name: str,
    dtype: np.dtype,
    path: str,
) -> np.ndarray:
    """Decode a full v4 payload back into logical row records.

    ``chunks`` is the canonical segment-bearing chunk tuple (from a trailer
    or manifest entry).  Every segment's CRC32 is verified before decode;
    a mismatch raises :class:`~repro.errors.DataChecksumError` naming the
    chunk and column.
    """
    cols = columnar_columns(dtype)
    total = sum(int(c[1]) for c in chunks)
    out = np.empty(total, dtype=dtype)
    for ci, chunk in enumerate(chunks):
        start, count = int(chunk[0]), int(chunk[1])
        if len(chunk) < 6 or len(chunk[5]) != len(cols):
            raise DataFileError(
                f"{path}: chunk {ci} lacks segment descriptors for "
                f"{len(cols)} columns"
            )
        for col, (off, ln, crc) in zip(cols, chunk[5]):
            off, ln = int(off), int(ln)
            enc = payload[off : off + ln]
            if len(enc) != ln:
                raise DataFileError(
                    f"{path}: chunk {ci} column {col.name!r} segment "
                    f"[{off}, {off + ln}) exceeds payload ({len(payload)} bytes)"
                )
            actual = zlib.crc32(enc)
            if actual != int(crc):
                raise DataChecksumError(
                    f"{path}: chunk {ci} column {col.name!r} segment CRC32 "
                    f"mismatch — stored {int(crc):#010x}, computed {actual:#010x}"
                )
            raw = get_codec(codec_name).decode(
                enc, col.itemsize, count * col.nbytes
            )
            _column_scatter(out, start, count, col, raw)
    return out


def scan_columnar_segments(
    raw: bytes, chunks: tuple, dtype: np.dtype
) -> list[tuple[int, str, str]]:
    """CRC-verify every column segment of a v4 file image.

    Returns one ``(chunk, column-name, detail)`` triple per failing segment
    (bad extent or CRC32 mismatch) — empty when the stored payload is
    intact.  Unlike :func:`decode_columnar_payload` this keeps going after
    a failure, so a scrub can pinpoint *all* damaged segments in one pass.
    """
    cols = columnar_columns(dtype)
    bad: list[tuple[int, str, str]] = []
    for ci, chunk in enumerate(chunks):
        if len(chunk) < 6 or len(chunk[5]) != len(cols):
            bad.append(
                (
                    ci,
                    "*",
                    f"chunk {ci} lacks segment descriptors for "
                    f"{len(cols)} columns",
                )
            )
            continue
        for col, (off, ln, crc) in zip(cols, chunk[5]):
            off, ln = int(off), int(ln)
            seg = raw[HEADER_BYTES + off : HEADER_BYTES + off + ln]
            if len(seg) != ln:
                bad.append(
                    (
                        ci,
                        col.name,
                        f"chunk {ci} column {col.name!r} segment "
                        f"[{off}, {off + ln}) exceeds the file",
                    )
                )
                continue
            actual = zlib.crc32(seg)
            if actual != int(crc):
                bad.append(
                    (
                        ci,
                        col.name,
                        f"chunk {ci} column {col.name!r} segment CRC32 "
                        f"mismatch — stored {int(crc):#010x}, "
                        f"computed {actual:#010x}",
                    )
                )
    return bad


def _read_columnar_image(
    raw: bytes, path: str, dtype: np.dtype, count: int
) -> ParticleBatch:
    """Decode a complete v4 file image (the read_data_file slow path)."""
    trailer = extract_recovery_trailer(raw, path)
    if count and not trailer.chunks:
        raise DataFileError(
            f"{path}: columnar file trailer carries no chunk index"
        )
    enc_len = columnar_payload_length(trailer.chunks) if trailer.chunks else 0
    expected = HEADER_BYTES + enc_len + FOOTER_BYTES
    if len(raw) < expected:
        raise DataFileError(
            f"{path}: expected {expected} bytes for {count} particles, "
            f"found {len(raw)}"
        )
    verify_data_footer(raw[:expected], path)
    arr = decode_columnar_payload(
        raw[HEADER_BYTES : HEADER_BYTES + enc_len],
        trailer.chunks,
        trailer.codec or "none",
        dtype,
        path,
    )
    if len(arr) != count:
        raise DataFileError(
            f"{path}: chunk index covers {len(arr)} particles, "
            f"header says {count}"
        )
    return ParticleBatch(arr)


def read_columnar_runs_into(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    index,
    runs,
    out: np.ndarray,
    actor: int = -1,
    strict: bool = True,
    skipped: list | None = None,
    decode_stats: dict | None = None,
) -> int:
    """Projected scatter-gather read of a columnar (v4) file.

    The v4 counterpart of :func:`read_particle_runs_into`: ``runs`` are
    chunk-aligned ``(start, count)`` particle runs, ``index`` the file's
    :class:`~repro.format.chunks.FileChunkIndex` carrying segment
    descriptors and the codec name, and ``out`` a structured destination
    whose fields select which columns are fetched (*attribute projection* —
    only the segments of fields present in ``out.dtype`` are read at all).
    ``dtype`` is the file's full logical dtype (the header guard).

    Header plus every needed segment arrive in one :meth:`FileBackend.readv`
    (a single open), and file-adjacent segments are **coalesced** first:
    the needed segments of a contiguous chunk run form one extent on disk
    (the writer lays a chunk's columns out back-to-back), so a whole run
    arrives as a single ``readv`` segment into one buffer — per-segment
    views are sliced out of it zero-copy for CRC and decode.  Each segment
    is CRC32-verified and decoded here, in the caller's thread — the reader
    submits this function as an executor task, which is what moves decode
    work off the submitting thread.  ``decode_stats`` (if given) receives
    ``vectorized_runs`` (coalesced extents read) and ``bytes`` (encoded
    bytes fetched) — the ``decode.*`` obs counters.  (Named to avoid the
    ``stats`` kwarg :meth:`~repro.io.retry.RetryPolicy.call` consumes when
    this function runs under a retry policy.)

    With ``strict=False`` a segment that fails its CRC (or decode) drops
    only its *chunk*: surviving chunks pack to the front of ``out`` and the
    damaged ones are appended to ``skipped`` as ``(chunk, column, detail)``.
    Returns the number of particles delivered.
    """
    if skipped is not None:
        skipped.clear()
    if index.segments is None or index.codec is None:
        raise DataFileError(f"{path}: chunk index carries no column segments")
    codec = get_codec(index.codec)
    cols = columnar_columns(dtype)
    fields = {col.field for col in cols}
    names = out.dtype.names or ()
    for name in names:
        if name not in fields:
            raise DataFileError(
                f"{path}: projected field {name!r} is not in the file dtype"
            )
    need = [j for j, col in enumerate(cols) if col.field in names]
    starts, counts = index.starts, index.counts
    sel: list[int] = []
    for rstart, rcount in runs:
        rstart, rcount = int(rstart), int(rcount)
        if rcount <= 0:
            continue
        i = int(np.searchsorted(starts, rstart))
        at = rstart
        while at < rstart + rcount:
            if i >= len(starts) or int(starts[i]) != at:
                raise DataFileError(
                    f"{path}: run [{rstart}, {rstart + rcount}) is not "
                    "aligned to chunk boundaries"
                )
            sel.append(i)
            at += int(counts[i])
            i += 1
        if at != rstart + rcount:
            raise DataFileError(
                f"{path}: run [{rstart}, {rstart + rcount}) is not "
                "aligned to chunk boundaries"
            )
    expected = sum(int(counts[i]) for i in sel)
    if expected != len(out):
        raise DataFileError(
            f"{path}: runs cover {expected} particles, destination holds "
            f"{len(out)}"
        )
    header = bytearray(HEADER_BYTES)
    # Coalesce file-adjacent segments into single extents: one buffer (and
    # one readv segment) per contiguous byte range, with per-segment
    # memoryviews sliced out of it — zero-copy, and the backend sees whole
    # chunk runs instead of per-column fragments.
    wanted: list[tuple[int, int, tuple[int, int]]] = []
    for ci in sel:
        segs = index.segments[ci]
        if len(segs) != len(cols):
            raise DataFileError(
                f"{path}: chunk {ci} has {len(segs)} segments for "
                f"{len(cols)} columns"
            )
        for j in need:
            off, ln, _crc = segs[j]
            wanted.append((int(off), int(ln), (ci, j)))
    groups: list[tuple[int, int, list[tuple[int, int, tuple[int, int]]]]] = []
    for off, ln, key in wanted:
        if groups and groups[-1][0] + groups[-1][1] == off:
            start, length, members = groups.pop()
            groups.append((start, length + ln, members + [(off, ln, key)]))
        else:
            groups.append((off, ln, [(off, ln, key)]))
    segments: list = [(0, header)]
    bufs: dict[tuple[int, int], memoryview] = {}
    for start, length, members in groups:
        group_buf = memoryview(bytearray(length))
        segments.append((HEADER_BYTES + start, group_buf))
        for off, ln, key in members:
            bufs[key] = group_buf[off - start : off - start + ln]
    backend.readv(path, segments, actor=actor)
    if decode_stats is not None:
        decode_stats["vectorized_runs"] = (
            decode_stats.get("vectorized_runs", 0) + len(groups)
        )
        decode_stats["bytes"] = (
            decode_stats.get("bytes", 0)
            + sum(length for _s, length, _m in groups)
        )
    version, total = _parse_header(bytes(header), path, dtype)
    if version < DATA_VERSION_COLUMNAR:
        raise DataFileError(
            f"{path}: expected a columnar (v4) file, found version {version}"
        )
    if total != index.total_particles:
        raise DataFileError(
            f"{path}: chunk index covers {index.total_particles} particles, "
            f"header says {total}"
        )
    pos = 0
    for ci in sel:
        count = int(counts[ci])
        segs = index.segments[ci]
        decoded: dict[int, bytes] = {}
        bad: tuple[str, str] | None = None
        for j in need:
            col = cols[j]
            off, ln, crc = segs[j]
            enc = bufs[(ci, j)]
            actual = zlib.crc32(enc)
            if actual != int(crc):
                detail = (
                    f"chunk {ci} column {col.name!r} segment CRC32 mismatch "
                    f"— stored {int(crc):#010x}, computed {actual:#010x}"
                )
                if strict:
                    raise DataChecksumError(f"{path}: {detail}")
                bad = (col.name, detail)
                break
            try:
                decoded[j] = codec.decode(enc, col.itemsize, count * col.nbytes)
            except DataFileError as exc:
                if strict:
                    raise
                bad = (col.name, f"chunk {ci} column {col.name!r}: {exc}")
                break
        if bad is not None:
            if skipped is not None:
                skipped.append((ci, bad[0], bad[1]))
            continue
        for j in need:
            _column_scatter(out, pos, count, cols[j], decoded[j])
        pos += count
    return pos


# -- prefix checksums ----------------------------------------------------------


def prefix_checksum_boundaries(count: int, base: int, scale: int) -> list[int]:
    """Particle counts at which prefix checksums are recorded.

    Boundaries follow the per-file LOD ladder for a single reader: level
    ``l`` contributes ``base * scale**l`` records, so boundaries are the
    cumulative level counts clipped to the file's total.  The last boundary
    always equals ``count`` (for non-empty files), so the full payload is
    always covered.
    """
    if count < 0:
        raise DataFileError(f"negative particle count {count}")
    bounds: list[int] = []
    cum, size = 0, base
    while cum < count:
        cum = min(count, cum + size)
        bounds.append(cum)
        size *= scale
    return bounds


def payload_prefix_checksums(
    payload: bytes, itemsize: int, boundaries: list[int]
) -> list[tuple[int, int]]:
    """``(count, CRC32 of payload[:count*itemsize])`` per boundary.

    Computed incrementally — one pass over the payload regardless of how
    many boundaries there are.
    """
    out: list[tuple[int, int]] = []
    crc, pos = 0, 0
    for b in boundaries:
        end = b * itemsize
        if end > len(payload):
            raise DataFileError(
                f"checksum boundary {b} exceeds payload "
                f"({len(payload) // max(itemsize, 1)} records)"
            )
        crc = zlib.crc32(payload[pos:end], crc)
        pos = end
        out.append((b, crc))
    return out


def compute_file_checksums(batch: ParticleBatch, base: int, scale: int) -> dict:
    """The manifest checksum entry for one data file's payload.

    ``payload_crc32`` covers the full payload (records only, no header);
    ``prefixes`` holds ``[count, crc32]`` pairs at the per-file LOD
    boundaries of :func:`prefix_checksum_boundaries`.
    """
    payload = batch.tobytes()
    boundaries = prefix_checksum_boundaries(len(batch), base, scale)
    prefixes = payload_prefix_checksums(payload, batch.dtype.itemsize, boundaries)
    return {
        "payload_crc32": zlib.crc32(payload),
        "prefixes": [[c, crc] for c, crc in prefixes],
    }
