"""Particle data files.

Each aggregator writes one data file holding its LOD-ordered particles.  The
layout (format version 2) is a small fixed header, the raw little-endian
structured records, and a CRC32 footer::

    offset  size  field
    0       8     magic  b"SPIODATA"
    8       4     format version (u32, currently 2)
    12      4     record size in bytes (u32)  — guards dtype mismatches
    16      8     particle count (u64)
    24      ...   particle records
    -8      4     footer magic b"FCRC"
    -4      4     CRC32 of header + records (u32)

Version-1 files (no footer) remain fully readable; they simply carry no
whole-file checksum, so corruption in them is only caught by the structural
checks (magic, version, record size, byte length).

The header stores only the record *size*; the full dtype lives in the
dataset manifest.  Keeping it in both places lets a reader detect a manifest
/ data-file mismatch without decoding garbage.

Besides the footer, the writer records **per-LOD-level prefix checksums** in
the manifest (see :func:`compute_file_checksums`): CRC32s of the payload up
to each per-file level boundary.  Prefix reads — which never see the footer
— verify against these when the requested count lands on a boundary, and the
scrubber verifies all of them.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import DataChecksumError, DataFileError
from repro.io.backend import FileBackend
from repro.particles.batch import ParticleBatch

DATA_MAGIC = b"SPIODATA"
DATA_VERSION = 2
_HEADER = struct.Struct("<8sIIQ")
HEADER_BYTES = _HEADER.size

FOOTER_MAGIC = b"FCRC"
_FOOTER = struct.Struct("<4sI")
FOOTER_BYTES = _FOOTER.size

#: Versions this reader understands.
SUPPORTED_DATA_VERSIONS = (1, 2)


def data_file_name(agg_rank: int) -> str:
    """Data files are named from the aggregator's rank, as in Fig. 4
    ("Agg rank is used to derive the name of the data file")."""
    if agg_rank < 0:
        raise DataFileError(f"aggregator rank must be >= 0, got {agg_rank}")
    return f"data/file_{agg_rank}.pbin"


def write_data_file(
    backend: FileBackend, path: str, batch: ParticleBatch, actor: int = -1
) -> int:
    """Write ``batch`` (already LOD-ordered) to ``path``; returns bytes written."""
    payload = batch.tobytes()
    header = _HEADER.pack(
        DATA_MAGIC, DATA_VERSION, batch.dtype.itemsize, len(batch)
    )
    footer = _FOOTER.pack(FOOTER_MAGIC, zlib.crc32(payload, zlib.crc32(header)))
    blob = header + payload + footer
    backend.write_file(path, blob, actor=actor)
    return len(blob)


def _parse_header(raw: bytes, path: str, dtype: np.dtype) -> tuple[int, int]:
    """Validate the fixed header; returns ``(version, particle_count)``."""
    if len(raw) < HEADER_BYTES:
        raise DataFileError(f"{path}: truncated header ({len(raw)} bytes)")
    magic, version, rec_size, count = _HEADER.unpack_from(raw)
    if magic != DATA_MAGIC:
        raise DataFileError(f"{path}: bad magic {magic!r}")
    if version not in SUPPORTED_DATA_VERSIONS:
        raise DataFileError(f"{path}: unsupported version {version}")
    if rec_size != dtype.itemsize:
        raise DataFileError(
            f"{path}: record size {rec_size} does not match dtype itemsize "
            f"{dtype.itemsize} — manifest and data file disagree"
        )
    return int(version), int(count)


def _verify_footer(raw: bytes, path: str) -> None:
    """Check the v2 CRC footer of a complete file image."""
    body, footer = raw[:-FOOTER_BYTES], raw[-FOOTER_BYTES:]
    magic, stored = _FOOTER.unpack(footer)
    if magic != FOOTER_MAGIC:
        raise DataChecksumError(f"{path}: bad footer magic {magic!r}")
    actual = zlib.crc32(body)
    if actual != stored:
        raise DataChecksumError(
            f"{path}: CRC32 mismatch — stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )


def read_data_file(
    backend: FileBackend, path: str, dtype: np.dtype, actor: int = -1
) -> ParticleBatch:
    """Read every particle in ``path``, verifying the checksum footer (v2)."""
    raw = backend.read_file(path, actor=actor)
    version, count = _parse_header(raw, path, dtype)
    footer = FOOTER_BYTES if version >= 2 else 0
    expected = HEADER_BYTES + count * dtype.itemsize + footer
    if len(raw) != expected:
        raise DataFileError(
            f"{path}: expected {expected} bytes for {count} particles, "
            f"found {len(raw)}"
        )
    if version >= 2:
        _verify_footer(raw, path)
    return ParticleBatch.frombuffer(raw[HEADER_BYTES : expected - footer], dtype)


def read_data_prefix(
    backend: FileBackend,
    path: str,
    dtype: np.dtype,
    count: int,
    offset_particles: int = 0,
    actor: int = -1,
) -> ParticleBatch:
    """Read ``count`` particles starting at ``offset_particles``.

    This is the LOD read primitive: because files are written in level-of-
    detail order, a prefix *is* a coarse representation, and progressive
    refinement reads the next slice without re-reading the previous one.

    Ranged reads never touch the file footer, so they carry no whole-file
    verification; callers holding the manifest's prefix checksums can verify
    boundary-aligned prefixes (see :meth:`SpatialReader.execute`).
    """
    if count < 0 or offset_particles < 0:
        raise DataFileError(
            f"negative count/offset ({count}, {offset_particles}) for {path}"
        )
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    _version, total = _parse_header(header, path, dtype)
    if offset_particles + count > total:
        raise DataFileError(
            f"{path}: slice [{offset_particles}, {offset_particles + count}) "
            f"exceeds particle count {total}"
        )
    if count == 0:
        return ParticleBatch(np.empty(0, dtype=dtype))
    start = HEADER_BYTES + offset_particles * dtype.itemsize
    raw = backend.read_range(path, start, count * dtype.itemsize, actor=actor)
    return ParticleBatch.frombuffer(raw, dtype)


def peek_particle_count(backend: FileBackend, path: str, actor: int = -1) -> int:
    """Particle count from the header alone (no payload read)."""
    header = backend.read_range(path, 0, HEADER_BYTES, actor=actor)
    if len(header) < HEADER_BYTES or header[:8] != DATA_MAGIC:
        raise DataFileError(f"{path}: not a particle data file")
    _, _, _, count = _HEADER.unpack_from(header)
    return int(count)


# -- prefix checksums ----------------------------------------------------------


def prefix_checksum_boundaries(count: int, base: int, scale: int) -> list[int]:
    """Particle counts at which prefix checksums are recorded.

    Boundaries follow the per-file LOD ladder for a single reader: level
    ``l`` contributes ``base * scale**l`` records, so boundaries are the
    cumulative level counts clipped to the file's total.  The last boundary
    always equals ``count`` (for non-empty files), so the full payload is
    always covered.
    """
    if count < 0:
        raise DataFileError(f"negative particle count {count}")
    bounds: list[int] = []
    cum, size = 0, base
    while cum < count:
        cum = min(count, cum + size)
        bounds.append(cum)
        size *= scale
    return bounds


def payload_prefix_checksums(
    payload: bytes, itemsize: int, boundaries: list[int]
) -> list[tuple[int, int]]:
    """``(count, CRC32 of payload[:count*itemsize])`` per boundary.

    Computed incrementally — one pass over the payload regardless of how
    many boundaries there are.
    """
    out: list[tuple[int, int]] = []
    crc, pos = 0, 0
    for b in boundaries:
        end = b * itemsize
        if end > len(payload):
            raise DataFileError(
                f"checksum boundary {b} exceeds payload "
                f"({len(payload) // max(itemsize, 1)} records)"
            )
        crc = zlib.crc32(payload[pos:end], crc)
        pos = end
        out.append((b, crc))
    return out


def compute_file_checksums(batch: ParticleBatch, base: int, scale: int) -> dict:
    """The manifest checksum entry for one data file's payload.

    ``payload_crc32`` covers the full payload (records only, no header);
    ``prefixes`` holds ``[count, crc32]`` pairs at the per-file LOD
    boundaries of :func:`prefix_checksum_boundaries`.
    """
    payload = batch.tobytes()
    boundaries = prefix_checksum_boundaries(len(batch), base, scale)
    prefixes = payload_prefix_checksums(payload, batch.dtype.itemsize, boundaries)
    return {
        "payload_crc32": zlib.crc32(payload),
        "prefixes": [[c, crc] for c, crc in prefixes],
    }
