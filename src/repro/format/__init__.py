"""On-disk format: data files, spatial metadata table, dataset manifest.

A dataset written by the spatially-aware writer is a directory::

    <dataset>/
        manifest.json     # schema, LOD parameters, writer configuration
        spatial.meta      # binary Fig.-4 table: per-file bounding boxes
        data/
            file_<rank>.pbin   # LOD-ordered particle records, one per aggregator

The spatial metadata table is the paper's Figure 4 structure — box id,
aggregator rank (from which the data file name derives), low corner, high
corner — extended with the per-file particle count (needed by LOD prefix
reads) and the optional per-file attribute min/max index the paper lists as
planned future work (§3.5), which powers range-query file pruning.
"""

from repro.format.datafile import (
    DATA_MAGIC,
    DATA_VERSION,
    RecoveryTrailer,
    compute_file_checksums,
    data_file_name,
    prefix_checksum_boundaries,
    read_data_file,
    read_data_prefix,
    read_recovery_trailer,
    write_data_file,
)
from repro.format.metadata import (
    META_MAGIC,
    META_VERSION,
    MetadataRecord,
    SpatialMetadata,
    record_from_trailer,
    trailer_for_record,
)
from repro.format.manifest import Manifest

__all__ = [
    "DATA_MAGIC",
    "DATA_VERSION",
    "META_MAGIC",
    "META_VERSION",
    "RecoveryTrailer",
    "data_file_name",
    "write_data_file",
    "read_data_file",
    "read_data_prefix",
    "read_recovery_trailer",
    "compute_file_checksums",
    "prefix_checksum_boundaries",
    "MetadataRecord",
    "SpatialMetadata",
    "record_from_trailer",
    "trailer_for_record",
    "Manifest",
]
