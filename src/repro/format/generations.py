"""The manifest generation chain: MVCC over atomic commit markers.

A dataset that has only ever been written once keeps the classic layout —
``manifest.json`` is the commit marker, ``spatial.meta`` the table.  The
first *append* or *compaction* turns the manifest into a generation chain:

* generation ``N`` commits as ``manifest.gen-N.json`` (carrying its
  generation number, parent, and the full file/chunk inventory) plus
  ``spatial.gen-N.meta``;
* new data files are namespaced per generation (``data/gN_file_R.pbin``),
  so no committed byte is ever overwritten in place;
* a tiny checksummed ``CURRENT`` pointer names the committed generation —
  flipping it *is* the commit.

Readers resolve ``CURRENT`` once at open and pin that generation: a writer
appending generation ``N+1`` touches only new paths, so every in-flight
query against generation ``N`` stays bit-identical.  Recovery is equally
simple: a valid ``CURRENT`` wins; a damaged or dangling one falls back to
the newest generation that still fully verifies (manifest parses, table
checksums, every referenced data file present) — the outcome after a crash
is always exactly generation ``N`` or ``N+1``, never a torn mix.

``CURRENT`` byte layout (a single ASCII line, documented in FORMAT.md)::

    spio-current <format-version> <generation> <crc32-of-prefix-hex>\\n
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass

from repro.errors import BackendError, FormatError
from repro.format.manifest import MANIFEST_PATH, Manifest
from repro.format.metadata import META_PATH, SpatialMetadata
from repro.io.backend import FileBackend

__all__ = [
    "CURRENT_PATH",
    "CURRENT_VERSION",
    "ResolvedGeneration",
    "decode_current",
    "encode_current",
    "generation_manifest_path",
    "generation_meta_path",
    "list_generations",
    "load_generation",
    "parse_generation_path",
    "read_current",
    "resolve_generation",
    "verify_generation",
    "write_current",
]

#: The generation pointer file (dataset root).  Written last; flipping it is
#: the commit point of every append/compaction.
CURRENT_PATH = "CURRENT"
CURRENT_MAGIC = "spio-current"
CURRENT_VERSION = 1

_GEN_MANIFEST_RE = re.compile(r"manifest\.gen-([1-9]\d*)\.json")
_GEN_META_RE = re.compile(r"spatial\.gen-([1-9]\d*)\.meta")


def generation_manifest_path(gen: int) -> str:
    """Manifest path for one generation (gen 0 keeps the classic name)."""
    if gen < 0:
        raise FormatError(f"generation must be >= 0, got {gen}")
    return MANIFEST_PATH if gen == 0 else f"manifest.gen-{gen}.json"


def generation_meta_path(gen: int) -> str:
    """Spatial-table path for one generation (gen 0 keeps the classic name)."""
    if gen < 0:
        raise FormatError(f"generation must be >= 0, got {gen}")
    return META_PATH if gen == 0 else f"spatial.gen-{gen}.meta"


def parse_generation_path(name: str) -> tuple[str, int] | None:
    """``("manifest" | "meta", gen)`` for a chained file name, else None."""
    m = _GEN_MANIFEST_RE.fullmatch(name)
    if m:
        return ("manifest", int(m.group(1)))
    m = _GEN_META_RE.fullmatch(name)
    if m:
        return ("meta", int(m.group(1)))
    return None


# -- the CURRENT pointer -------------------------------------------------------


def encode_current(gen: int) -> bytes:
    """Serialise the pointer: one checksummed ASCII line (see module doc)."""
    if gen < 0:
        raise FormatError(f"generation must be >= 0, got {gen}")
    prefix = f"{CURRENT_MAGIC} {CURRENT_VERSION} {int(gen)}"
    return f"{prefix} {zlib.crc32(prefix.encode('ascii')):08x}\n".encode("ascii")


def decode_current(raw: bytes) -> int:
    """Parse and verify a ``CURRENT`` image; raises FormatError on damage.

    The checksum covers the whole prefix, so a torn write, a flipped bit,
    or a wholesale swap for a different pointer all fail loudly — the
    reader then falls back to the newest verifiable generation.
    """
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError as exc:
        raise FormatError(f"CURRENT is not ASCII: {exc}") from exc
    parts = text.strip().split(" ")
    if len(parts) != 4 or parts[0] != CURRENT_MAGIC:
        raise FormatError(f"CURRENT is malformed: {text!r}")
    magic, version, gen, crc = parts
    if version != str(CURRENT_VERSION):
        raise FormatError(f"unsupported CURRENT version {version!r}")
    prefix = f"{magic} {version} {gen}"
    try:
        stored = int(crc, 16)
    except ValueError as exc:
        raise FormatError(f"CURRENT checksum is not hex: {crc!r}") from exc
    actual = zlib.crc32(prefix.encode("ascii"))
    if actual != stored:
        raise FormatError(
            f"CURRENT checksum mismatch — stored {stored:#010x}, "
            f"computed {actual:#010x}"
        )
    value = int(gen)
    if value < 0:
        raise FormatError(f"CURRENT names a negative generation {value}")
    return value


def read_current(backend: FileBackend, actor: int = -1) -> int | None:
    """The committed generation, ``None`` when no pointer exists (classic
    single-manifest dataset), FormatError when the pointer is damaged."""
    if not backend.exists(CURRENT_PATH):
        return None
    try:
        raw = backend.read_file(CURRENT_PATH, actor=actor)
    except BackendError as exc:
        raise FormatError(f"cannot read CURRENT: {exc}") from exc
    return decode_current(bytes(raw))


def write_current(backend: FileBackend, gen: int, actor: int = -1) -> None:
    backend.write_file(CURRENT_PATH, encode_current(gen), actor=actor)


# -- chain inspection ----------------------------------------------------------


def list_generations(backend: FileBackend) -> list[int]:
    """Every generation with a manifest on disk, ascending (0 = classic)."""
    try:
        names = backend.listdir("")
    except BackendError:
        names = []
    gens: set[int] = set()
    for name in names:
        if name == MANIFEST_PATH:
            gens.add(0)
            continue
        parsed = parse_generation_path(name)
        if parsed is not None and parsed[0] == "manifest":
            gens.add(parsed[1])
    return sorted(gens)


def load_generation(
    backend: FileBackend, gen: int, actor: int = -1
) -> tuple[Manifest, SpatialMetadata]:
    """Read one generation's manifest + table (format validation included)."""
    manifest = Manifest.read(backend, generation_manifest_path(gen), actor=actor)
    metadata = SpatialMetadata.read(backend, generation_meta_path(gen), actor=actor)
    return manifest, metadata


def verify_generation(backend: FileBackend, gen: int, actor: int = -1) -> bool:
    """Whether generation ``gen`` fully verifies: manifest parses, the table
    parses with a matching CRC, and every referenced data file exists.

    This is the fallback probe — deliberately structural (no payload reads)
    so recovery after a torn ``CURRENT`` stays cheap; deep verification is
    the scrubber's job.
    """
    try:
        manifest = Manifest.read(backend, generation_manifest_path(gen), actor=actor)
        raw = bytes(backend.read_file(generation_meta_path(gen), actor=actor))
        metadata = SpatialMetadata.from_bytes(raw)
    except (FormatError, BackendError):
        return False
    if (
        manifest.spatial_meta_crc32 is not None
        and zlib.crc32(raw) != manifest.spatial_meta_crc32
    ):
        return False
    if manifest.num_files != len(metadata.records):
        return False
    try:
        return all(backend.exists(rec.file_path) for rec in metadata.records)
    except BackendError:
        return False


# -- resolution ----------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedGeneration:
    """Which generation a reader (or repair pass) operates on, and why."""

    generation: int
    #: True when the caller pinned this generation explicitly.
    pinned: bool = False
    #: True when ``CURRENT`` was damaged/dangling and resolution fell back
    #: to the newest fully-verifiable generation.
    fallback: bool = False
    detail: str = ""

    @property
    def manifest_path(self) -> str:
        return generation_manifest_path(self.generation)

    @property
    def meta_path(self) -> str:
        return generation_meta_path(self.generation)


def _fallback(backend: FileBackend, reason: str, actor: int) -> ResolvedGeneration:
    for gen in reversed(list_generations(backend)):
        if verify_generation(backend, gen, actor=actor):
            return ResolvedGeneration(gen, fallback=True, detail=reason)
    raise FormatError(
        f"cannot resolve dataset generation ({reason}) and no generation "
        "on disk fully verifies — run `repro repair`"
    )


def resolve_generation(
    backend: FileBackend, pin: int | None = None, actor: int = -1
) -> ResolvedGeneration:
    """Decide which generation to read.

    * an explicit ``pin`` always wins (snapshot reads);
    * a valid ``CURRENT`` naming a parseable manifest wins next;
    * otherwise (damaged pointer, pointer gone while chained manifests
      remain, pointer naming a generation whose manifest is unreadable)
      fall back to the newest generation that fully verifies;
    * no pointer and no chain means the classic single-manifest layout.
    """
    if pin is not None:
        if pin < 0:
            raise FormatError(f"generation must be >= 0, got {pin}")
        return ResolvedGeneration(pin, pinned=True)
    try:
        current = read_current(backend, actor=actor)
    except FormatError as exc:
        return _fallback(backend, f"CURRENT is damaged: {exc}", actor)
    if current is None:
        if any(g > 0 for g in list_generations(backend)):
            return _fallback(
                backend, "CURRENT is missing but generation manifests exist", actor
            )
        return ResolvedGeneration(0)
    try:
        Manifest.read(backend, generation_manifest_path(current), actor=actor)
    except FormatError as exc:
        return _fallback(
            backend,
            f"CURRENT names generation {current} but its manifest is "
            f"unusable: {exc}",
            actor,
        )
    return ResolvedGeneration(current)
