"""The binary spatial metadata table (paper Fig. 4, plus extensions).

Rank 0 writes one ``spatial.meta`` file per dataset.  Each record describes
one data file: the id of its aggregation box, the aggregator rank (the data
file name derives from it), and the bounding box of the particles inside.
The boxes are unique and non-overlapping by construction of the aggregation
grid — a reader answering a box query intersects its query against this
table and opens only the matching files.

Extensions over the paper's figure, both backwards-compatible:

* per-record particle count — required to compute LOD prefix lengths, and a
  cheap integrity check;
* optional per-record, per-attribute (min, max) pairs — the future-work
  index of §3.5 used by attribute-range queries to prune files.

Layout (little-endian)::

    header:  magic "SPIOMETA" | u32 version | u32 num_records
             u32 num_attrs | u32 reserved
             num_attrs x (u32 name_len | name utf-8)
    records: u64 box_id | u64 agg_rank | [u64 gen (version >= 4)]
             u64 particle_count | f64 lo[3] | f64 hi[3]
             num_attrs x (f64 min | f64 max)
    footer:  magic "MCRC" | u32 CRC32 of header + records   (version >= 3)

Version 2 tables (no footer) remain readable; version 3 adds the
whole-table checksum so a flipped bit in any record is detected before a
reader prunes files against garbage bounds.  Version 4 adds the per-record
``gen`` field for generation-chained datasets (append/compaction): records
from different generations may cover overlapping regions and reuse
aggregator ranks, so uniqueness is keyed on ``(gen, agg_rank)`` and the
disjoint-bounds invariant holds per generation.  A table whose records are
all generation 0 still serialises as version 3, byte-identical to
pre-generation output.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.domain.box import Box
from repro.errors import MetadataChecksumError, MetadataError
from repro.format.chunks import chunks_from_entry
from repro.format.datafile import RecoveryTrailer, data_file_name
from repro.io.backend import FileBackend

META_MAGIC = b"SPIOMETA"
META_VERSION = 3
#: Version written when any record belongs to a generation > 0.
META_VERSION_GEN = 4
META_PATH = "spatial.meta"

#: Versions this reader understands (2 = pre-checksum legacy).
SUPPORTED_META_VERSIONS = (2, 3, 4)

_HEADER = struct.Struct("<8sIIII")
_RECORD_FIXED = struct.Struct("<QQQ6d")
_RECORD_FIXED_GEN = struct.Struct("<QQQQ6d")
_META_FOOTER = struct.Struct("<4sI")
META_FOOTER_MAGIC = b"MCRC"


@dataclass
class MetadataRecord:
    """One data file's entry in the spatial metadata table."""

    box_id: int
    agg_rank: int
    particle_count: int
    bounds: Box
    attr_ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: Generation that wrote this record's data file (0 = classic layout).
    gen: int = 0

    @property
    def file_path(self) -> str:
        return data_file_name(self.agg_rank, self.gen)


def record_from_trailer(trailer: RecoveryTrailer) -> MetadataRecord:
    """Rebuild one table record from a data file's v3 recovery trailer.

    Exact inverse of :func:`trailer_for_record`: every field (including the
    f64 bounds and attribute ranges) round-trips bit-identically, so a
    table rebuilt from trailers serialises to the same bytes the writer
    originally produced.
    """
    return MetadataRecord(
        box_id=trailer.box_id,
        agg_rank=trailer.agg_rank,
        particle_count=trailer.particle_count,
        bounds=trailer.bounds,
        attr_ranges=trailer.attr_ranges_dict,
        gen=trailer.gen,
    )


def trailer_for_record(
    rec: MetadataRecord,
    *,
    dtype_descr: list,
    lod_base: int,
    lod_scale: int,
    lod_heuristic: str,
    lod_seed: int | None,
    payload_crc32: int,
    prefixes: list,
    chunks: list = (),
    codec: str | None = None,
) -> RecoveryTrailer:
    """Build the recovery trailer describing ``rec``'s data file.

    ``payload_crc32``/``prefixes`` are the manifest checksum entry for the
    file (``prefixes`` as ``[count, crc]`` pairs); the remaining facts are
    dataset-wide.  Used by the writer for fresh files and by the repair
    subsystem when it rewrites a file whose trailer was damaged.
    """
    return RecoveryTrailer(
        box_id=rec.box_id,
        agg_rank=rec.agg_rank,
        particle_count=rec.particle_count,
        bounds_lo=tuple(float(v) for v in rec.bounds.lo),
        bounds_hi=tuple(float(v) for v in rec.bounds.hi),
        attr_ranges=tuple(
            (name, float(lo), float(hi))
            for name, (lo, hi) in rec.attr_ranges.items()
        ),
        dtype_descr=dtype_descr,
        lod_base=lod_base,
        lod_scale=lod_scale,
        lod_heuristic=lod_heuristic,
        lod_seed=lod_seed,
        payload_crc32=int(payload_crc32),
        prefixes=tuple((int(c), int(crc)) for c, crc in prefixes),
        chunks=chunks_from_entry(chunks),
        gen=rec.gen,
        codec=codec,
    )


class SpatialMetadata:
    """The full table: an ordered list of records plus attribute names."""

    def __init__(self, records: list[MetadataRecord], attr_names: tuple[str, ...] = ()):
        self.records = list(records)
        self.attr_names = tuple(attr_names)
        #: Lazy structure-of-arrays ``(lo[N,3], hi[N,3])`` view of the record
        #: bounds, built on first spatial query so ``files_intersecting`` is
        #: one numpy broadcast instead of a Python loop over records.
        self._bounds_soa: tuple[np.ndarray, np.ndarray] | None = None
        self._validate()

    def _validate(self) -> None:
        seen_ids: set[int] = set()
        seen_files: set[tuple[int, int]] = set()
        for rec in self.records:
            if rec.box_id in seen_ids:
                raise MetadataError(f"duplicate box id {rec.box_id}")
            key = (rec.gen, rec.agg_rank)
            if key in seen_files:
                raise MetadataError(
                    f"duplicate aggregator rank {rec.agg_rank} in generation "
                    f"{rec.gen} — two records would map to the same data file"
                )
            seen_ids.add(rec.box_id)
            seen_files.add(key)
            missing = set(self.attr_names) - set(rec.attr_ranges)
            if missing:
                raise MetadataError(
                    f"record {rec.box_id} missing attr ranges for {sorted(missing)}"
                )
        # Pairwise overlap validation is quadratic; skip it for very large
        # tables (functional datasets have at most a few hundred files).
        # Disjointness only holds within one generation — appended
        # generations legitimately cover the same spatial region again.
        if len(self.records) > 2048:
            return
        for i, a in enumerate(self.records):
            for b in self.records[i + 1 :]:
                if a.gen == b.gen and a.bounds.intersects(b.bounds):
                    raise MetadataError(
                        f"bounding boxes of files {a.agg_rank} and {b.agg_rank} "
                        f"overlap ({a.bounds} vs {b.bounds}) — the aggregation "
                        "grid guarantees disjoint regions"
                    )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def total_particles(self) -> int:
        return sum(r.particle_count for r in self.records)

    def domain(self) -> Box:
        """Bounding box over all records (the populated domain)."""
        if not self.records:
            raise MetadataError("empty metadata table has no domain")
        return Box.bounding(r.bounds for r in self.records)

    # -- queries -----------------------------------------------------------

    def bounds_soa(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lo[N,3], hi[N,3])`` float64 arrays of all record bounds,
        built once and cached (record order preserved)."""
        if self._bounds_soa is None:
            n = len(self.records)
            lo = np.empty((n, 3), dtype=np.float64)
            hi = np.empty((n, 3), dtype=np.float64)
            for i, rec in enumerate(self.records):
                lo[i] = rec.bounds.lo
                hi[i] = rec.bounds.hi
            self._bounds_soa = (lo, hi)
        return self._bounds_soa

    def files_intersecting(self, box: Box) -> list[MetadataRecord]:
        """Records whose bounds overlap ``box`` — the read-side file pruner.

        One broadcast comparison against the cached SoA bounds; the open
        interval test matches :meth:`Box.intersects` exactly, so the result
        list is identical (order included) to filtering record-by-record.
        """
        if not self.records:
            return []
        lo, hi = self.bounds_soa()
        qlo = np.asarray(box.lo, dtype=np.float64)
        qhi = np.asarray(box.hi, dtype=np.float64)
        mask = (lo < qhi).all(axis=1) & (qlo < hi).all(axis=1)
        return [self.records[i] for i in np.flatnonzero(mask)]

    def files_in_attr_range(
        self, attr: str, lo: float, hi: float
    ) -> list[MetadataRecord]:
        """Records whose [min, max] for ``attr`` overlaps [lo, hi]."""
        if attr not in self.attr_names:
            raise MetadataError(
                f"attribute {attr!r} not indexed; table has {self.attr_names}"
            )
        out = []
        for rec in self.records:
            amin, amax = rec.attr_ranges[attr]
            if amax >= lo and amin <= hi:
                out.append(rec)
        return out

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        # An all-generation-0 table serialises as version 3, byte-identical
        # to pre-generation writers (repair rebuilds depend on that).
        version = META_VERSION_GEN if any(r.gen for r in self.records) else META_VERSION
        parts = [
            _HEADER.pack(
                META_MAGIC, version, len(self.records), len(self.attr_names), 0
            )
        ]
        for name in self.attr_names:
            encoded = name.encode("utf-8")
            parts.append(struct.pack("<I", len(encoded)))
            parts.append(encoded)
        for rec in self.records:
            if version >= 4:
                parts.append(
                    _RECORD_FIXED_GEN.pack(
                        rec.box_id,
                        rec.agg_rank,
                        rec.gen,
                        rec.particle_count,
                        *rec.bounds.lo,
                        *rec.bounds.hi,
                    )
                )
            else:
                parts.append(
                    _RECORD_FIXED.pack(
                        rec.box_id,
                        rec.agg_rank,
                        rec.particle_count,
                        *rec.bounds.lo,
                        *rec.bounds.hi,
                    )
                )
            for name in self.attr_names:
                amin, amax = rec.attr_ranges[name]
                parts.append(struct.pack("<2d", amin, amax))
        body = b"".join(parts)
        return body + _META_FOOTER.pack(META_FOOTER_MAGIC, zlib.crc32(body))

    def checksum(self) -> int:
        """CRC32 of the full serialised table (footer included).

        Recorded in the manifest so the scrubber can detect a
        ``spatial.meta`` that was swapped wholesale for a different (but
        internally consistent) table.
        """
        return zlib.crc32(self.to_bytes())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SpatialMetadata":
        if len(raw) < _HEADER.size:
            raise MetadataError(f"metadata truncated: {len(raw)} bytes")
        magic, version, num_records, num_attrs, _ = _HEADER.unpack_from(raw)
        if magic != META_MAGIC:
            raise MetadataError(f"bad metadata magic {magic!r}")
        if version not in SUPPORTED_META_VERSIONS:
            raise MetadataError(f"unsupported metadata version {version}")
        if version >= 3:
            if len(raw) < _HEADER.size + _META_FOOTER.size:
                raise MetadataError(f"metadata truncated: {len(raw)} bytes")
            fmagic, stored = _META_FOOTER.unpack(raw[-_META_FOOTER.size :])
            if fmagic != META_FOOTER_MAGIC:
                raise MetadataChecksumError(
                    f"bad metadata footer magic {fmagic!r}"
                )
            actual = zlib.crc32(raw[: -_META_FOOTER.size])
            if actual != stored:
                raise MetadataChecksumError(
                    f"metadata table CRC32 mismatch — stored {stored:#010x}, "
                    f"computed {actual:#010x}"
                )
            raw = raw[: -_META_FOOTER.size]
        pos = _HEADER.size
        names: list[str] = []
        for _ in range(num_attrs):
            if pos + 4 > len(raw):
                raise MetadataError("metadata truncated in attribute names")
            (name_len,) = struct.unpack_from("<I", raw, pos)
            pos += 4
            if pos + name_len > len(raw):
                raise MetadataError("metadata truncated in attribute names")
            names.append(raw[pos : pos + name_len].decode("utf-8"))
            pos += name_len
        records: list[MetadataRecord] = []
        rec_struct = _RECORD_FIXED_GEN if version >= 4 else _RECORD_FIXED
        rec_extra = 16 * num_attrs
        for i in range(num_records):
            if pos + rec_struct.size + rec_extra > len(raw):
                raise MetadataError(
                    f"metadata truncated at record {i}/{num_records}"
                )
            vals = rec_struct.unpack_from(raw, pos)
            pos += rec_struct.size
            if version >= 4:
                box_id, agg_rank, gen, count = vals[0], vals[1], vals[2], vals[3]
                bounds = Box(vals[4:7], vals[7:10])
            else:
                box_id, agg_rank, count = vals[0], vals[1], vals[2]
                gen = 0
                bounds = Box(vals[3:6], vals[6:9])
            ranges: dict[str, tuple[float, float]] = {}
            for name in names:
                amin, amax = struct.unpack_from("<2d", raw, pos)
                pos += 16
                ranges[name] = (amin, amax)
            records.append(
                MetadataRecord(
                    int(box_id), int(agg_rank), int(count), bounds, ranges,
                    gen=int(gen),
                )
            )
        if pos != len(raw):
            raise MetadataError(
                f"{len(raw) - pos} trailing bytes after {num_records} records"
            )
        return cls(records, tuple(names))

    def write(self, backend: FileBackend, path: str = META_PATH, actor: int = -1) -> None:
        backend.write_file(path, self.to_bytes(), actor=actor)

    @classmethod
    def read(
        cls, backend: FileBackend, path: str = META_PATH, actor: int = -1
    ) -> "SpatialMetadata":
        try:
            raw = backend.read_file(path, actor=actor)
        except Exception as exc:
            raise MetadataError(f"cannot read spatial metadata {path!r}: {exc}") from exc
        return cls.from_bytes(raw)
