"""Byte/time unit constants and human-readable formatting.

The paper reports decimal GB/s throughput (e.g. "98 GB/second"); file and
stripe sizes on Lustre/GPFS are binary (8 MiB stripes).  Both families are
provided and named unambiguously.
"""

from __future__ import annotations

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KIB = 2**10
MIB = 2**20
GIB = 2**30


def format_bytes(n: float) -> str:
    """Format a byte count with a decimal unit suffix (B, KB, MB, GB, TB)."""
    n = float(n)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def format_throughput(bytes_per_s: float) -> str:
    """Format a throughput as GB/s (decimal), the unit used in the paper."""
    return f"{bytes_per_s / GB:.2f} GB/s"


def format_seconds(t: float) -> str:
    """Format a duration, switching between s / ms / us as appropriate."""
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.2f} ms"
    return f"{t * 1e6:.1f} us"


def format_count(n: int) -> str:
    """Format large counts with K/M/B suffixes (262144 -> '256K')."""
    n = int(n)
    if n >= 10**9 and n % 10**9 == 0:
        return f"{n // 10**9}B"
    if n >= 2**30 and n % 2**30 == 0:
        return f"{n // 2**30}Gi"
    if n >= 10**6 and n % 10**6 == 0:
        return f"{n // 10**6}M"
    if n >= 2**20 and n % 2**20 == 0:
        return f"{n // 2**20}Mi"
    if n >= 2**10 and n % 2**10 == 0:
        return f"{n // 2**10}K"
    if n >= 10**3 and n % 10**3 == 0:
        return f"{n // 10**3}K"
    return str(n)
