"""Plain-text table rendering used by the benchmark harnesses.

Each benchmark that regenerates a paper figure prints its series as an ASCII
table so the "rows the paper reports" are visible in plain pytest output,
without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class Table:
    """A simple left/right-aligned ASCII table.

    >>> t = Table(["procs", "GB/s"])
    >>> t.add_row([512, 1.25])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    procs | GB/s
    ------+-----
      512 | 1.25
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(v: object) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000 or abs(v) < 0.01:
                return f"{v:.3g}"
            return f"{v:.2f}"
        return str(v)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(header.rstrip())
        lines.append(rule)
        for row in self.rows:
            cells = []
            for cell, w in zip(row, widths):
                # Right-align anything that parses as a number.
                try:
                    float(cell)
                    cells.append(cell.rjust(w))
                except ValueError:
                    cells.append(cell.ljust(w))
            lines.append(" | ".join(cells).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
