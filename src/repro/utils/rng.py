"""Deterministic random-number handling.

Everything stochastic in the library (particle generators, the LOD random
reshuffle) accepts a ``seed`` argument that may be ``None``, an ``int``, or a
:class:`numpy.random.Generator`.  These helpers normalise that argument and
derive independent child streams so that per-rank randomness is reproducible
regardless of rank execution order.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def resolve_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator for ``seed``.

    ``None`` gives a fresh nondeterministic generator, an ``int`` a seeded one,
    and an existing Generator is passed through untouched.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(seed: int | None, *keys: int) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and integer keys.

    The same ``(seed, keys)`` pair always yields the same stream, and distinct
    key tuples yield statistically independent streams.  Used to give each
    simulated rank (or each aggregator) its own reproducible stream.
    """
    if seed is None:
        return np.random.default_rng()
    ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(int(k) for k in keys))
    return np.random.default_rng(ss)
