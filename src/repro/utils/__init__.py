"""Small shared utilities: RNG handling, units, timers, and table printing."""

from repro.utils.rng import resolve_rng, spawn_rng
from repro.utils.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    TB,
    format_bytes,
    format_count,
    format_seconds,
    format_throughput,
)
from repro.utils.timing import Timer, TimeBreakdown
from repro.utils.tables import Table

__all__ = [
    "resolve_rng",
    "spawn_rng",
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_count",
    "format_seconds",
    "format_throughput",
    "Timer",
    "TimeBreakdown",
    "Table",
]
