"""Wall-clock timers and phase breakdowns.

The paper's Figure 6 reports the split between "data aggregation" and
"file I/O" time.  :class:`TimeBreakdown` accumulates named phases measured
with :class:`Timer` (or recorded directly from the performance model) and can
render the percentage split.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field


class Timer:
    """A restartable wall-clock timer.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


@dataclass
class TimeBreakdown:
    """Accumulated time per named phase (seconds)."""

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative phase time {seconds!r} for {phase!r}")
        self.phases[phase] = self.phases.get(phase, 0.0) + float(seconds)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - t0)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fraction(self, phase: str) -> float:
        """Fraction of total time spent in ``phase`` (0 if nothing recorded)."""
        total = self.total
        if total == 0.0:
            return 0.0
        return self.phases.get(phase, 0.0) / total

    def merged(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown(dict(self.phases))
        for phase, seconds in other.phases.items():
            out.add(phase, seconds)
        return out

    def __str__(self) -> str:
        total = self.total
        if total == 0.0:
            return "<empty breakdown>"
        parts = [
            f"{name}: {seconds:.4f}s ({100.0 * seconds / total:.1f}%)"
            for name, seconds in sorted(self.phases.items())
        ]
        return ", ".join(parts)
