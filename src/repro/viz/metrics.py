"""Image-space quality metrics for progressive renders (Fig. 9).

The paper's claim is visual ("most of the features are still visible even
using only 25% of the particle data"); we quantify it with two standard
metrics against the full-resolution render:

* **coverage** — fraction of the full render's occupied pixels that the
  subset render also covers (are the features *there*?);
* **normalized RMSE** — intensity error over the full render's dynamic
  range (are they the right *strength*?).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def _check_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigError(f"image shapes differ: {a.shape} vs {b.shape}")
    return a, b


def coverage(subset_img: np.ndarray, full_img: np.ndarray, threshold: float = 0.0) -> float:
    """Fraction of the full image's occupied pixels covered by the subset."""
    subset_img, full_img = _check_pair(subset_img, full_img)
    occupied = full_img > threshold
    total = int(occupied.sum())
    if total == 0:
        return 1.0
    covered = int(((subset_img > threshold) & occupied).sum())
    return covered / total


def normalized_rmse(subset_img: np.ndarray, full_img: np.ndarray) -> float:
    """RMSE between normalised images, over the full render's peak.

    Both images are scaled to unit total mass first, so a subset render
    (fewer, heavier splats) is compared by *distribution*, not raw counts.
    """
    subset_img, full_img = _check_pair(subset_img, full_img)
    full_mass = full_img.sum()
    sub_mass = subset_img.sum()
    if full_mass == 0.0:
        return 0.0 if sub_mass == 0.0 else 1.0
    full_n = full_img / full_mass
    sub_n = subset_img / (sub_mass if sub_mass > 0 else 1.0)
    peak = full_n.max()
    if peak == 0.0:
        return 0.0
    return float(np.sqrt(np.mean((sub_n - full_n) ** 2)) / peak)


def quality_report(
    renderer, batch, fractions=(0.25, 0.5, 0.75, 1.0)
) -> list[dict[str, float]]:
    """Coverage / NRMSE at each fraction (the Fig. 9 table)."""
    full = renderer.render(batch)
    out = []
    for f in fractions:
        img = renderer.render_fraction(batch, f)
        out.append(
            {
                "fraction": float(f),
                "coverage": coverage(img, full),
                "nrmse": normalized_rmse(img, full),
            }
        )
    return out
