"""Visualization-side consumers: splat rendering and LOD quality metrics.

Figure 9 of the paper shows progressive renders of a 55M-particle coal
injection at 25/50/75/100% of the data, arguing that low LOD prefixes
"still provide a good representation" when the particle radius is scaled
up.  This package quantifies that claim: a density splat renderer, the
radius-scaling rule, and image-space quality metrics (coverage and RMSE
against the full-resolution render).
"""

from repro.viz.renderer import SplatRenderer, lod_radius_scale
from repro.viz.metrics import coverage, normalized_rmse, quality_report

__all__ = [
    "SplatRenderer",
    "lod_radius_scale",
    "coverage",
    "normalized_rmse",
    "quality_report",
]
