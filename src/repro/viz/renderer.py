"""A small density splat renderer.

Particles are orthographically projected along one axis onto a 2-D image;
each contributes a Gaussian-ish splat of a given radius.  This is the
simplest renderer that reproduces what matters for the paper's Fig. 9
argument: whether a random LOD prefix, drawn with appropriately enlarged
radii, produces an image close to the full-resolution one.

Implementation notes: splats are accumulated with ``np.add.at`` over a
precomputed kernel footprint — vectorised over particles per kernel offset,
so rendering a million particles costs a few dozen array passes rather than
a Python loop per particle.
"""

from __future__ import annotations

import numpy as np

from repro.domain.box import Box
from repro.errors import ConfigError
from repro.particles.batch import ParticleBatch


def lod_radius_scale(full_count: int, subset_count: int) -> float:
    """Radius multiplier for a subset render (paper §5.4 / [19]).

    Rendering ``subset_count`` of ``full_count`` particles, each splat
    stands in for ``full/subset`` of them; scaling the radius by the cube
    root of that ratio preserves total covered volume.
    """
    if full_count < 1 or subset_count < 1:
        raise ConfigError(
            f"counts must be >= 1, got full={full_count}, subset={subset_count}"
        )
    return float((full_count / subset_count) ** (1.0 / 3.0))


class SplatRenderer:
    """Orthographic density splatter onto a square image."""

    def __init__(
        self,
        bounds: Box,
        resolution: int = 256,
        axis: int = 2,
        base_radius_px: float = 1.0,
    ):
        if resolution < 8:
            raise ConfigError(f"resolution must be >= 8, got {resolution}")
        if axis not in (0, 1, 2):
            raise ConfigError(f"axis must be 0, 1 or 2, got {axis}")
        if base_radius_px <= 0:
            raise ConfigError(f"base_radius_px must be > 0, got {base_radius_px}")
        self.bounds = bounds
        self.resolution = int(resolution)
        self.axis = axis
        self.base_radius_px = float(base_radius_px)
        self._uv_axes = tuple(a for a in range(3) if a != axis)

    def _project(self, positions: np.ndarray) -> np.ndarray:
        """(N, 2) pixel coordinates of the particle centers."""
        u_ax, v_ax = self._uv_axes
        lo = self.bounds.lo
        ext = np.where(self.bounds.extent > 0, self.bounds.extent, 1.0)
        u = (positions[:, u_ax] - lo[u_ax]) / ext[u_ax]
        v = (positions[:, v_ax] - lo[v_ax]) / ext[v_ax]
        pix = np.stack([u, v], axis=1) * (self.resolution - 1)
        return np.clip(pix, 0, self.resolution - 1)

    def render(
        self, batch: ParticleBatch, radius_scale: float = 1.0
    ) -> np.ndarray:
        """Density image (resolution x resolution, float64, >= 0)."""
        img = np.zeros((self.resolution, self.resolution), dtype=np.float64)
        if len(batch) == 0:
            return img
        pix = self._project(batch.positions)
        radius = self.base_radius_px * float(radius_scale)
        r_cells = max(0, int(np.ceil(radius)))
        centers = np.round(pix).astype(np.int64)
        sigma2 = max(radius, 0.5) ** 2
        for du in range(-r_cells, r_cells + 1):
            for dv in range(-r_cells, r_cells + 1):
                d2 = du * du + dv * dv
                if d2 > radius * radius + 1e-12:
                    continue
                weight = float(np.exp(-0.5 * d2 / sigma2))
                uu = centers[:, 0] + du
                vv = centers[:, 1] + dv
                ok = (uu >= 0) & (uu < self.resolution) & (vv >= 0) & (vv < self.resolution)
                np.add.at(img, (uu[ok], vv[ok]), weight)
        return img

    def render_fraction(
        self, batch: ParticleBatch, fraction: float
    ) -> np.ndarray:
        """Render the first ``fraction`` of an LOD-ordered batch.

        Because the file layout puts coarse levels first, a prefix of the
        stored order *is* the progressive render state; radii are scaled by
        the volume-preserving rule.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
        subset = max(1, int(round(len(batch) * fraction)))
        scale = lod_radius_scale(len(batch), subset)
        return self.render(batch[0:subset], radius_scale=scale)
