"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Subsystems add narrower categories: the simulated
MPI runtime, the file format, configuration validation, and query evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError, ValueError):
    """A user-supplied configuration value is invalid or inconsistent."""


class DomainError(ReproError, ValueError):
    """A geometric object (box, grid, decomposition) is malformed."""


class MPIError(ReproError, RuntimeError):
    """Base class for simulated-MPI failures."""


class DeadlockError(MPIError):
    """The deadlock watchdog determined that no rank can make progress."""


class RankFailedError(MPIError):
    """One or more simulated ranks raised; carries the per-rank exceptions."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"{len(self.failures)} rank(s) failed (ranks {ranks}); "
            f"first failure: {first!r}"
        )


class CommMismatchError(MPIError):
    """A collective was called with inconsistent arguments across ranks."""


class FormatError(ReproError, ValueError):
    """An on-disk structure (data file, metadata table, manifest) is corrupt."""


class MetadataError(FormatError):
    """The spatial metadata table is missing, truncated, or inconsistent."""


class DataFileError(FormatError):
    """A particle data file is missing, truncated, or inconsistent."""


class QueryError(ReproError, ValueError):
    """A spatial or attribute query is malformed."""


class BackendError(ReproError, OSError):
    """A storage backend operation failed."""
