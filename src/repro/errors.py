"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base class.  Subsystems add narrower categories: the simulated
MPI runtime, the file format, configuration validation, and query evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError, ValueError):
    """A user-supplied configuration value is invalid or inconsistent."""


class DomainError(ReproError, ValueError):
    """A geometric object (box, grid, decomposition) is malformed."""


class MPIError(ReproError, RuntimeError):
    """Base class for simulated-MPI failures."""


class DeadlockError(MPIError):
    """The deadlock watchdog determined that no rank can make progress."""


class RankFailedError(MPIError):
    """One or more simulated ranks raised; carries the per-rank exceptions."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = self.failures[min(self.failures)]
        super().__init__(
            f"{len(self.failures)} rank(s) failed (ranks {ranks}); "
            f"first failure: {first!r}"
        )


class CommMismatchError(MPIError):
    """A collective was called with inconsistent arguments across ranks."""


class FormatError(ReproError, ValueError):
    """An on-disk structure (data file, metadata table, manifest) is corrupt."""


class ChecksumError(FormatError):
    """A stored checksum does not match the bytes it covers.

    Distinguished from the structural :class:`FormatError` cases because the
    *structure* parsed fine — the payload was silently corrupted (bit-flip,
    torn write that preserved the header, media error).  Scrubbing reports
    these separately: a checksum failure means the data is unrecoverable from
    this replica, not merely incomplete.
    """


class MetadataError(FormatError):
    """The spatial metadata table is missing, truncated, or inconsistent."""


class DataFileError(FormatError):
    """A particle data file is missing, truncated, or inconsistent."""


class MetadataChecksumError(MetadataError, ChecksumError):
    """The spatial metadata table's stored checksum does not match."""


class DataChecksumError(DataFileError, ChecksumError):
    """A particle data file's stored checksum does not match."""


class QueryError(ReproError, ValueError):
    """A spatial or attribute query is malformed."""


class BackendError(ReproError, OSError):
    """A storage backend operation failed."""


class TransientBackendError(BackendError):
    """A backend operation failed in a way that is expected to heal.

    Raised (or wrapped) for conditions a retry can fix: a flaky network
    mount, a storage target briefly over capacity, an injected test fault.
    :class:`~repro.io.retry.RetryPolicy` retries exactly this class; plain
    :class:`BackendError` is treated as permanent and propagates immediately.
    """


class RemoteUnavailableError(TransientBackendError):
    """The remote object store refused or dropped a request (outage).

    Transient by classification — a retry or a hedge *may* succeed — but
    repeated occurrences are what trips the circuit breaker in
    :mod:`repro.io.resilience` from hammering a dead store.
    """


class RequestTimeoutError(TransientBackendError):
    """One remote request exceeded its per-request timeout budget.

    Distinct from :class:`DeadlineExceededError`: the *request* ran out of
    time (retry/hedge may still meet the query's deadline), not the query.
    """


class DeadlineExceededError(BackendError):
    """The operation's end-to-end deadline expired.

    Deliberately **not** transient: once a query's deadline has passed,
    retrying cannot help, so :class:`~repro.io.retry.RetryPolicy` lets it
    propagate immediately and degraded reads record the partition as shed.
    """


class BreakerOpenError(BackendError):
    """The per-path circuit breaker is open; the request failed fast.

    Raised without touching the remote store.  Not transient — the breaker
    itself decides when to probe again (half-open), so retrying through an
    open breaker would only burn the caller's deadline budget.
    """


class ServiceError(ReproError, RuntimeError):
    """The serving layer failed, was misconfigured, or was used after close."""


class AdmissionError(ServiceError):
    """A query was refused admission by the serving layer.

    Carries the rejection ``reason`` the service counted under the
    ``server.rejected`` counter: the service is closed, the pending queue
    is full, or the client exhausted an inflight/byte quota.  Admission
    control sheds load at the door — an admitted query is always run.
    """

    def __init__(self, reason: str, detail: str):
        self.reason = reason
        super().__init__(detail)


class IncompleteDatasetError(ReproError, RuntimeError):
    """A dataset is missing its commit marker or parts of its payload.

    The two-phase writer publishes ``manifest.json`` last; until it exists
    (and parses), the dataset must be treated as an aborted write rather
    than a corrupt one — rerunning the write repairs it in place.
    """
