"""Adaptive-aggregation write cost (§6.1, Figure 11).

The workload: a fixed total particle count confined to an ``occupancy``
fraction of the domain (1.0, 0.5, 0.25, 0.125) on a fixed allocation
(4,096 cores in the paper).  Populated ranks carry ``1/occupancy`` times the
base per-rank load, so total bytes are occupancy-invariant.

Mechanisms the model captures, matching the paper's own analysis:

* **adaptive** — the grid covers only the populated region: ``occupancy *
  total_partitions`` files, each ``1/occupancy`` times larger.  On Mira
  (GPFS + dedicated IONs, which strongly prefer few large bursts — the §5.2
  argument) the growing burst size makes time *fall* as occupancy shrinks,
  saturating once the burst benefit is exhausted (the paper's 12.5% note).
  On Theta (Lustre, stripe-granular) burst size is ~irrelevant and the
  savings/losses cancel: a near-flat line.  Aggregators stay uniformly
  spread over the whole rank space, so the full ION share is available.
* **non-adaptive** — the grid still spans the whole domain: every partition
  creates a file (empty ones included), and the aggregators that actually
  carry data sit clustered in the populated subregion's partition ids,
  under-utilising the I/O path.  The utilisation factor
  ``0.55 + 0.45 * occupancy`` interpolates between "everything clustered"
  and "fully spread"; at 100% occupancy adaptive and non-adaptive coincide
  by construction, as in Fig. 11.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.particles.dtype import UINTAH_PARTICLE_BYTES
from repro.perf.machine import Machine
from repro.perf.writesim import WriteEstimate


def simulate_adaptive_write(
    machine: Machine,
    nprocs: int,
    total_particles: int,
    occupancy: float,
    adaptive: bool,
    partition_factor: tuple[int, int, int] = (2, 2, 2),
    particle_bytes: int = UINTAH_PARTICLE_BYTES,
) -> WriteEstimate:
    """Estimate one write of the §6.1 occupancy workload."""
    if not 0.0 < occupancy <= 1.0:
        raise ConfigError(f"occupancy must be in (0, 1], got {occupancy}")
    px, py, pz = partition_factor
    group = px * py * pz
    total_bytes = float(total_particles) * particle_bytes
    total_partitions = max(1, nprocs // group)
    populated = max(1, round(total_partitions * occupancy))

    # Populated ranks hold 1/occupancy times the base density.
    populated_ranks = max(1, round(nprocs * occupancy))
    per_sender_bytes = total_bytes / populated_ranks

    n_files = populated                    # files that actually carry bytes
    file_bytes = total_bytes / n_files
    if adaptive:
        io_utilisation = 1.0               # aggregators spread over all ranks
        create_files = n_files             # no empty partitions, no empty files
    else:
        io_utilisation = 0.55 + 0.45 * occupancy
        create_files = total_partitions    # empty partitions still create files

    agg_time = machine.network.aggregation_time(
        group, per_sender_bytes, populated_ranks, machine.machine_fraction(nprocs)
    )

    bw = machine.storage.write_bandwidth(
        n_files,
        machine.machine_fraction(nprocs),
        file_bytes,
        n_nodes=machine.nodes_for(nprocs),
    )
    io_time = total_bytes / (bw * io_utilisation) + machine.storage.create_time(
        create_files
    )

    return WriteEstimate(
        machine=machine.name,
        strategy=("adaptive" if adaptive else "non-adaptive")
        + f" {px}x{py}x{pz} @ {occupancy:.0%}",
        nprocs=nprocs,
        n_files=n_files,
        file_bytes=file_bytes,
        total_bytes=total_bytes,
        aggregation_time=agg_time,
        io_time=io_time,
        metadata_time=0.0,
    )
