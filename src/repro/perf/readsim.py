"""Read-path cost estimation (Figures 7 and 8).

Visualization-style reads are dominated by two terms: per-file open costs
(metadata round-trips — expensive on Lustre, nearly free on an SSD box) and
byte-streaming time.  Readers proceed in parallel, so the makespan is the
slowest reader's sum, bounded below by the aggregate-bandwidth floor.

``simulate_parallel_read`` covers the three strong-scaling cases of Fig. 7:

* ``with_metadata=True`` — each reader opens only its share of files and
  pulls only its share of bytes: both terms shrink with more readers;
* ``with_metadata=False`` — every reader must read *every* byte of every
  file (nothing says where particles live): adding readers does not reduce
  per-reader work, and extra opens make things worse.

``simulate_lod_read`` covers Fig. 8: ``n`` readers read levels ``0..L``.
Every file must be opened regardless of how few particles are taken from it
(the prefix lives at the head of each file), so low levels cost ~the open
floor — exactly the flat region the paper sees on Theta — while high levels
approach the full-read time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lod import cumulative_level_count
from repro.errors import ConfigError
from repro.perf.machine import Machine


@dataclass(frozen=True)
class ReadEstimate:
    """Cost estimate for one parallel read."""

    machine: str
    case: str
    n_readers: int
    files_per_reader: float
    bytes_per_reader: float
    open_time: float
    stream_time: float

    @property
    def total_time(self) -> float:
        return self.open_time + self.stream_time


def simulate_parallel_read(
    machine: Machine,
    n_readers: int,
    total_files: int,
    total_bytes: float,
    with_metadata: bool = True,
    case: str | None = None,
) -> ReadEstimate:
    """Estimate a full-dataset read by ``n_readers`` processes."""
    if n_readers < 1 or total_files < 1:
        raise ConfigError(
            f"need n_readers >= 1 and total_files >= 1, got {n_readers}, {total_files}"
        )
    storage = machine.storage
    if with_metadata:
        files_per_reader = -(-total_files // n_readers)
        bytes_per_reader = total_bytes / n_readers
    else:
        # No spatial table: every reader scans the whole dataset.
        files_per_reader = total_files
        bytes_per_reader = total_bytes
    open_time = files_per_reader * storage.open_cost
    per_reader_stream = bytes_per_reader / storage.per_reader_bw
    aggregate_floor = (bytes_per_reader * n_readers) / storage.read_bandwidth(n_readers)
    stream_time = max(per_reader_stream, aggregate_floor)
    return ReadEstimate(
        machine=machine.name,
        case=case or ("with metadata" if with_metadata else "without metadata"),
        n_readers=n_readers,
        files_per_reader=float(files_per_reader),
        bytes_per_reader=float(bytes_per_reader),
        open_time=open_time,
        stream_time=stream_time,
    )


def simulate_lod_read(
    machine: Machine,
    n_readers: int,
    total_files: int,
    total_particles: int,
    particle_bytes: int,
    upto_level: int,
    lod_base: int = 32,
    lod_scale: int = 2,
) -> ReadEstimate:
    """Estimate reading LOD levels ``0..upto_level`` with ``n_readers``."""
    if upto_level < 0:
        raise ConfigError(f"upto_level must be >= 0, got {upto_level}")
    target = min(
        total_particles,
        cumulative_level_count(n_readers, upto_level, lod_base, lod_scale),
    )
    bytes_total = float(target) * particle_bytes
    storage = machine.storage
    files_per_reader = -(-total_files // n_readers)
    open_time = files_per_reader * storage.open_cost
    per_reader_stream = (bytes_total / n_readers) / storage.per_reader_bw
    aggregate_floor = bytes_total / storage.read_bandwidth(n_readers)
    return ReadEstimate(
        machine=machine.name,
        case=f"LOD<= {upto_level}",
        n_readers=n_readers,
        files_per_reader=float(files_per_reader),
        bytes_per_reader=bytes_total / n_readers,
        open_time=open_time,
        stream_time=max(per_reader_stream, aggregate_floor),
    )
