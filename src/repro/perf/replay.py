"""Replay a recorded I/O operation stream against a storage model.

The functional layer records every backend operation when run over a
:class:`~repro.io.virtual.VirtualBackend`.  ``replay_ops`` attributes those
operations to their actors (reader/aggregator ranks) and estimates the
makespan on a given machine: actors proceed in parallel; each pays per-open
metadata costs and streams its bytes; the whole ensemble is floored by
aggregate storage bandwidth.

This bridges the two layers: the *pattern* comes from really running the
algorithm, only the *costs* come from the model.  It is how the benchmarks
turn a functional small-scale run into a machine-level estimate without
hand-deriving file counts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.io.backend import IoOp
from repro.perf.machine import Machine


@dataclass(frozen=True)
class ReplayEstimate:
    """Estimated cost of an op stream on a machine."""

    machine: str
    n_actors: int
    total_opens: int
    total_read_bytes: int
    total_write_bytes: int
    makespan: float
    per_actor_times: dict[int, float]


def replay_ops(
    machine: Machine, ops: list[IoOp], default_actor: int = 0
) -> ReplayEstimate:
    """Estimate the wall-clock of ``ops`` with per-actor parallelism."""
    storage = machine.storage
    opens: dict[int, int] = defaultdict(int)
    creates: dict[int, int] = defaultdict(int)
    read_bytes: dict[int, int] = defaultdict(int)
    write_bytes: dict[int, int] = defaultdict(int)

    for op in ops:
        actor = op.actor if op.actor >= 0 else default_actor
        if op.kind == "open":
            opens[actor] += 1
        elif op.kind == "create":
            creates[actor] += 1
        elif op.kind == "read":
            read_bytes[actor] += op.nbytes
        elif op.kind == "write":
            write_bytes[actor] += op.nbytes
        # "list" ops are treated as one open-equivalent metadata round-trip.
        elif op.kind == "list":
            opens[actor] += 1

    actors = set(opens) | set(creates) | set(read_bytes) | set(write_bytes)
    if not actors:
        return ReplayEstimate(machine.name, 0, 0, 0, 0, 0.0, {})

    per_actor: dict[int, float] = {}
    for actor in actors:
        t = opens[actor] * storage.open_cost
        t += read_bytes[actor] / storage.per_reader_bw
        t += write_bytes[actor] / storage.per_writer_bw
        per_actor[actor] = t

    total_reads = sum(read_bytes.values())
    total_writes = sum(write_bytes.values())
    total_creates = sum(creates.values())
    n = len(actors)
    floor = (
        total_reads / storage.read_bandwidth(n)
        + total_writes
        / storage.write_bandwidth(
            max(1, total_creates or n), machine.machine_fraction(n), 64 * 2**20
        )
        + storage.create_time(total_creates)
    )
    makespan = max(max(per_actor.values()), floor)
    return ReplayEstimate(
        machine=machine.name,
        n_actors=n,
        total_opens=sum(opens.values()),
        total_read_bytes=total_reads,
        total_write_bytes=total_writes,
        makespan=makespan,
        per_actor_times=per_actor,
    )
