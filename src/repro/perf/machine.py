"""Machine descriptions: network + storage constants for the evaluation platforms.

Constants were calibrated against the numbers the paper reports in §5:

* Mira — peak ~98 GB/s for our scheme at 262,144 procs (1/3 of the machine),
  FPP collapse at ≥65–131K files, collective I/O flat and low.
* Theta — ~216/243 GB/s at 262,144 procs with (1,2,2) for 32K/64K
  particles-per-core, FPP at 83/160 GB/s, FPP ≈ peak at small/mid scale.
* SSD workstation — 4×18-core Xeon, 3 TB RAM, SSDs (§5.1): negligible
  per-file open cost relative to Theta's Lustre metadata path.

Every number is a model parameter with a physical reading (bandwidths in
bytes/second, times in seconds); none is a measurement from this repo.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.units import GB, MB


@dataclass(frozen=True)
class NetworkModel:
    """First-order aggregation-network cost model.

    ``aggregate_time`` models the two-phase exchange: each aggregator
    ingests ``(g-1)`` peer payloads of ``msg_bytes`` at ``ingest_bw``,
    slowed by a topology-contention factor ``1 + contention * (g - 1)``
    (shared dragonfly links hurt more than the BG/Q torus), plus a per-peer
    latency term.  All aggregators proceed in parallel, so this is also the
    whole exchange's makespan, floored by a bisection term for the global
    traffic volume.
    """

    ingest_bw: float          # bytes/s one aggregator can absorb (cross-node MPI)
    contention: float         # per-extra-peer slowdown factor
    latency: float            # seconds per peer message
    bisection_bw_per_core: float  # bytes/s/core of global network capacity
    fraction_congestion: float = 0.0  # ingest slowdown as the job fills the machine
    node_local_ingest: float | None = None  # bytes/s for on-node gathers
    ingest_msg_half: float = 0.0  # message size at which ingest reaches half peak

    def effective_ingest(self, machine_fraction: float, msg_bytes: float = float("inf")) -> float:
        """Aggregator ingest bandwidth once machine-scale congestion bites.

        Two effects: (a) on a dragonfly (Theta) the aggregation traffic of a
        near-full-machine job shares global links with everyone else's, so
        per-flow bandwidth drops as the allocation grows — a BG/Q torus
        partition (Mira) is electrically isolated, so the term is ~zero
        there; (b) small messages do not amortise per-message protocol costs
        (``ingest_msg_half`` is the classic half-bandwidth point), which on
        KNL's slow cores is severe.
        """
        size_eff = 1.0
        if self.ingest_msg_half > 0 and msg_bytes != float("inf"):
            size_eff = msg_bytes / (msg_bytes + self.ingest_msg_half)
        return (
            self.ingest_bw
            * size_eff
            / (1.0 + self.fraction_congestion * machine_fraction)
        )

    def aggregation_time(
        self,
        group_size: int,
        msg_bytes: float,
        nprocs: int,
        machine_fraction: float = 0.0,
        node_local: bool = False,
    ) -> float:
        """Seconds to aggregate ``group_size`` ranks' payloads everywhere.

        ``node_local=True`` models collective-buffering gathers whose senders
        share the aggregator's node (no topology contention term).
        """
        if group_size < 1:
            raise ConfigError(f"group_size must be >= 1, got {group_size}")
        peers = group_size - 1
        if peers == 0:
            return 0.0
        if node_local:
            contention = 0.0
            ingest = self.node_local_ingest or self.ingest_bw
        else:
            contention = self.contention
            ingest = self.effective_ingest(machine_fraction, msg_bytes)
        per_agg = (
            peers * msg_bytes * (1.0 + contention * peers) / ingest
            + self.latency * peers
        )
        total_moved = nprocs * msg_bytes * peers / group_size
        bisection = total_moved / (self.bisection_bw_per_core * nprocs)
        return max(per_agg, bisection)


@dataclass(frozen=True)
class StorageModel:
    """Filesystem cost model.

    ``kind`` selects the scaling regime:

    * ``"gpfs-ion"`` — bandwidth proportional to the compute allocation
      (dedicated I/O nodes are allocated with the job), quadratic metadata
      penalty past ``create_storm_threshold`` files;
    * ``"lustre"`` — bandwidth shared machine-wide (OSTs are a global
      resource), near-linear create costs with a softer storm penalty;
    * ``"ssd"`` — local storage: flat bandwidth, microsecond opens.
    """

    kind: str
    peak_bw: float                 # aggregate bytes/s at best
    per_writer_bw: float           # bytes/s a single writing process can push
    per_reader_bw: float           # bytes/s a single reading process can pull
    create_rate: float             # file creates/s the metadata service sustains
    create_storm_threshold: float  # files beyond which creates go superlinear
    open_cost: float               # seconds per file open (read path)
    node_write_bw: float = float("inf")  # bytes/s of storage traffic per compute node
    ion_fraction_slack: float = 1.0  # gpfs-ion: ION share vs compute share
    shared_lock_scale: float = 4096.0  # procs at which shared-file contention bites
    shared_lock_exp: float = 0.8
    burst_floor: float = 1.0   # bandwidth fraction reached by tiny files
    burst_half: float = 0.0    # file size at which half the burst benefit is realised

    def burst_efficiency(self, file_bytes: float) -> float:
        """Fraction of streaming bandwidth realised for files of a given size.

        GPFS over dedicated IONs strongly prefers few large bursts (the
        paper's §5.2 explanation for why aggregated configurations win on
        Mira); Lustre with 8 MB stripes is size-insensitive past a stripe.
        """
        if self.burst_half <= 0:
            return 1.0
        return self.burst_floor + (1.0 - self.burst_floor) * file_bytes / (
            file_bytes + self.burst_half
        )

    # -- write path ------------------------------------------------------------

    def write_bandwidth(
        self,
        n_writers: int,
        machine_fraction: float,
        file_bytes: float,
        n_nodes: int | None = None,
    ) -> float:
        """Aggregate streaming write bandwidth for ``n_writers`` files."""
        if n_writers < 1:
            raise ConfigError(f"n_writers must be >= 1, got {n_writers}")
        bw = min(self.peak_bw, n_writers * self.per_writer_bw)
        if n_nodes is not None:
            bw = min(bw, n_nodes * self.node_write_bw)
        if self.kind == "gpfs-ion":
            # Dedicated IONs: an allocation of f of the machine sees ~f of
            # the filesystem, with a little slack from shared spine links.
            bw = min(bw, self.peak_bw * min(1.0, machine_fraction * self.ion_fraction_slack))
        bw *= self.burst_efficiency(file_bytes)
        return max(bw, 1.0)

    def create_time(self, n_files: int) -> float:
        """Metadata cost of creating ``n_files`` (the FPP storm term)."""
        if n_files < 0:
            raise ConfigError(f"n_files must be >= 0, got {n_files}")
        base = n_files / self.create_rate
        storm = n_files / self.create_storm_threshold
        if self.kind in ("gpfs-ion", "lustre"):
            return base * (1.0 + storm * storm)
        return base

    def shared_file_bandwidth(self, nprocs: int, machine_fraction: float = 1.0) -> float:
        """Single-shared-file effective bandwidth under lock contention.

        On the ION-mediated GPFS the shared file is additionally limited to
        the allocation's ION share, like every other write.
        """
        contention = 1.0 + (nprocs / self.shared_lock_scale) ** self.shared_lock_exp
        bw = self.peak_bw / contention
        if self.kind == "gpfs-ion":
            bw = min(
                bw,
                self.peak_bw * min(1.0, machine_fraction * self.ion_fraction_slack),
            )
        return max(bw, 1.0)

    # -- read path ---------------------------------------------------------------

    def read_bandwidth(self, n_readers: int) -> float:
        return min(self.peak_bw, max(1, n_readers) * self.per_reader_bw)


@dataclass(frozen=True)
class Machine:
    """A named platform: core layout + network + storage."""

    name: str
    total_cores: int
    cores_per_node: int
    network: NetworkModel
    storage: StorageModel

    def nodes_for(self, nprocs: int) -> int:
        return -(-nprocs // self.cores_per_node)

    def machine_fraction(self, nprocs: int) -> float:
        if nprocs < 1:
            raise ConfigError(f"nprocs must be >= 1, got {nprocs}")
        return min(1.0, nprocs / self.total_cores)


#: IBM Blue Gene/Q at ALCF: 49,152 nodes x 16 cores, 5D torus, GPFS with
#: dedicated I/O nodes at 1:128.  Calibrated to Fig. 5 (top row).
MIRA = Machine(
    name="Mira",
    total_cores=786_432,
    cores_per_node=16,
    network=NetworkModel(
        ingest_bw=2.0 * GB,
        contention=0.10,
        latency=4e-6,
        bisection_bw_per_core=0.35 * GB,
        fraction_congestion=0.5,
        node_local_ingest=2.0 * GB,
    ),
    storage=StorageModel(
        kind="gpfs-ion",
        peak_bw=255.0 * GB,
        per_writer_bw=0.8 * GB,
        per_reader_bw=0.8 * GB,
        create_rate=20_000.0,
        create_storm_threshold=30_000.0,
        open_cost=1.5e-3,
        ion_fraction_slack=1.45,
        burst_floor=0.2,
        burst_half=32.0 * MB,
    ),
)

#: Cray XC40 at ALCF: 4,392 KNL nodes x 64 cores, dragonfly, Lustre with 48
#: OSTs (8 MB stripes per the ALCF guidance the paper follows).  Calibrated
#: to Fig. 5 (bottom row), Fig. 7 and Fig. 8.
THETA = Machine(
    name="Theta",
    total_cores=281_088,
    cores_per_node=64,
    network=NetworkModel(
        # KNL serial performance is low (the paper remarks on it in §3.4);
        # a single aggregator rank ingests few-MB payloads slowly — the
        # half-bandwidth message size is large — which is what makes big
        # aggregation groups expensive on Theta (Fig. 6c/d).
        ingest_bw=0.6 * GB,
        contention=0.08,
        latency=6e-6,
        bisection_bw_per_core=0.10 * GB,
        fraction_congestion=0.0,
        node_local_ingest=1.5 * GB,
        ingest_msg_half=40.0 * MB,
    ),
    storage=StorageModel(
        kind="lustre",
        peak_bw=280.0 * GB,
        per_writer_bw=0.45 * GB,
        per_reader_bw=0.45 * GB,
        create_rate=150_000.0,
        create_storm_threshold=150_000.0,
        open_cost=4.0e-3,
        node_write_bw=5.0 * GB,
    ),
)

#: The read-experiment workstation of §5.1: 4 x 18-core Xeons, 3 TB RAM,
#: SSDs.  Single-box storage: flat bandwidth, cheap opens.
WORKSTATION = Machine(
    name="SSD workstation",
    total_cores=72,
    cores_per_node=72,
    network=NetworkModel(
        ingest_bw=8.0 * GB,
        contention=0.0,
        latency=5e-7,
        bisection_bw_per_core=2.0 * GB,
    ),
    storage=StorageModel(
        kind="ssd",
        # With 3 TB of RAM, a 248 GB dataset is effectively page-cache
        # resident after first touch; aggregate read bandwidth reflects
        # cache-assisted SSD reads, not raw device speed.
        peak_bw=20.0 * GB,
        per_writer_bw=1.2 * GB,
        per_reader_bw=0.9 * GB,
        create_rate=150_000.0,
        create_storm_threshold=10_000_000.0,
        open_cost=5e-5,
    ),
)

MACHINES = {m.name: m for m in (MIRA, THETA, WORKSTATION)}
