"""Performance models of the paper's evaluation platforms.

The functional layer (:mod:`repro.core` over :mod:`repro.mpi`) executes the
real algorithms and moves real bytes; this package estimates what those
algorithms would *cost* on the paper's machines — Mira (BG/Q, 5D torus,
GPFS with dedicated I/O nodes), Theta (Cray KNL, dragonfly, Lustre with 48
OSTs) and the SSD workstation used for read experiments — at the paper's
scales (512–262,144 processes), which no functional simulator could run.

The models are deliberately simple, calibrated analytic forms.  Each
captures one first-order mechanism the paper's analysis leans on:

* aggregation cost grows with the partition volume (group size), and is
  relatively more expensive on Theta than Mira (Fig. 6);
* GPFS throughput scales with the machine fraction (dedicated IONs) and
  collapses under file-per-process create storms at ≥64K files (Fig. 5 top);
* Lustre loves independent files until metadata create costs catch up,
  letting modest aggregation (1,2,2) overtake FPP at 65,536 procs (Fig. 5
  bottom);
* shared-file/collective I/O degrades with process count (lock/gather
  contention);
* read latency = per-file open costs + bytes/bandwidth, with open costs
  dominating on Lustre and bytes dominating on SSDs (Figs. 7-8).

Absolute numbers are model outputs, not measurements; EXPERIMENTS.md
records how the *shapes* compare to the paper's.
"""

from repro.perf.machine import (
    MACHINES,
    MIRA,
    THETA,
    WORKSTATION,
    Machine,
    NetworkModel,
    StorageModel,
)
from repro.perf.writesim import WriteEstimate, simulate_baseline_write, simulate_write
from repro.perf.readsim import ReadEstimate, simulate_lod_read, simulate_parallel_read
from repro.perf.adaptivesim import simulate_adaptive_write
from repro.perf.replay import replay_ops
from repro.perf.des import TimelineEstimate, replay_timeline

__all__ = [
    "MACHINES",
    "Machine",
    "NetworkModel",
    "StorageModel",
    "MIRA",
    "THETA",
    "WORKSTATION",
    "WriteEstimate",
    "simulate_write",
    "simulate_baseline_write",
    "ReadEstimate",
    "simulate_parallel_read",
    "simulate_lod_read",
    "simulate_adaptive_write",
    "replay_ops",
    "replay_timeline",
    "TimelineEstimate",
]
