"""Write-path cost estimation (Figures 5 and 6).

``simulate_write`` estimates one collective write of the spatially-aware
scheme at a given scale and partition factor; ``simulate_baseline_write``
covers the comparison strategies (IOR file-per-process, IOR shared file,
Parallel HDF5).  Both return a :class:`WriteEstimate` carrying the phase
breakdown (Fig. 6) and throughput (Fig. 5).

Model summary
-------------

* aggregation time — :meth:`NetworkModel.aggregation_time` over the
  partition group size ``g = Px*Py*Pz`` with per-core payload ``d``;
* file I/O time — ``total_bytes / write_bandwidth + create_time(nfiles)``
  with the storage model's regime effects (ION fraction on Mira, create
  storms, per-writer caps);
* metadata time — one small allgather + one rank-0 write; negligible but
  accounted.

The paper's benchmarks run without fsync; these estimates similarly model
the time for data to leave the compute side, not to hit platters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.names import PHASE_AGGREGATION, PHASE_FILE_IO, PHASE_METADATA
from repro.obs.recorder import Recorder
from repro.particles.dtype import UINTAH_PARTICLE_BYTES
from repro.perf.machine import Machine
from repro.utils.timing import TimeBreakdown


@dataclass(frozen=True)
class WriteEstimate:
    """Cost estimate for one collective write."""

    machine: str
    strategy: str
    nprocs: int
    n_files: int
    file_bytes: float
    total_bytes: float
    aggregation_time: float
    io_time: float
    metadata_time: float

    @property
    def total_time(self) -> float:
        return self.aggregation_time + self.io_time + self.metadata_time

    @property
    def throughput(self) -> float:
        """Bytes per second over the full write."""
        return self.total_bytes / self.total_time

    @property
    def aggregation_fraction(self) -> float:
        """Fig. 6's quantity: share of time spent moving data vs writing."""
        return self.aggregation_time / self.total_time

    @property
    def breakdown(self) -> TimeBreakdown:
        """The estimate as a phase breakdown, using the obs registry names.

        Lets modelled (Fig. 5/6) and measured (functional run) phase times
        be compared and plotted through one view type.
        """
        bd = TimeBreakdown()
        bd.add(PHASE_AGGREGATION, self.aggregation_time)
        bd.add(PHASE_FILE_IO, self.io_time)
        bd.add(PHASE_METADATA, self.metadata_time)
        return bd

    def to_recorder(self, rank: int = 0) -> Recorder:
        """Render the estimate as an obs recorder (cat ``model``).

        Phases are laid back-to-back starting at t=0, so an exported
        Chrome trace shows the modelled write as a timeline.
        """
        rec = Recorder(rank=rank)
        start = 0.0
        for name, dur in (
            (PHASE_AGGREGATION, self.aggregation_time),
            (PHASE_FILE_IO, self.io_time),
            (PHASE_METADATA, self.metadata_time),
        ):
            rec.add_span(
                name, start, dur, cat="model",
                machine=self.machine, strategy=self.strategy,
            )
            start += dur
        return rec


def _meta_time(machine: Machine, n_files: int) -> float:
    """One allgather of bounding boxes plus a rank-0 metadata write."""
    record_bytes = 64.0
    return (
        machine.network.latency * n_files
        + (n_files * record_bytes) / machine.storage.per_writer_bw
    )


def simulate_write(
    machine: Machine,
    nprocs: int,
    particles_per_core: int,
    partition_factor: tuple[int, int, int],
    particle_bytes: int = UINTAH_PARTICLE_BYTES,
) -> WriteEstimate:
    """Estimate the spatially-aware write of §3 at scale.

    ``partition_factor=(1, 1, 1)`` is the scheme's file-per-process
    degenerate configuration (it still differs from IOR FPP only by the
    spatial metadata write).
    """
    px, py, pz = partition_factor
    group = px * py * pz
    if group < 1:
        raise ConfigError(f"bad partition factor {partition_factor}")
    if nprocs % group:
        # Weak-scaling sweeps use power-of-two layouts where factors divide
        # evenly; reject anything else rather than mis-estimate.
        raise ConfigError(
            f"nprocs={nprocs} not divisible by partition volume {group}"
        )
    per_core_bytes = float(particles_per_core) * particle_bytes
    total_bytes = per_core_bytes * nprocs
    n_files = nprocs // group
    file_bytes = per_core_bytes * group

    agg_time = machine.network.aggregation_time(
        group, per_core_bytes, nprocs, machine.machine_fraction(nprocs)
    )
    bw = machine.storage.write_bandwidth(
        n_files, machine.machine_fraction(nprocs), file_bytes,
        n_nodes=machine.nodes_for(nprocs),
    )
    io_time = total_bytes / bw + machine.storage.create_time(n_files)
    return WriteEstimate(
        machine=machine.name,
        strategy=f"{px}x{py}x{pz}",
        nprocs=nprocs,
        n_files=n_files,
        file_bytes=file_bytes,
        total_bytes=total_bytes,
        aggregation_time=agg_time,
        io_time=io_time,
        metadata_time=_meta_time(machine, n_files),
    )


def simulate_baseline_write(
    machine: Machine,
    nprocs: int,
    particles_per_core: int,
    strategy: str,
    particle_bytes: int = UINTAH_PARTICLE_BYTES,
) -> WriteEstimate:
    """Estimate a baseline strategy: ``ior-fpp``, ``ior-shared``, ``phdf5``.

    * ``ior-fpp`` — raw file-per-process, no aggregation, no metadata;
    * ``ior-shared`` — one shared file written collectively: a gather-style
      aggregation phase plus lock-limited shared-file bandwidth;
    * ``phdf5`` — shared-file collective I/O with HDF5's additional
      library/metadata overhead (calibrated to sit below IOR-shared, as in
      Fig. 5).
    """
    per_core_bytes = float(particles_per_core) * particle_bytes
    total_bytes = per_core_bytes * nprocs
    storage = machine.storage

    if strategy == "ior-fpp":
        bw = storage.write_bandwidth(
            nprocs, machine.machine_fraction(nprocs), per_core_bytes,
            n_nodes=machine.nodes_for(nprocs),
        )
        io_time = total_bytes / bw + storage.create_time(nprocs)
        return WriteEstimate(
            machine.name, "IOR FPP", nprocs, nprocs, per_core_bytes,
            total_bytes, 0.0, io_time, 0.0,
        )

    if strategy in ("ior-shared", "phdf5"):
        # Collective I/O: ~one aggregator per node gathers its node's data
        # (node-local traffic, so no topology contention term).
        group = machine.cores_per_node
        agg_time = machine.network.aggregation_time(
            group, per_core_bytes, nprocs, machine.machine_fraction(nprocs),
            node_local=True,
        )
        bw = storage.shared_file_bandwidth(nprocs, machine.machine_fraction(nprocs))
        overhead = 1.0 if strategy == "ior-shared" else 2.2
        io_time = overhead * total_bytes / bw
        label = "IOR collective" if strategy == "ior-shared" else "Parallel HDF5"
        return WriteEstimate(
            machine.name, label, nprocs, 1, total_bytes,
            total_bytes, agg_time, io_time, 0.0,
        )

    raise ConfigError(
        f"unknown baseline strategy {strategy!r}; "
        "expected 'ior-fpp', 'ior-shared' or 'phdf5'"
    )
