"""A small discrete-event replay engine for I/O op streams.

The analytic replay (:mod:`repro.perf.replay`) bounds a run by per-actor
sums and aggregate floors.  This module simulates the *timeline*: actors
execute their operation sequences concurrently against two shared,
capacity-limited resources —

* a **metadata service** (creates/opens/lists) with a total service rate in
  operations/second, shared equally among actors currently in a metadata
  op (an M/M/∞-ish fluid approximation of an MDS/ION metadata path);
* a **bandwidth pool** for streaming reads/writes, shared by max-min
  fairness (water-filling) among active streamers, each additionally
  capped at the storage model's per-process rate.

The simulation is fluid and event-driven: between events every active
operation progresses at its current rate; events are operation
completions.  Deterministic, no randomness, O(ops × actors) worst case —
plenty for the op streams the functional layer records.

Compared to the analytic bound, the timeline captures *phase interference*:
an actor stuck in a create storm lets streamers enjoy more bandwidth, and
vice versa.  Tests assert the timeline always lands between the analytic
lower bound (best case) and the serial sum (worst case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.io.backend import IoOp
from repro.perf.machine import Machine

_META_KINDS = frozenset({"create", "open", "list"})
_STREAM_KINDS = frozenset({"read", "write"})


@dataclass
class _Task:
    """One actor's remaining work: an index into its op list plus progress."""

    actor: int
    ops: list[IoOp]
    index: int = 0
    remaining: float = 0.0  # units: ops for metadata, bytes for streaming

    def current_kind(self) -> str | None:
        while self.index < len(self.ops):
            kind = self.ops[self.index].kind
            if kind in _META_KINDS or kind in _STREAM_KINDS:
                return kind
            self.index += 1  # ignore kinds the model doesn't price
        return None

    def start_current(self) -> None:
        op = self.ops[self.index]
        if op.kind in _META_KINDS:
            self.remaining = 1.0
        else:
            self.remaining = float(max(op.nbytes, 1))

    def finish_current(self) -> None:
        self.index += 1
        self.remaining = 0.0


@dataclass(frozen=True)
class TimelineEstimate:
    """Result of a timeline replay."""

    machine: str
    makespan: float
    n_actors: int
    events: int


def _stream_rates(
    streamers: Sequence[_Task], peak_bw: float, per_actor_bw: float
) -> dict[int, float]:
    """Max-min fair share of ``peak_bw`` with a per-actor cap."""
    n = len(streamers)
    if n == 0:
        return {}
    share = peak_bw / n
    if share <= per_actor_bw:
        return {id(t): share for t in streamers}
    # Everyone is capped; capacity is not binding.
    return {id(t): per_actor_bw for t in streamers}


def replay_timeline(
    machine: Machine,
    ops: Sequence[IoOp],
    default_actor: int = 0,
    mds_rate: float | None = None,
    max_events: int = 1_000_000,
) -> TimelineEstimate:
    """Simulate ``ops`` as concurrent per-actor sequences; return the makespan.

    ``mds_rate`` defaults to the storage model's ``1 / open_cost`` per
    concurrent metadata op (i.e. an uncontended open costs ``open_cost``),
    with total service capacity ``create_rate`` ops/s.
    """
    storage = machine.storage
    per_actor: dict[int, list[IoOp]] = {}
    for op in ops:
        actor = op.actor if op.actor >= 0 else default_actor
        per_actor.setdefault(actor, []).append(op)
    if not per_actor:
        return TimelineEstimate(machine.name, 0.0, 0, 0)

    tasks = [_Task(actor, actor_ops) for actor, actor_ops in per_actor.items()]
    for t in tasks:
        if t.current_kind() is not None:
            t.start_current()

    mds_capacity = mds_rate if mds_rate is not None else storage.create_rate
    if mds_capacity <= 0 or storage.open_cost < 0:
        raise ConfigError("storage model has no usable metadata rates")
    per_op_mds = 1.0 / storage.open_cost if storage.open_cost > 0 else float("inf")

    now = 0.0
    events = 0
    while True:
        live = [t for t in tasks if t.current_kind() is not None]
        if not live:
            return TimelineEstimate(machine.name, now, len(tasks), events)
        if events >= max_events:
            raise ConfigError(
                f"timeline replay exceeded {max_events} events — op stream "
                "too large for this model"
            )
        meta = [t for t in live if t.current_kind() in _META_KINDS]
        readers = [t for t in live if t.current_kind() == "read"]
        writers = [t for t in live if t.current_kind() == "write"]

        rates: dict[int, float] = {}
        if meta:
            # Each metadata op proceeds at per_op_mds, throttled when the
            # total would exceed the service's aggregate capacity.
            each = min(per_op_mds, mds_capacity / len(meta))
            rates.update({id(t): each for t in meta})
        rates.update(
            _stream_rates(readers, storage.read_bandwidth(len(readers)), storage.per_reader_bw)
        )
        rates.update(
            _stream_rates(
                writers,
                min(storage.peak_bw, len(writers) * storage.per_writer_bw),
                storage.per_writer_bw,
            )
        )

        # Advance to the earliest completion.
        dt = min(t.remaining / rates[id(t)] for t in live)
        now += dt
        events += 1
        for t in live:
            t.remaining -= dt * rates[id(t)]
            if t.remaining <= 1e-9:
                t.finish_current()
                if t.current_kind() is not None:
                    t.start_current()
