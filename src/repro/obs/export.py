"""Trace exporters: Chrome ``trace_event`` JSON and line-delimited JSON.

Two formats, both consumed from a (typically merged) :class:`Recorder`:

* :func:`to_chrome_trace` — the Trace Event Format understood by
  ``about:tracing`` / ``chrome://tracing`` / Perfetto.  Spans become
  complete (``"ph": "X"``) events with microsecond timestamps, one track
  (``tid``) per rank; events become instants (``"ph": "i"``); counters
  become one trailing counter sample (``"ph": "C"``) per name and rank.
* :func:`to_jsonl` — one self-describing JSON object per line (``type`` is
  ``span`` | ``event`` | ``counter``), the format downstream log pipelines
  and ad-hoc ``jq`` analysis want.

Timestamps are normalised so the earliest record in the trace sits at 0.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path
from typing import IO, Any

from repro.obs.recorder import Recorder

__all__ = [
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

#: Process id used for every track; the simulator is one process.
_PID = 0


def _jsonable(value: object) -> object:
    """Coerce arg values to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _jsonable_args(args: Any) -> dict[str, object]:
    return {str(k): _jsonable(v) for k, v in dict(args).items()}


def _time_origin(recorder: Recorder) -> float:
    """Earliest timestamp across spans and events (0.0 for empty traces)."""
    starts = [s.start for s in recorder.spans] + [e.ts for e in recorder.events]
    return min(starts) if starts else 0.0


def to_chrome_trace(recorder: Recorder) -> dict[str, object]:
    """Render a recorder as a Chrome Trace-Event-Format JSON object."""
    origin = _time_origin(recorder)
    us = 1e6  # trace-event timestamps are microseconds

    ranks = sorted(
        {s.rank for s in recorder.spans}
        | {e.rank for e in recorder.events}
    )
    trace: list[dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": rank,
            "args": {"name": f"rank {rank}" if rank >= 0 else "shared"},
        }
        for rank in ranks
    ]
    end_ts = 0.0
    for span in recorder.spans:
        ts = (span.start - origin) * us
        dur = span.duration * us
        end_ts = max(end_ts, ts + dur)
        trace.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": _PID,
                "tid": span.rank,
                "args": _jsonable_args(span.args),
            }
        )
    for event in recorder.events:
        ts = (event.ts - origin) * us
        end_ts = max(end_ts, ts)
        trace.append(
            {
                "name": event.name,
                "cat": event.cat,
                "ph": "i",
                "ts": ts,
                "s": "t",  # thread-scoped instant
                "pid": _PID,
                "tid": event.rank,
                "args": _jsonable_args(event.args),
            }
        )
    # One final sample per counter name: the accumulated total.  (Counters
    # here are run totals, not time series; a single sample keeps the trace
    # valid and the value inspectable in the viewer.)
    for name in recorder.counter_names():
        trace.append(
            {
                "name": name,
                "ph": "C",
                "ts": end_ts,
                "pid": _PID,
                "tid": 0,
                "args": {"value": recorder.total(name)},
            }
        )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def to_jsonl(recorder: Recorder) -> Iterator[str]:
    """Yield one JSON line per span, counter cell, and event."""
    origin = _time_origin(recorder)
    for span in recorder.spans:
        yield json.dumps(
            {
                "type": "span",
                "name": span.name,
                "cat": span.cat,
                "rank": span.rank,
                "start": span.start - origin,
                "duration": span.duration,
                "parent": span.parent,
                "args": _jsonable_args(span.args),
            },
            sort_keys=True,
        )
    for (name, key), value in sorted(
        recorder.counters().items(), key=lambda cell: (cell[0][0], str(cell[0][1]))
    ):
        yield json.dumps(
            {
                "type": "counter",
                "name": name,
                "key": [_jsonable(k) for k in key],
                "value": value,
            },
            sort_keys=True,
        )
    for event in recorder.events:
        yield json.dumps(
            {
                "type": "event",
                "name": event.name,
                "cat": event.cat,
                "rank": event.rank,
                "ts": event.ts - origin,
                "args": _jsonable_args(event.args),
            },
            sort_keys=True,
        )


def _open_target(target: str | Path | IO[str]) -> tuple[IO[str], bool]:
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def write_chrome_trace(recorder: Recorder, target: str | Path | IO[str]) -> None:
    """Serialise :func:`to_chrome_trace` output to a path or file object."""
    fh, owned = _open_target(target)
    try:
        json.dump(to_chrome_trace(recorder), fh, indent=1)
        fh.write("\n")
    finally:
        if owned:
            fh.close()


def write_jsonl(recorder: Recorder, target: str | Path | IO[str]) -> None:
    """Serialise :func:`to_jsonl` output to a path or file object."""
    fh, owned = _open_target(target)
    try:
        for line in to_jsonl(recorder):
            fh.write(line + "\n")
    finally:
        if owned:
            fh.close()
