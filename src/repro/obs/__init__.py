"""Unified instrumentation: spans, counters, and events with trace export.

Every layer of the library measures itself through one
:class:`~repro.obs.recorder.Recorder` API:

* the writer/reader pipelines record **spans** for their phases (the
  paper's Fig. 6 ``aggregation`` vs ``file_io`` split);
* the simulated MPI world records per-pair traffic **counters** (§3.3's
  message counts — :class:`~repro.mpi.stats.TrafficStats` is now a view
  over these);
* storage backends record Darshan-style per-file counters (opens, reads,
  writes, bytes), and the retry policy and fault injector record retry /
  fault **events**.

Per-rank recorders merge at rank 0 (:meth:`Recorder.merged`) and export to
Chrome ``about:tracing`` JSON or JSONL (:mod:`repro.obs.export`), wired
into the ``repro trace`` CLI subcommand.  See ``docs/OBSERVABILITY.md``.

Typical use::

    from repro.obs import Recorder, write_chrome_trace

    rec = Recorder(rank=comm.rank)
    with rec.span("aggregation"):
        ...exchange particles...
    rec.add("io.bytes_written", nbytes, key=(path,))

    merged = Recorder.merged(per_rank_recorders)
    write_chrome_trace(merged, "trace.json")
"""

from repro.obs import names
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import Event, Recorder, Span
from repro.obs.views import (
    file_table,
    retry_summary,
    summary_lines,
    traffic_summary,
)

__all__ = [
    "Recorder",
    "Span",
    "Event",
    "names",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "file_table",
    "retry_summary",
    "traffic_summary",
    "summary_lines",
]
