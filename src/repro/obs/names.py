"""The instrumentation name registry.

Every span, counter, and event name used by the library lives here, so the
whole system shares one vocabulary and exported traces from any layer can be
compared side by side.  Names are dotted strings grouped by subsystem:

* ``PHASE_*`` — writer/reader pipeline phases (span names).  These are the
  labels of the paper's Figure 6; the two bars there are
  :data:`PHASE_AGGREGATION` and :data:`PHASE_FILE_IO`.
* ``MPI_*`` — traffic counters fed by the simulated MPI world, keyed by
  ``(source_rank, dest_rank)``.
* ``IO_*`` — Darshan-style per-file storage counters, keyed by ``(path,)``,
  plus retry/fault counters keyed by ``()`` or ``(kind,)``.
* ``EV_*`` — event (point-in-time) names.
"""

from __future__ import annotations

# -- pipeline phases (span names; Fig. 6 vocabulary) -----------------------

PHASE_SETUP = "setup"
PHASE_AGGREGATION = "aggregation"
PHASE_LOD = "lod"
PHASE_FILE_IO = "file_io"
PHASE_METADATA = "metadata"

#: Every phase the spatially-aware writer records, in pipeline order.
WRITER_PHASES = (
    PHASE_SETUP,
    PHASE_AGGREGATION,
    PHASE_LOD,
    PHASE_FILE_IO,
    PHASE_METADATA,
)

#: Phases the reader records (planning is metadata work; execution is I/O).
READER_PHASES = (PHASE_METADATA, PHASE_FILE_IO)

# -- MPI traffic counters (keyed by (source, dest) world ranks) -------------

MPI_MESSAGES = "mpi.messages"
MPI_BYTES = "mpi.bytes"
#: Collective operations initiated, keyed by (communicator-local rank,).
MPI_COLLECTIVES = "mpi.collectives"

# -- storage counters (Darshan-style, keyed by (path,)) ---------------------

IO_OPENS = "io.opens"
IO_READS = "io.reads"
IO_WRITES = "io.writes"
IO_BYTES_READ = "io.bytes_read"
IO_BYTES_WRITTEN = "io.bytes_written"

#: Per-file counter names, in the order the Darshan-style table prints them.
IO_FILE_COUNTERS = (
    IO_OPENS,
    IO_READS,
    IO_WRITES,
    IO_BYTES_READ,
    IO_BYTES_WRITTEN,
)

# -- repair subsystem (spans / counters; see repro.core.repair) -------------

PHASE_REPAIR_SCRUB = "repair.scrub"
PHASE_REPAIR_PLAN = "repair.plan"
PHASE_REPAIR_EXECUTE = "repair.execute"
PHASE_REPAIR_VERIFY = "repair.verify"

#: Every phase one repair pass records, in pipeline order.
REPAIR_PHASES = (
    PHASE_REPAIR_SCRUB,
    PHASE_REPAIR_PLAN,
    PHASE_REPAIR_EXECUTE,
    PHASE_REPAIR_VERIFY,
)

#: Repair actions executed, keyed by (action kind,).
REPAIR_ACTIONS = "repair.actions"
REPAIR_PARTICLES_SALVAGED = "repair.particles_salvaged"
REPAIR_PARTICLES_LOST = "repair.particles_lost"
REPAIR_FILES_QUARANTINED = "repair.files_quarantined"

# -- generation chain / compaction (see repro.format.generations,
# repro.core.compact) --------------------------------------------------------

PHASE_COMPACT_PLAN = "compact.plan"
PHASE_COMPACT_REWRITE = "compact.rewrite"
PHASE_COMPACT_GC = "compact.gc"

#: Every phase one compaction pass records, in pipeline order.
COMPACT_PHASES = (
    PHASE_COMPACT_PLAN,
    PHASE_COMPACT_REWRITE,
    PHASE_COMPACT_GC,
)

#: Small files merged into consolidated output, keyed by ().
COMPACT_FILES_MERGED = "compact.files_merged"
#: Files deleted by retention-driven GC, keyed by ().
COMPACT_FILES_GCED = "compact.files_gced"
#: Bytes reclaimed by GC, keyed by ().
COMPACT_BYTES_RECLAIMED = "compact.bytes_reclaimed"

#: Generation commits (CURRENT flips), keyed by ().
GEN_COMMITS = "generation.commits"
#: Resolutions that had to fall back past a damaged/dangling CURRENT,
#: keyed by ().
GEN_FALLBACKS = "generation.fallbacks"

# -- raw-speed read path (keyed by (path,); see repro.io.posix) --------------

#: Read ops served zero-copy from a pooled mmap view.
IO_MMAP_HITS = "io.mmap_hit"
#: Read ops that fell back to fd-based ``pread``/``preadv`` (file too large
#: for the mapping budget, empty file, or mmap disabled).
IO_MMAP_MISSES = "io.mmap_miss"
#: Open handles reused from the backend's LRU pool (the saved ``open``
#: syscalls satellite — every reuse is one open the legacy path would pay).
IO_HANDLE_REUSES = "io.handle_reuse"

# -- decode path (keyed by (path,); see repro.query.engine) ------------------

#: Coalesced runs/segment groups decoded as single vectorized passes
#: (one numpy frombuffer+reshape instead of a per-chunk Python loop).
DECODE_VECTORIZED_RUNS = "decode.vectorized_runs"

# -- executor (span; see repro.io.executor) ----------------------------------

#: One executor batch (span; args: tasks, workers, queue_depth, mode).
SPAN_EXECUTOR_RUN = "executor.run"

# -- block cache counters (keyed by (path,); see repro.io.cache) ------------

CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
CACHE_EVICT = "cache.evict"

# -- local-disk cache tier (keyed by (path,); see repro.io.diskcache) --------

CACHE_DISK_HIT = "cache.disk_hit"
CACHE_DISK_MISS = "cache.disk_miss"
CACHE_DISK_EVICT = "cache.disk_evict"

# -- remote object store (see repro.io.remote) -------------------------------

#: Requests issued to the remote transport, keyed by (op,):
#: "get", "get_range", "get_ranges", "put", "head", "list", "delete".
REMOTE_REQUESTS = "remote.requests"
#: Payload bytes moved over the transport, keyed by (op,).
REMOTE_BYTES = "remote.bytes"
#: Accumulated request cost in micro-units (1e-6 of the configured cost
#: unit — integers keep counter sums exact), keyed by ().
REMOTE_COST_MICRO = "remote.cost_micro"
#: Simulated/observed seconds spent inside transport requests, keyed by ().
REMOTE_TIME = "remote.time"
#: Requests that exceeded their per-request timeout budget, keyed by ().
REMOTE_TIMEOUTS = "remote.timeouts"
#: Requests refused because the store was down (outage window), keyed by ().
REMOTE_UNAVAILABLE = "remote.unavailable"

# -- resilience layer (see repro.io.resilience) ------------------------------

#: Circuit-breaker state transitions, keyed by (to_state,):
#: "open", "half-open", "closed".
BREAKER_TRANSITIONS = "breaker.transitions"
#: Requests failed fast by an open breaker (no remote traffic), keyed by
#: (path,).
BREAKER_FAST_FAILS = "breaker.fast_fails"
#: Hedged (second) requests launched after the latency trigger, keyed by ().
HEDGE_LAUNCHED = "hedge.launched"
#: Hedges whose second request finished first, keyed by ().
HEDGE_WINS = "hedge.wins"
#: Hedges whose primary won anyway (the hedge was wasted cost), keyed by ().
HEDGE_WASTED = "hedge.wasted"
#: Operations shed because the deadline had already expired, keyed by ().
DEADLINE_SHED = "deadline.shed"

# -- serving layer (spans / counters; see repro.serve) ----------------------

#: One dispatched batch of admitted queries (span; args: width, queue_depth).
SPAN_SERVER_BATCH = "server.batch"

#: Queries admitted, keyed by (client,).
SERVER_QUERIES = "server.queries"
#: Admission rejections, keyed by (reason,): "closed", "queue-full",
#: "client-inflight", "client-bytes", "unknown-dataset", "deadline".
SERVER_REJECTED = "server.rejected"
#: Batches dispatched, keyed by ().
SERVER_BATCHES = "server.batches"
#: Sum of batch widths, keyed by () (divide by SERVER_BATCHES for the mean).
SERVER_BATCH_WIDTH = "server.batch_width"
#: Sum of queue depths sampled at each dispatch, keyed by ().
SERVER_QUEUE_DEPTH = "server.queue_depth"
#: Result bytes delivered, keyed by (client,).
SERVER_CLIENT_BYTES = "server.client_bytes"
#: Backend read ops avoided by cross-query staging, keyed by ().
SERVER_OPS_SAVED = "server.ops_saved"
#: Files pre-read once for multiple queries by the batch planner, keyed by ().
SERVER_STAGED_FILES = "server.staged_files"

# -- retry / fault counters -------------------------------------------------

IO_ATTEMPTS = "io.attempts"
IO_RETRIES = "io.retries"
IO_GIVEUPS = "io.giveups"
#: Injected/observed faults, keyed by (fault kind,).
IO_FAULTS = "io.faults"

# -- events -----------------------------------------------------------------

EV_RETRY = "io.retry"
EV_GIVEUP = "io.giveup"
EV_FAULT = "io.fault"
EV_PARTITION_READ = "read.partition"
EV_PARTITION_SKIPPED = "read.skip"
EV_CHUNK_SKIPPED = "read.chunk_skip"
EV_PREFIX_VERIFIED = "read.prefix_verified"
EV_REPAIR_ACTION = "repair.action"
EV_GENERATION_COMMIT = "generation.commit"
EV_CURRENT_FALLBACK = "generation.fallback"
EV_SERVER_REJECT = "server.reject"
#: Circuit-breaker state change (args: path, from, to, failures).
EV_BREAKER_STATE = "breaker.state"
#: A hedged second request was launched (args: path, op, waited_s).
EV_HEDGE = "hedge.launch"
#: An operation was shed because its deadline expired (args: path, op).
EV_DEADLINE_SHED = "deadline.shed_op"
