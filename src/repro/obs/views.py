"""Derived views over a recorder: the tables the old ad-hoc stats provided.

These are pure functions of a :class:`~repro.obs.recorder.Recorder` — no
state of their own — which is the point of the refactor: the writer's
``breakdown``, the world's traffic totals, the retry ledger, and the
Darshan-style per-file table are all different projections of the same
record stream.
"""

from __future__ import annotations

from repro.obs import names
from repro.obs.recorder import Recorder

__all__ = ["file_table", "retry_summary", "traffic_summary", "summary_lines"]


def file_table(recorder: Recorder) -> dict[str, dict[str, float]]:
    """Darshan-style per-file counters: ``path -> {counter: value}``.

    Counter columns are :data:`~repro.obs.names.IO_FILE_COUNTERS` (opens,
    reads, writes, bytes read, bytes written); files appear if any storage
    counter touched them.
    """
    out: dict[str, dict[str, float]] = {}
    for name in names.IO_FILE_COUNTERS:
        for key, value in recorder.series(name).items():
            if not key:
                continue
            path = str(key[0])
            out.setdefault(path, {n: 0.0 for n in names.IO_FILE_COUNTERS})
            out[path][name] = value
    return dict(sorted(out.items()))


def retry_summary(recorder: Recorder) -> dict[str, float]:
    """Attempt/retry/giveup totals plus injected-fault counts by kind."""
    out = {
        "attempts": recorder.total(names.IO_ATTEMPTS),
        "retries": recorder.total(names.IO_RETRIES),
        "giveups": recorder.total(names.IO_GIVEUPS),
    }
    for key, value in recorder.series(names.IO_FAULTS).items():
        kind = str(key[0]) if key else "unknown"
        out[f"faults.{kind}"] = value
    return out


def traffic_summary(recorder: Recorder) -> dict[str, float]:
    """Message/byte totals, with self-sends split out (network models
    exclude a rank delivering to itself)."""
    messages = sum(recorder.series(names.MPI_MESSAGES).values())
    bytes_total = self_bytes = 0.0
    for (src, dst), nbytes in recorder.series(names.MPI_BYTES).items():
        bytes_total += nbytes
        if src == dst:
            self_bytes += nbytes
    return {
        "messages": messages,
        "bytes": bytes_total,
        "offrank_bytes": bytes_total - self_bytes,
        "collectives": recorder.total(names.MPI_COLLECTIVES),
    }


def summary_lines(recorder: Recorder) -> list[str]:
    """A human-readable digest (what ``repro trace`` prints)."""
    lines: list[str] = []
    phases = recorder.phase_totals()
    if phases:
        total = sum(phases.values())
        lines.append("phases:")
        for name, seconds in sorted(phases.items()):
            pct = 100.0 * seconds / total if total else 0.0
            lines.append(f"  {name:<14s} {seconds:10.4f}s  ({pct:5.1f}%)")
    traffic = traffic_summary(recorder)
    if traffic["messages"]:
        lines.append(
            f"traffic: {int(traffic['messages'])} messages, "
            f"{int(traffic['bytes'])} bytes "
            f"({int(traffic['offrank_bytes'])} off-rank)"
        )
    retries = retry_summary(recorder)
    if any(retries.values()):
        lines.append(
            f"retries: {int(retries['retries'])} retries / "
            f"{int(retries['attempts'])} attempts, "
            f"{int(retries['giveups'])} giveups"
        )
    files = file_table(recorder)
    if files:
        lines.append(f"files touched: {len(files)}")
    if not lines:
        lines.append("<empty recorder>")
    return lines
