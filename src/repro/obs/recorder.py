"""The per-rank instrumentation recorder: spans + counters + events.

One :class:`Recorder` accumulates everything a rank (or a shared component,
like the MPI world or a storage backend) observes:

* **spans** — named intervals with wall-clock start/duration, used for the
  writer/reader pipeline phases (Fig. 6's ``aggregation`` / ``file_io``
  split).  Spans nest: a span opened while another is active records its
  parent, and the Chrome-trace exporter renders the nesting.
* **counters** — monotonically accumulated ``(name, key) -> float`` cells.
  The key tuple carries the dimension: ``(source, dest)`` for MPI traffic,
  ``(path,)`` for Darshan-style per-file storage counters, ``()`` for plain
  scalars like retry counts.
* **events** — timestamped points (a retry, an injected fault, a skipped
  partition) with free-form ``args``.

Recorders are thread-safe (simulated ranks are threads) and cheap: when
nothing reads them back, the overhead is one lock acquisition and a list
append per record.

The clock is injectable.  Production uses ``time.perf_counter``; tests pass
a fake with deterministic increments so span durations — and therefore the
derived :class:`~repro.utils.timing.TimeBreakdown` percentages — are exact.

Cross-rank aggregation is a rank-0 concern: :meth:`Recorder.merged` folds
any number of per-rank recorders into one (spans and events concatenate,
counter cells sum), which is what the exporters and the ``repro trace`` CLI
consume.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Hashable, Iterable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.utils.timing import TimeBreakdown

__all__ = ["Span", "Event", "Recorder"]

#: A counter key: a tuple of hashables naming one cell of a counter series.
Key = tuple[Hashable, ...]


@dataclass(frozen=True)
class Span:
    """One completed named interval on one rank."""

    name: str
    rank: int
    start: float
    duration: float
    cat: str = "phase"
    parent: str | None = None
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Event:
    """One timestamped point-in-time observation."""

    name: str
    rank: int
    ts: float
    cat: str = "event"
    args: Mapping[str, object] = field(default_factory=dict)


class Recorder:
    """Accumulates spans, counters, and events for one rank (or component).

    ``rank`` tags every record (it becomes the Chrome-trace thread id);
    shared components that are not a rank use ``rank=-1``.
    """

    def __init__(
        self,
        rank: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.rank = rank
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self._clock = clock
        self._counters: dict[tuple[str, Key], float] = {}
        self._lock = threading.RLock()
        self._stacks = threading.local()

    def now(self) -> float:
        """The recorder's current clock reading (seconds, arbitrary epoch)."""
        return float(self._clock())

    # -- spans --------------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "phase",
        rank: int | None = None,
        **args: object,
    ) -> Iterator[None]:
        """Measure a named interval; nested spans record their parent."""
        stack: list[str] = getattr(self._stacks, "names", None) or []
        self._stacks.names = stack
        parent = stack[-1] if stack else None
        stack.append(name)
        start = self.now()
        try:
            yield
        finally:
            end = self.now()
            stack.pop()
            with self._lock:
                self.spans.append(
                    Span(
                        name=name,
                        rank=self.rank if rank is None else rank,
                        start=start,
                        duration=end - start,
                        cat=cat,
                        parent=parent,
                        args=dict(args),
                    )
                )

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        cat: str = "phase",
        rank: int | None = None,
        parent: str | None = None,
        **args: object,
    ) -> Span:
        """Record an already-measured (or modelled) interval directly.

        This is how the performance models report: they compute phase times
        analytically and deposit them as spans, so model estimates and real
        measurements flow through the same views and exporters.
        """
        if duration < 0:
            raise ValueError(f"negative span duration {duration!r} for {name!r}")
        span = Span(
            name=name,
            rank=self.rank if rank is None else rank,
            start=start,
            duration=duration,
            cat=cat,
            parent=parent,
            args=dict(args),
        )
        with self._lock:
            self.spans.append(span)
        return span

    # -- counters -----------------------------------------------------------

    def add(self, name: str, value: float = 1.0, key: Key = ()) -> None:
        """Accumulate ``value`` into counter cell ``(name, key)``."""
        key = tuple(key)
        with self._lock:
            self._counters[(name, key)] = self._counters.get((name, key), 0.0) + value

    def value(self, name: str, key: Key = ()) -> float:
        """Current value of one counter cell (0.0 if never touched)."""
        with self._lock:
            return self._counters.get((name, tuple(key)), 0.0)

    def series(self, name: str) -> dict[Key, float]:
        """All cells of one counter: ``key -> value``."""
        with self._lock:
            return {k: v for (n, k), v in self._counters.items() if n == name}

    def total(self, name: str) -> float:
        """Sum of one counter over all its keys."""
        with self._lock:
            return sum(v for (n, _k), v in self._counters.items() if n == name)

    def counters(self) -> dict[tuple[str, Key], float]:
        """An immutable snapshot of every counter cell."""
        with self._lock:
            return dict(self._counters)

    def counter_names(self) -> list[str]:
        with self._lock:
            return sorted({n for (n, _k) in self._counters})

    def clear_counter(self, name: str) -> None:
        """Drop every cell of one counter (compatibility-view resets)."""
        with self._lock:
            for cell in [c for c in self._counters if c[0] == name]:
                del self._counters[cell]

    # -- events -------------------------------------------------------------

    def event(
        self,
        name: str,
        cat: str = "event",
        rank: int | None = None,
        **args: object,
    ) -> Event:
        ev = Event(
            name=name,
            rank=self.rank if rank is None else rank,
            ts=self.now(),
            cat=cat,
            args=dict(args),
        )
        with self._lock:
            self.events.append(ev)
        return ev

    def events_named(self, name: str) -> list[Event]:
        with self._lock:
            return [e for e in self.events if e.name == name]

    def event_mark(self) -> int:
        """A position in the event log; pass to :meth:`events_since`."""
        with self._lock:
            return len(self.events)

    def events_since(self, mark: int) -> list[Event]:
        with self._lock:
            return list(self.events[mark:])

    # -- derived views -------------------------------------------------------

    def phase_totals(
        self, rank: int | None = None, cat: str | None = None
    ) -> dict[str, float]:
        """Accumulated seconds per span name (optionally filtered)."""
        out: dict[str, float] = {}
        with self._lock:
            for s in self.spans:
                if rank is not None and s.rank != rank:
                    continue
                if cat is not None and s.cat != cat:
                    continue
                out[s.name] = out.get(s.name, 0.0) + s.duration
        return out

    def breakdown(
        self, rank: int | None = None, cat: str | None = None
    ) -> TimeBreakdown:
        """The classic Fig. 6 view, derived from recorded spans."""
        return TimeBreakdown(self.phase_totals(rank=rank, cat=cat))

    # -- merging -------------------------------------------------------------

    def child(self) -> "Recorder":
        """A fresh, empty recorder sharing this one's rank and clock.

        This is the worker-side half of concurrent instrumentation: an
        :class:`~repro.io.executor.IoExecutor` hands every task its own
        child recorder, and the caller merges the children back in
        submission order — so records from concurrently executing tasks
        never interleave in the parent, and derived views (e.g.
        ``ReadReport.from_events``) see the same stream serial execution
        would have produced.
        """
        return Recorder(rank=self.rank, clock=self._clock)

    def snapshot(self) -> tuple[list[Span], list[Event], dict[tuple[str, Key], float]]:
        """A picklable image of everything recorded so far.

        :class:`Span`/:class:`Event` are frozen dataclasses of plain
        values, so the snapshot crosses process boundaries — this is how
        the process executor ships a worker's child recorder back to the
        parent (:meth:`absorb` on the receiving side).  The recorder
        itself is *not* picklable (it holds a lock and thread-local span
        stacks); snapshots are the transport format.
        """
        with self._lock:
            return (list(self.spans), list(self.events), dict(self._counters))

    def absorb(self, snap) -> "Recorder":
        """Fold a :meth:`snapshot` into this recorder in place."""
        spans, events, counters = snap
        with self._lock:
            self.spans.extend(spans)
            self.events.extend(events)
            for cell, v in counters.items():
                self._counters[cell] = self._counters.get(cell, 0.0) + v
        return self

    def merge(self, other: "Recorder") -> "Recorder":
        """Fold ``other`` into this recorder in place; returns ``self``.

        Spans and events concatenate (each carries its own rank); counter
        cells sum.  The canonical use is rank 0 merging every rank's
        recorder after a collective operation.
        """
        with other._lock:
            spans = list(other.spans)
            events = list(other.events)
            counters = dict(other._counters)
        with self._lock:
            self.spans.extend(spans)
            self.events.extend(events)
            for cell, v in counters.items():
                self._counters[cell] = self._counters.get(cell, 0.0) + v
        return self

    @classmethod
    def merged(cls, recorders: Iterable["Recorder"]) -> "Recorder":
        """A new rank-0 recorder holding every input's records."""
        out = cls(rank=0)
        for rec in recorders:
            out.merge(rec)
        return out

    # -- housekeeping --------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.events.clear()
            self._counters.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Recorder(rank={self.rank}, spans={len(self.spans)}, "
                f"counters={len(self._counters)}, events={len(self.events)})"
            )
