"""A remote object-store backend: high latency, per-request cost, range GETs.

Object stores (S3 and its lookalikes) invert the economics the rest of the
library was tuned on: a request costs milliseconds of round trip and real
money, bandwidth is good once a transfer is streaming, and any request can
transiently fail or stall.  :class:`RemoteBackend` implements the full
:class:`~repro.io.backend.FileBackend` contract over a pluggable
:class:`Transport`, so everything above it — chunk-pruned plans, readv
scatter-gather, the cache tiers, retry/fault machinery, the serving layer —
works against a remote store unchanged.  Two transports ship:

* :class:`SimulatedTransport` — the default for tests/benchmarks, in the
  spirit of :mod:`repro.perf`'s machine models: configurable RTT,
  bandwidth, deterministic jitter, per-request + per-byte cost, and a
  virtual clock (no real sleeping) so a 100 ms-RTT benchmark runs in
  microseconds.  An :class:`OutagePlan` scripts outage windows and latency
  spikes by request ordinal — the chaos matrix's knob.
* :class:`HttpTransport` — a real HTTP(S) range-GET client built on the
  stdlib only (``urllib.request``; never a third-party dependency), for
  pointing the stack at any server that honours ``Range`` headers.

Request accounting is the point (the openPMD+Darshan lesson: per-request
numbers are what make remote I/O tunable): every transport request lands on
an attached recorder as ``remote.requests`` / ``remote.bytes`` (keyed by
op), ``remote.cost_micro`` (integer micro-units, so counter sums stay
exact), and ``remote.time`` seconds.  ``readv`` is one *multi-range GET*:
one request's RTT and cost amortised over every segment of a coalesced
chunk-run plan, which is exactly why the planner coalesces.

Resilience (deadlines, hedging, circuit breaking, cache fallback) is
deliberately **not** here — wrap a :class:`RemoteBackend` in
:class:`repro.io.resilience.ResilientBackend` (see
:func:`repro.io.resilience.build_remote_stack` for the full production
stack).
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import (
    BackendError,
    ConfigError,
    RemoteUnavailableError,
    RequestTimeoutError,
)
from repro.io.backend import FileBackend
from repro.obs.names import (
    REMOTE_BYTES,
    REMOTE_COST_MICRO,
    REMOTE_REQUESTS,
    REMOTE_TIME,
    REMOTE_TIMEOUTS,
    REMOTE_UNAVAILABLE,
)

__all__ = [
    "Transport",
    "TransportStats",
    "OutagePlan",
    "SimulatedTransport",
    "HttpTransport",
    "RemoteBackend",
]


@dataclass
class TransportStats:
    """Lifetime accounting one transport accumulates (thread-safe holder)."""

    requests: int = 0
    bytes_moved: int = 0
    #: accumulated cost in the configured cost unit (float; the obs counter
    #: carries the same total as integer micro-units).
    cost: float = 0.0
    #: seconds spent inside requests (virtual seconds for the simulator).
    time_s: float = 0.0
    timeouts: int = 0
    unavailable: int = 0

    def snapshot(self) -> "TransportStats":
        return TransportStats(
            requests=self.requests,
            bytes_moved=self.bytes_moved,
            cost=self.cost,
            time_s=self.time_s,
            timeouts=self.timeouts,
            unavailable=self.unavailable,
        )


class Transport(ABC):
    """The wire protocol under a :class:`RemoteBackend`.

    Implementations raise :class:`~repro.errors.RemoteUnavailableError`
    for refused/dropped requests, :class:`~repro.errors.RequestTimeoutError`
    when ``timeout`` (seconds, ``None`` = unlimited) is exceeded, and plain
    :class:`~repro.errors.BackendError` for permanent failures (404s).
    Every implementation keeps a :class:`TransportStats`.
    """

    def __init__(self) -> None:
        self.stats = TransportStats()
        self._stats_lock = threading.Lock()

    def _account(self, nbytes: int, cost: float, elapsed: float) -> None:
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.bytes_moved += nbytes
            self.stats.cost += cost
            self.stats.time_s += elapsed

    @abstractmethod
    def get(self, path: str, timeout: float | None = None) -> bytes:
        """Fetch a whole object."""

    @abstractmethod
    def get_ranges(
        self,
        path: str,
        ranges: list[tuple[int, int]],
        timeout: float | None = None,
    ) -> list[bytes]:
        """Multi-range GET: one request serving every ``(offset, length)``."""

    @abstractmethod
    def put(self, path: str, data: bytes, timeout: float | None = None) -> None:
        """Store a whole object (create or replace)."""

    @abstractmethod
    def head(self, path: str, timeout: float | None = None) -> int | None:
        """Object size in bytes, or ``None`` if it does not exist."""

    @abstractmethod
    def list(self, prefix: str, timeout: float | None = None) -> list[str]:
        """Names directly under directory ``prefix``."""

    @abstractmethod
    def delete(self, path: str, timeout: float | None = None) -> None:
        """Remove an object (missing objects are a no-op, S3-style)."""


@dataclass(frozen=True)
class OutagePlan:
    """Scripted misbehaviour windows, addressed by request ordinal.

    Deterministic by construction (ordinals, not wall clock): request
    numbers in ``[start, stop)`` of a ``down`` window raise
    :class:`~repro.errors.RemoteUnavailableError` before any work; windows
    in ``slow`` multiply the request's simulated latency by ``factor``.
    ``down_after`` is the open-ended form (every request from that ordinal
    on fails) — the "store hard-down mid-burst" chaos scenario — until
    :meth:`SimulatedTransport.heal` lifts it.
    """

    #: half-open ``[start, stop)`` ordinal windows that fail outright.
    down: tuple[tuple[int, int], ...] = ()
    #: ``(start, stop, factor)`` ordinal windows with inflated latency.
    slow: tuple[tuple[int, int, float], ...] = ()
    #: every request with ordinal >= this fails (None = never).
    down_after: int | None = None

    def latency_factor(self, ordinal: int) -> float:
        factor = 1.0
        for start, stop, f in self.slow:
            if start <= ordinal < stop:
                factor *= f
        return factor

    def is_down(self, ordinal: int) -> bool:
        if self.down_after is not None and ordinal >= self.down_after:
            return True
        return any(start <= ordinal < stop for start, stop in self.down)


class SimulatedTransport(Transport):
    """An object store simulated over any local :class:`FileBackend`.

    ``store`` holds the truth (a :class:`~repro.io.virtual.VirtualBackend`
    in tests, a :class:`~repro.io.posix.PosixBackend` for CLI demos); this
    transport adds the remote-shaped physics on top:

    * latency per request = ``rtt_s * (1 + jitter * u(seed, n)) +
      bytes / bandwidth``, with ``u`` the same Weyl-style deterministic
      hash the retry policy uses — two runs of one workload see identical
      latencies;
    * cost per request = ``cost_per_request + nbytes * cost_per_gb / 1 GiB``;
    * a **virtual clock** by default: latency accumulates on
      :attr:`virtual_time_s` instead of sleeping, so RTT sweeps are free.
      Pass ``real_sleep=True`` to actually block (demo realism);
    * an :class:`OutagePlan` (or :meth:`fail` / :meth:`heal` toggles) for
      chaos scripting;
    * ``timeout`` honoured: a request whose simulated latency exceeds it
      charges the timeout's worth of time/cost, then raises
      :class:`~repro.errors.RequestTimeoutError`.
    """

    def __init__(
        self,
        store: FileBackend,
        *,
        rtt_s: float = 0.05,
        bandwidth: float = 100e6,
        jitter: float = 0.1,
        cost_per_request: float = 4e-7,
        cost_per_gb: float = 0.09,
        seed: int = 0,
        outages: OutagePlan | None = None,
        real_sleep: bool = False,
        sleep=time.sleep,
    ):
        super().__init__()
        if rtt_s < 0 or bandwidth <= 0 or jitter < 0:
            raise ConfigError(
                "rtt_s and jitter must be >= 0, bandwidth must be > 0"
            )
        self.store = store
        self.rtt_s = float(rtt_s)
        self.bandwidth = float(bandwidth)
        self.jitter = float(jitter)
        self.cost_per_request = float(cost_per_request)
        self.cost_per_gb = float(cost_per_gb)
        self.seed = int(seed)
        self.outages = outages if outages is not None else OutagePlan()
        self.real_sleep = real_sleep
        self._sleep = sleep
        self._lock = threading.Lock()
        self._ordinal = 0
        self._forced_down = False
        #: simulated seconds accumulated across all requests (virtual mode).
        self.virtual_time_s = 0.0

    # -- chaos toggles -------------------------------------------------------

    def fail(self) -> None:
        """Hard-down the store now (every request fails until healed)."""
        with self._lock:
            self._forced_down = True

    def heal(self) -> None:
        """Lift both the forced outage and any open-ended plan window."""
        with self._lock:
            self._forced_down = False
            if self.outages.down_after is not None:
                self.outages = OutagePlan(
                    down=self.outages.down, slow=self.outages.slow
                )

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._forced_down or self.outages.is_down(self._ordinal)

    # -- latency / cost model ------------------------------------------------

    def _unit(self, ordinal: int) -> float:
        """Deterministic jitter draw in [0, 1) for request ``ordinal``."""
        h = ((self.seed * 40503 + ordinal + 1) * 2654435761) & 0xFFFFFFFF
        return h / 2**32

    def latency_for(self, ordinal: int, nbytes: int) -> float:
        base = self.rtt_s * (1.0 + self.jitter * self._unit(ordinal))
        return base * self.outages.latency_factor(ordinal) + nbytes / self.bandwidth

    def cost_for(self, nbytes: int) -> float:
        return self.cost_per_request + nbytes * self.cost_per_gb / 2**30

    def _request(self, nbytes: int, timeout: float | None):
        """Admission + physics for one request; returns the charged latency.

        Raises before touching the store on an outage; raises
        :class:`~repro.errors.RequestTimeoutError` (after charging
        ``timeout`` seconds of latency and the request's cost — the wire
        time was spent even though no bytes arrived) on a too-slow request.
        """
        with self._lock:
            ordinal = self._ordinal
            self._ordinal += 1
            down = self._forced_down or self.outages.is_down(ordinal)
        cost = self.cost_for(nbytes)
        if down:
            # A refused request still burns a round trip.
            latency = self.rtt_s
            self._spend(latency)
            self._account(0, self.cost_per_request, latency)
            with self._stats_lock:
                self.stats.unavailable += 1
            raise RemoteUnavailableError(
                f"simulated outage: request #{ordinal} refused"
            )
        latency = self.latency_for(ordinal, nbytes)
        if timeout is not None and latency > timeout:
            self._spend(timeout)
            self._account(0, cost, timeout)
            with self._stats_lock:
                self.stats.timeouts += 1
            raise RequestTimeoutError(
                f"simulated request #{ordinal} needed {latency * 1e3:.1f} ms, "
                f"timeout was {timeout * 1e3:.1f} ms"
            )
        self._spend(latency)
        self._account(nbytes, cost, latency)
        return latency

    def _spend(self, seconds: float) -> None:
        if self.real_sleep:
            self._sleep(seconds)
        with self._lock:
            self.virtual_time_s += seconds

    # -- Transport interface -------------------------------------------------

    def get(self, path: str, timeout: float | None = None) -> bytes:
        data = self.store.read_file(path)
        self._request(len(data), timeout)
        return data

    def get_ranges(
        self,
        path: str,
        ranges: list[tuple[int, int]],
        timeout: float | None = None,
    ) -> list[bytes]:
        parts = [
            self.store.read_range(path, offset, length)
            for offset, length in ranges
        ]
        self._request(sum(len(p) for p in parts), timeout)
        return parts

    def put(self, path: str, data: bytes, timeout: float | None = None) -> None:
        self._request(len(data), timeout)
        self.store.write_file(path, data)

    def head(self, path: str, timeout: float | None = None) -> int | None:
        self._request(0, timeout)
        if not self.store.exists(path):
            return None
        return self.store.size(path)

    def list(self, prefix: str, timeout: float | None = None) -> list[str]:
        self._request(0, timeout)
        return self.store.listdir(prefix)

    def delete(self, path: str, timeout: float | None = None) -> None:
        self._request(0, timeout)
        self.store.delete(path, missing_ok=True)

    def __repr__(self) -> str:
        return (
            f"SimulatedTransport(rtt={self.rtt_s * 1e3:.1f}ms, "
            f"bw={self.bandwidth / 1e6:.0f}MB/s, "
            f"requests={self.stats.requests}, "
            f"cost={self.stats.cost:.6f})"
        )


class HttpTransport(Transport):
    """Range-GET transport over plain HTTP(S), stdlib only.

    ``base_url`` is the object-store root; backend paths append to it.
    Uses ``urllib.request`` — no third-party client is ever imported, so
    the module is importable everywhere and the real-network path is
    strictly opt-in.  Servers must honour ``Range`` for ranged reads
    (S3-compatible endpoints and real HTTP servers do; a 200-to-a-Range
    response is rejected rather than silently over-reading).  Multi-range
    requests are issued as per-range GETs (multipart/byteranges parsing
    buys little against HTTP/1.1 keep-alive and complicates every proxy).

    Network errors surface as :class:`~repro.errors.RemoteUnavailableError`
    (connection refused/reset, 5xx) so the resilience layer's breaker and
    the retry policy treat a flaky endpoint exactly like a simulated one;
    404s are permanent :class:`~repro.errors.BackendError`.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 30.0):
        super().__init__()
        if not base_url.startswith(("http://", "https://")):
            raise ConfigError(f"base_url must be http(s)://, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _url(self, path: str) -> str:
        from urllib.parse import quote

        return f"{self.base_url}/{quote(path)}"

    def _open(self, request, timeout: float | None):
        import socket
        from urllib.error import HTTPError, URLError
        from urllib.request import urlopen

        effective = self.timeout_s if timeout is None else min(timeout, self.timeout_s)
        try:
            return urlopen(request, timeout=effective)  # noqa: S310 — caller-supplied endpoint
        except HTTPError as exc:
            if exc.code in (404, 410):
                raise BackendError(
                    f"{request.full_url}: HTTP {exc.code}"
                ) from exc
            if exc.code in (408, 429) or exc.code >= 500:
                raise RemoteUnavailableError(
                    f"{request.full_url}: HTTP {exc.code}"
                ) from exc
            raise BackendError(f"{request.full_url}: HTTP {exc.code}") from exc
        except socket.timeout as exc:
            with self._stats_lock:
                self.stats.timeouts += 1
            raise RequestTimeoutError(
                f"{request.full_url}: timed out after {effective}s"
            ) from exc
        except URLError as exc:
            if isinstance(exc.reason, socket.timeout):
                with self._stats_lock:
                    self.stats.timeouts += 1
                raise RequestTimeoutError(
                    f"{request.full_url}: timed out after {effective}s"
                ) from exc
            with self._stats_lock:
                self.stats.unavailable += 1
            raise RemoteUnavailableError(
                f"{request.full_url}: {exc.reason}"
            ) from exc

    def _fetch(
        self,
        path: str,
        headers: dict[str, str],
        timeout: float | None,
        method: str = "GET",
        data: bytes | None = None,
    ):
        from urllib.request import Request

        start = time.monotonic()
        request = Request(  # noqa: S310
            self._url(path), headers=headers, method=method, data=data
        )
        with self._open(request, timeout) as resp:
            body = resp.read() if method in ("GET",) else b""
            status = resp.status
        nbytes = len(body) + len(data or b"")
        self._account(nbytes, 0.0, time.monotonic() - start)
        return status, body

    def get(self, path: str, timeout: float | None = None) -> bytes:
        _status, body = self._fetch(path, {}, timeout)
        return body

    def get_ranges(
        self,
        path: str,
        ranges: list[tuple[int, int]],
        timeout: float | None = None,
    ) -> list[bytes]:
        parts: list[bytes] = []
        for offset, length in ranges:
            if length == 0:
                parts.append(b"")
                continue
            headers = {"Range": f"bytes={offset}-{offset + length - 1}"}
            status, body = self._fetch(path, headers, timeout)
            if status != 206:
                raise BackendError(
                    f"{path!r}: server ignored Range (HTTP {status}); "
                    "refusing to over-read"
                )
            if len(body) != length:
                raise BackendError(
                    f"{path!r}: range [{offset}, +{length}) returned "
                    f"{len(body)} bytes"
                )
            parts.append(body)
        return parts

    def put(self, path: str, data: bytes, timeout: float | None = None) -> None:
        self._fetch(path, {}, timeout, method="PUT", data=data)

    def head(self, path: str, timeout: float | None = None) -> int | None:
        from urllib.request import Request

        start = time.monotonic()
        request = Request(self._url(path), method="HEAD")  # noqa: S310
        try:
            with self._open(request, timeout) as resp:
                size = int(resp.headers.get("Content-Length", 0))
        except BackendError as exc:
            if isinstance(exc, (RemoteUnavailableError, RequestTimeoutError)):
                raise
            return None
        self._account(0, 0.0, time.monotonic() - start)
        return size

    def list(self, prefix: str, timeout: float | None = None) -> list[str]:
        raise BackendError(
            "HttpTransport cannot list directories (no common protocol); "
            "use a manifest-driven open, which never lists"
        )

    def delete(self, path: str, timeout: float | None = None) -> None:
        try:
            self._fetch(path, {}, timeout, method="DELETE")
        except BackendError as exc:
            if isinstance(exc, (RemoteUnavailableError, RequestTimeoutError)):
                raise
            # S3-style: deleting a missing object succeeds.

    def __repr__(self) -> str:
        return f"HttpTransport({self.base_url!r})"


class RemoteBackend(FileBackend):
    """The full :class:`FileBackend` contract over a :class:`Transport`.

    Every backend operation becomes one transport request — including
    :meth:`readv`, which maps a scatter-gather read onto **one multi-range
    GET** so a coalesced chunk-run plan pays one RTT and one request fee
    per file instead of one per range (the request-aggregation idea,
    applied at the remote tier).  ``default_timeout`` bounds each request;
    the resilience layer narrows it further per call via the ambient
    deadline.

    With a recorder attached, per-op ``remote.*`` counters accumulate on
    top of the standard Darshan-style ``io.*`` per-file counters, so a
    trace shows both *what* was read and *what it cost*.
    """

    def __init__(self, transport: Transport, *, default_timeout: float | None = None):
        self.transport = transport
        self.default_timeout = default_timeout

    # -- accounting ----------------------------------------------------------

    def _note_request(self, op: str, nbytes: int, before: TransportStats) -> None:
        if self.recorder is None:
            return
        after = self.transport.stats
        self.recorder.add(REMOTE_REQUESTS, 1, key=(op,))
        if nbytes:
            self.recorder.add(REMOTE_BYTES, nbytes, key=(op,))
        self.recorder.add(
            REMOTE_COST_MICRO, round((after.cost - before.cost) * 1e6)
        )
        self.recorder.add(REMOTE_TIME, after.time_s - before.time_s)
        if after.timeouts > before.timeouts:
            self.recorder.add(REMOTE_TIMEOUTS, after.timeouts - before.timeouts)
        if after.unavailable > before.unavailable:
            self.recorder.add(
                REMOTE_UNAVAILABLE, after.unavailable - before.unavailable
            )

    def _timeout(self) -> float | None:
        """Per-request budget: ``default_timeout`` narrowed to whatever the
        ambient deadline has left, so one slow request can never consume
        more than the query's remaining time."""
        from repro.io.resilience import current_deadline

        deadline = current_deadline()
        if deadline is None:
            return self.default_timeout
        remaining = max(deadline.remaining(), 0.0)
        if self.default_timeout is None:
            return remaining
        return min(self.default_timeout, remaining)

    # -- reads ---------------------------------------------------------------

    def read_file(self, path: str, actor: int = -1) -> bytes:
        path = self._normalize(path)
        before = self.transport.stats.snapshot()
        try:
            data = self.transport.get(path, timeout=self._timeout())
        finally:
            self._note_request("get", 0, before)
        self._note_open(path)
        self._note_read(path, len(data))
        return data

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        if offset < 0 or length < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        path = self._normalize(path)
        before = self.transport.stats.snapshot()
        try:
            (data,) = self.transport.get_ranges(
                path, [(int(offset), int(length))], timeout=self._timeout()
            )
        finally:
            self._note_request("get_range", 0, before)
        if len(data) != length:
            raise BackendError(
                f"short remote read from {path!r}: wanted {length} bytes at "
                f"{offset}, got {len(data)}"
            )
        self._note_open(path)
        self._note_read(path, length)
        return data

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        out = memoryview(view).cast("B")
        data = self.read_range(path, offset, len(out), actor=actor)
        out[:] = data
        return len(out)

    def readv(self, path: str, segments, actor: int = -1) -> int:
        """One multi-range GET covering every segment (single request)."""
        path = self._normalize(path)
        segs = [(int(off), memoryview(v).cast("B")) for off, v in segments]
        if not segs:
            return 0
        before = self.transport.stats.snapshot()
        try:
            parts = self.transport.get_ranges(
                path,
                [(off, len(out)) for off, out in segs],
                timeout=self._timeout(),
            )
        finally:
            self._note_request("get_ranges", 0, before)
        total = 0
        self._note_open(path)
        for (off, out), data in zip(segs, parts):
            if len(data) != len(out):
                raise BackendError(
                    f"short remote read from {path!r}: wanted {len(out)} "
                    f"bytes at {off}, got {len(data)}"
                )
            out[:] = data
            self._note_read(path, len(out))
            total += len(out)
        return total

    # -- mutations / metadata ------------------------------------------------

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        path = self._normalize(path)
        before = self.transport.stats.snapshot()
        try:
            self.transport.put(path, data, timeout=self._timeout())
        finally:
            self._note_request("put", len(data), before)
        self._note_open(path)
        self._note_write(path, len(data))

    def exists(self, path: str) -> bool:
        path = self._normalize(path)
        before = self.transport.stats.snapshot()
        try:
            size = self.transport.head(path, timeout=self._timeout())
        finally:
            self._note_request("head", 0, before)
        return size is not None

    def size(self, path: str) -> int:
        path = self._normalize(path)
        before = self.transport.stats.snapshot()
        try:
            size = self.transport.head(path, timeout=self._timeout())
        finally:
            self._note_request("head", 0, before)
        if size is None:
            raise BackendError(f"stat {path!r}: no such remote object")
        return size

    def listdir(self, path: str) -> list[str]:
        path = self._normalize(path)
        before = self.transport.stats.snapshot()
        try:
            return self.transport.list(path, timeout=self._timeout())
        finally:
            self._note_request("list", 0, before)

    def delete(self, path: str, missing_ok: bool = False) -> None:
        path = self._normalize(path)
        if not missing_ok and not self.exists(path):
            raise BackendError(f"deleting {path!r}: no such remote object")
        before = self.transport.stats.snapshot()
        try:
            self.transport.delete(path, timeout=self._timeout())
        finally:
            self._note_request("delete", 0, before)

    def __repr__(self) -> str:
        return f"RemoteBackend({self.transport!r})"
