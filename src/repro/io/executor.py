"""Pluggable execution of independent per-file I/O operations.

The paper's scalable-read story is "open only the files your query
touches"; this module is the second half of that plan — issue those
per-file requests *concurrently*.  POSIX reads (and the CRC work that
follows them) release the GIL, so a thread pool gives real parallelism on
the real backend, exactly the per-file request concurrency that dominates
read throughput in production I/O stacks.

Two executors implement one tiny contract (:class:`IoExecutor.run`):

* :class:`SerialExecutor` — runs tasks one after another on the calling
  thread.  The default everywhere; behaviour is identical to the historic
  inline loops.
* :class:`ThreadedExecutor` — a ``concurrent.futures`` thread pool with a
  **bounded in-flight window**: at most ``max_inflight`` tasks are
  submitted at any moment, so a million-entry plan never materialises a
  million queued futures.

Determinism contract (what makes the two executors interchangeable):

* **result order** — outcomes are returned in submission order, whatever
  order tasks finished in;
* **retry/backoff** — each task carries its own retry state (the policy's
  deterministic ``(seed, attempt)`` jitter), so per-task retry schedules
  do not depend on scheduling;
* **observability** — each task records into its own *child*
  :class:`~repro.obs.recorder.Recorder` (:meth:`Recorder.child`), never
  directly into the caller's.  The caller merges children back in
  submission order, so spans/counters/events from concurrent tasks never
  interleave corruptly and event-derived views (``ReadReport``) are exact.

A task is any ``Callable[[Recorder], T]``; the recorder argument is the
task's private child recorder.  Exceptions are captured per task
(:attr:`TaskOutcome.error`), not raised by the executor — error policy
(strict raise vs. degraded skip) belongs to the caller.  With
``fail_fast=True`` no *new* tasks start once a failure is observed;
already-started tasks still complete, and unstarted ones come back with
``ran=False``.  Callers that fail fast must therefore stop consuming
outcomes at the first error, which both executors guarantee to place at
the same (earliest failing) index.

Concurrent submitters (the serving layer): one :class:`ThreadedExecutor`
is shared by every query of a multi-tenant service, so :meth:`run` is
fully reentrant across *threads* — each call keeps its own bounded
window and outcome slots over one shared, lazily created worker pool.
Sharing the pool is what bounds total thread count; per-call state is
what keeps callers isolated: a poisoned task fails only its own call's
outcome, never a sibling's window (each window tracks only its own
futures, and a worker that captured one call's failure moves straight on
to whatever task — anyone's — is queued next).  Calls from *inside* a
worker thread (nested per-file fan-out) run inline serially instead of
submitting, so recursion can never deadlock the pool waiting on itself.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any

from repro.obs.recorder import Recorder

__all__ = [
    "IoTask",
    "TaskOutcome",
    "IoExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "executor_for",
]

#: One independent unit of I/O work: called with its private child recorder.
IoTask = Callable[[Recorder], Any]


@dataclass
class TaskOutcome:
    """What one submitted task produced, in submission order.

    Exactly one of ``value``/``error`` is meaningful when ``ran`` is True;
    when ``ran`` is False the task was never started (fail-fast cut it)
    and ``recorder`` is None.
    """

    index: int
    value: Any = None
    error: Exception | None = None
    recorder: Recorder | None = None
    ran: bool = True

    @property
    def ok(self) -> bool:
        return self.ran and self.error is None


def _run_one(index: int, task: IoTask, parent: Recorder) -> TaskOutcome:
    """Execute one task against a fresh child recorder, capturing errors."""
    child = parent.child()
    try:
        value = task(child)
    except Exception as exc:  # noqa: BLE001 — error policy is the caller's
        return TaskOutcome(index, error=exc, recorder=child)
    return TaskOutcome(index, value=value, recorder=child)


class IoExecutor(ABC):
    """Executes a batch of independent I/O tasks; see the module docstring."""

    @abstractmethod
    def run(
        self,
        tasks: Sequence[IoTask],
        recorder: Recorder,
        fail_fast: bool = False,
    ) -> list[TaskOutcome]:
        """Run every task; outcomes come back in submission order.

        ``recorder`` is the caller's recorder — tasks get children of it
        (never the recorder itself).  Children are *not* merged here; the
        caller folds ``outcome.recorder`` back in submission order so the
        merged stream is executor-independent.
        """

    def shutdown(self) -> None:
        """Release any pooled resources (idempotent; no-op by default).

        An executor stays usable after shutdown — the next :meth:`run`
        recreates what it needs.
        """


class SerialExecutor(IoExecutor):
    """Tasks run inline, one at a time, on the calling thread."""

    def run(
        self,
        tasks: Sequence[IoTask],
        recorder: Recorder,
        fail_fast: bool = False,
    ) -> list[TaskOutcome]:
        tasks = list(tasks)
        outcomes: list[TaskOutcome] = []
        for index, task in enumerate(tasks):
            outcome = _run_one(index, task, recorder)
            outcomes.append(outcome)
            if fail_fast and outcome.error is not None:
                outcomes.extend(
                    TaskOutcome(i, ran=False) for i in range(index + 1, len(tasks))
                )
                break
        return outcomes

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadedExecutor(IoExecutor):
    """A shared thread pool with a per-call bounded submission window.

    ``max_workers`` threads execute tasks; each :meth:`run` call submits
    at most ``max_inflight`` (default ``2 * max_workers``) tasks at once,
    so plans of any length run in constant executor memory.  The pool is
    created lazily on first use and **persists across runs** — concurrent
    :meth:`run` calls (many queries of a serving layer) share the same
    ``max_workers`` threads instead of spawning a pool each, which bounds
    total thread count no matter how many callers are in flight.  All
    per-call state (window, outcome slots, fail-fast flag) is local to
    the call: one caller's failed task never wedges or fails a sibling
    caller's window.  :meth:`shutdown` joins the pool; the next run
    recreates it.
    """

    def __init__(self, max_workers: int = 4, max_inflight: int | None = None):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.max_inflight = (
            int(max_inflight) if max_inflight is not None else 2 * self.max_workers
        )
        if self.max_inflight < self.max_workers:
            raise ValueError(
                f"max_inflight ({self.max_inflight}) must be >= max_workers "
                f"({self.max_workers})"
            )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Reentrancy marker: set while a pool worker is executing one of
        # our tasks, so a nested run() from inside a task degrades to an
        # inline serial loop instead of deadlocking the pool on itself.
        self._in_worker = threading.local()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-io",
                )
            return self._pool

    def _run_in_worker(
        self, index: int, task: IoTask, parent: Recorder
    ) -> TaskOutcome:
        self._in_worker.active = True
        try:
            return _run_one(index, task, parent)
        finally:
            self._in_worker.active = False

    def run(
        self,
        tasks: Sequence[IoTask],
        recorder: Recorder,
        fail_fast: bool = False,
    ) -> list[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        if getattr(self._in_worker, "active", False):
            # Called from one of our own worker threads: submitting would
            # wait on a pool slot this very thread occupies.  Inline serial
            # execution preserves the contract (same outcomes, same child-
            # recorder discipline) without consuming a second slot.
            return SerialExecutor().run(tasks, recorder, fail_fast)
        pool = self._ensure_pool()
        outcomes: list[TaskOutcome] = [
            TaskOutcome(i, ran=False) for i in range(len(tasks))
        ]
        failed = False
        next_index = 0
        pending: dict[Future[TaskOutcome], int] = {}
        try:
            while True:
                while (
                    next_index < len(tasks)
                    and len(pending) < self.max_inflight
                    and not (fail_fast and failed)
                ):
                    future = pool.submit(
                        self._run_in_worker, next_index, tasks[next_index], recorder
                    )
                    pending[future] = next_index
                    next_index += 1
                if not pending:
                    break
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    pending.pop(future)
                    outcome = future.result()
                    outcomes[outcome.index] = outcome
                    if outcome.error is not None:
                        failed = True
        finally:
            # Never leave this call's futures running loose on the shared
            # pool (a BaseException — e.g. KeyboardInterrupt — in the loop
            # above must not let orphaned tasks race a sibling caller).
            if pending:
                for future in pending:
                    future.cancel()
                done, _ = wait(set(pending))
                for future in done:
                    if future.cancelled():
                        continue
                    outcome = future.result()
                    outcomes[outcome.index] = outcome
        return outcomes

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"ThreadedExecutor(max_workers={self.max_workers}, "
            f"max_inflight={self.max_inflight})"
        )


def executor_for(workers: int) -> IoExecutor:
    """The executor a worker count selects (the ``--workers`` CLI mapping).

    ``workers <= 1`` is serial — a one-thread pool only adds overhead.
    """
    if workers <= 1:
        return SerialExecutor()
    return ThreadedExecutor(max_workers=workers)
