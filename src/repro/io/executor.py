"""Pluggable execution of independent per-file I/O operations.

The paper's scalable-read story is "open only the files your query
touches"; this module is the second half of that plan — issue those
per-file requests *concurrently*.  POSIX reads (and the CRC work that
follows them) release the GIL, so a thread pool gives real parallelism on
the real backend, exactly the per-file request concurrency that dominates
read throughput in production I/O stacks.

Two executors implement one tiny contract (:class:`IoExecutor.run`):

* :class:`SerialExecutor` — runs tasks one after another on the calling
  thread.  The default everywhere; behaviour is identical to the historic
  inline loops.
* :class:`ThreadedExecutor` — a ``concurrent.futures`` thread pool with a
  **bounded in-flight window**: at most ``max_inflight`` tasks are
  submitted at any moment, so a million-entry plan never materialises a
  million queued futures.

Determinism contract (what makes the two executors interchangeable):

* **result order** — outcomes are returned in submission order, whatever
  order tasks finished in;
* **retry/backoff** — each task carries its own retry state (the policy's
  deterministic ``(seed, attempt)`` jitter), so per-task retry schedules
  do not depend on scheduling;
* **observability** — each task records into its own *child*
  :class:`~repro.obs.recorder.Recorder` (:meth:`Recorder.child`), never
  directly into the caller's.  The caller merges children back in
  submission order, so spans/counters/events from concurrent tasks never
  interleave corruptly and event-derived views (``ReadReport``) are exact.

A task is any ``Callable[[Recorder], T]``; the recorder argument is the
task's private child recorder.  Exceptions are captured per task
(:attr:`TaskOutcome.error`), not raised by the executor — error policy
(strict raise vs. degraded skip) belongs to the caller.  With
``fail_fast=True`` no *new* tasks start once a failure is observed;
already-started tasks still complete, and unstarted ones come back with
``ran=False``.  Callers that fail fast must therefore stop consuming
outcomes at the first error, which both executors guarantee to place at
the same (earliest failing) index.

Concurrent submitters (the serving layer): one :class:`ThreadedExecutor`
is shared by every query of a multi-tenant service, so :meth:`run` is
fully reentrant across *threads* — each call keeps its own bounded
window and outcome slots over one shared, lazily created worker pool.
Sharing the pool is what bounds total thread count; per-call state is
what keeps callers isolated: a poisoned task fails only its own call's
outcome, never a sibling's window (each window tracks only its own
futures, and a worker that captured one call's failure moves straight on
to whatever task — anyone's — is queued next).  Calls from *inside* a
worker thread (nested per-file fan-out) run inline serially instead of
submitting, so recursion can never deadlock the pool waiting on itself.
"""

from __future__ import annotations

import multiprocessing
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.obs.names import SPAN_EXECUTOR_RUN
from repro.obs.recorder import Recorder

__all__ = [
    "IoTask",
    "ProcessTask",
    "TaskOutcome",
    "IoExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "executor_for",
]

#: One independent unit of I/O work: called with its private child recorder.
IoTask = Callable[[Recorder], Any]


class ProcessTask:
    """A task that can ship to a worker *process* (or run locally).

    Serial and threaded executors simply call the task — ``local`` runs in
    this process exactly like any plain :data:`IoTask`.  The
    :class:`ProcessExecutor` instead pickles ``(fn, payload)`` to a worker
    process: ``fn`` must be a module-level callable
    ``fn(payload, recorder) -> value`` whose payload and return value are
    picklable; the worker's recorder is shipped back as a snapshot and
    absorbed into a child recorder parent-side, preserving the
    merge-in-submission-order obs contract.  ``finish`` (optional) runs on
    the parent after the worker returns — the hook a caller uses to copy a
    shared-memory result into its destination buffer.

    A ``ProcessTask`` whose payload turns out to be unpicklable degrades
    to its ``local`` form, so shipping is an optimisation, never a
    behaviour change.
    """

    __slots__ = ("local", "fn", "payload", "finish")

    def __init__(
        self,
        local: IoTask,
        fn: Callable[[Any, Recorder], Any],
        payload: Any,
        finish: Callable[[Any], Any] | None = None,
    ):
        self.local = local
        self.fn = fn
        self.payload = payload
        self.finish = finish

    def __call__(self, recorder: Recorder) -> Any:
        return self.local(recorder)


def _process_child(
    fn: Callable[[Any, Recorder], Any], payload: Any, rank: int
) -> tuple[Any, tuple, Exception | None]:
    """Worker-process shim: run ``fn`` against a fresh recorder.

    Returns ``(value, recorder_snapshot, error)`` — all picklable — so the
    parent can rebuild the exact child-recorder stream a local run would
    have produced.
    """
    recorder = Recorder(rank=rank)
    try:
        value = fn(payload, recorder)
    except Exception as exc:  # noqa: BLE001 — error policy is the caller's
        return None, recorder.snapshot(), exc
    return value, recorder.snapshot(), None


@dataclass
class TaskOutcome:
    """What one submitted task produced, in submission order.

    Exactly one of ``value``/``error`` is meaningful when ``ran`` is True;
    when ``ran`` is False the task was never started (fail-fast cut it)
    and ``recorder`` is None.
    """

    index: int
    value: Any = None
    error: Exception | None = None
    recorder: Recorder | None = None
    ran: bool = True

    @property
    def ok(self) -> bool:
        return self.ran and self.error is None


def _run_one(index: int, task: IoTask, parent: Recorder) -> TaskOutcome:
    """Execute one task against a fresh child recorder, capturing errors."""
    child = parent.child()
    try:
        value = task(child)
    except Exception as exc:  # noqa: BLE001 — error policy is the caller's
        return TaskOutcome(index, error=exc, recorder=child)
    return TaskOutcome(index, value=value, recorder=child)


class IoExecutor(ABC):
    """Executes a batch of independent I/O tasks; see the module docstring."""

    #: Display/span label: "serial" | "thread" | "process".
    mode: str = "serial"

    def _run_span(self, recorder: Recorder, tasks: int, queue_depth: int):
        """The per-batch ``executor.run`` span (queue-depth observability).

        Every executor emits exactly one span per non-empty batch, on the
        *caller's* thread, so serial and parallel runs stay span-stream
        parallel; the args carry what differs (worker count, in-flight
        window, mode).
        """
        return recorder.span(
            SPAN_EXECUTOR_RUN,
            cat="executor",
            tasks=tasks,
            workers=getattr(self, "max_workers", 1),
            queue_depth=queue_depth,
            mode=self.mode,
        )

    @abstractmethod
    def run(
        self,
        tasks: Sequence[IoTask],
        recorder: Recorder,
        fail_fast: bool = False,
    ) -> list[TaskOutcome]:
        """Run every task; outcomes come back in submission order.

        ``recorder`` is the caller's recorder — tasks get children of it
        (never the recorder itself).  Children are *not* merged here; the
        caller folds ``outcome.recorder`` back in submission order so the
        merged stream is executor-independent.
        """

    def shutdown(self) -> None:
        """Release any pooled resources (idempotent; no-op by default).

        An executor stays usable after shutdown — the next :meth:`run`
        recreates what it needs.
        """


class SerialExecutor(IoExecutor):
    """Tasks run inline, one at a time, on the calling thread."""

    mode = "serial"

    def run(
        self,
        tasks: Sequence[IoTask],
        recorder: Recorder,
        fail_fast: bool = False,
    ) -> list[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        outcomes: list[TaskOutcome] = []
        with self._run_span(recorder, len(tasks), 1):
            for index, task in enumerate(tasks):
                outcome = _run_one(index, task, recorder)
                outcomes.append(outcome)
                if fail_fast and outcome.error is not None:
                    outcomes.extend(
                        TaskOutcome(i, ran=False)
                        for i in range(index + 1, len(tasks))
                    )
                    break
        return outcomes

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadedExecutor(IoExecutor):
    """A shared thread pool with a per-call bounded submission window.

    ``max_workers`` threads execute tasks; each :meth:`run` call submits
    at most ``max_inflight`` (default ``2 * max_workers``) tasks at once,
    so plans of any length run in constant executor memory.  The pool is
    created lazily on first use and **persists across runs** — concurrent
    :meth:`run` calls (many queries of a serving layer) share the same
    ``max_workers`` threads instead of spawning a pool each, which bounds
    total thread count no matter how many callers are in flight.  All
    per-call state (window, outcome slots, fail-fast flag) is local to
    the call: one caller's failed task never wedges or fails a sibling
    caller's window.  :meth:`shutdown` joins the pool; the next run
    recreates it.
    """

    mode = "thread"

    def __init__(self, max_workers: int = 4, max_inflight: int | None = None):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.max_inflight = (
            int(max_inflight) if max_inflight is not None else 2 * self.max_workers
        )
        if self.max_inflight < self.max_workers:
            raise ValueError(
                f"max_inflight ({self.max_inflight}) must be >= max_workers "
                f"({self.max_workers})"
            )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Reentrancy marker: set while a pool worker is executing one of
        # our tasks, so a nested run() from inside a task degrades to an
        # inline serial loop instead of deadlocking the pool on itself.
        self._in_worker = threading.local()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-io",
                )
            return self._pool

    def _run_in_worker(
        self, index: int, task: IoTask, parent: Recorder
    ) -> TaskOutcome:
        self._in_worker.active = True
        try:
            return _run_one(index, task, parent)
        finally:
            self._in_worker.active = False

    def run(
        self,
        tasks: Sequence[IoTask],
        recorder: Recorder,
        fail_fast: bool = False,
    ) -> list[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        if getattr(self._in_worker, "active", False):
            # Called from one of our own worker threads: submitting would
            # wait on a pool slot this very thread occupies.  Inline serial
            # execution preserves the contract (same outcomes, same child-
            # recorder discipline) without consuming a second slot.
            return SerialExecutor().run(tasks, recorder, fail_fast)
        pool = self._ensure_pool()
        outcomes: list[TaskOutcome] = [
            TaskOutcome(i, ran=False) for i in range(len(tasks))
        ]
        failed = False
        next_index = 0
        pending: dict[Future[TaskOutcome], int] = {}
        try:
            with self._run_span(recorder, len(tasks), self.max_inflight):
                while True:
                    while (
                        next_index < len(tasks)
                        and len(pending) < self.max_inflight
                        and not (fail_fast and failed)
                    ):
                        future = pool.submit(
                            self._run_in_worker,
                            next_index,
                            tasks[next_index],
                            recorder,
                        )
                        pending[future] = next_index
                        next_index += 1
                    if not pending:
                        break
                    done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                    for future in done:
                        pending.pop(future)
                        outcome = future.result()
                        outcomes[outcome.index] = outcome
                        if outcome.error is not None:
                            failed = True
        finally:
            # Never leave this call's futures running loose on the shared
            # pool (a BaseException — e.g. KeyboardInterrupt — in the loop
            # above must not let orphaned tasks race a sibling caller).
            if pending:
                for future in pending:
                    future.cancel()
                done, _ = wait(set(pending))
                for future in done:
                    if future.cancelled():
                        continue
                    outcome = future.result()
                    outcomes[outcome.index] = outcome
        return outcomes

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"ThreadedExecutor(max_workers={self.max_workers}, "
            f"max_inflight={self.max_inflight})"
        )


class ProcessExecutor(IoExecutor):
    """A process pool that ships :class:`ProcessTask` descriptors off-GIL.

    CRC verification and columnar decode of large payloads are CPU work
    that Python threads serialise on the GIL; a worker *process* runs them
    truly in parallel.  The price is transport: tasks must describe their
    work as picklable ``(fn, payload)`` descriptors, and results come back
    by value (callers use shared memory for bulk data — see
    :meth:`repro.query.engine.QueryEngine.run`).

    The determinism contract is identical to :class:`ThreadedExecutor`:
    outcomes in submission order, a bounded in-flight window, per-task
    child recorders (rebuilt from worker-side snapshots) merged by the
    caller in submission order, and fail-fast leaving unstarted tasks
    ``ran=False``.

    Graceful degradation, in order:

    * a batch containing any plain (non-:class:`ProcessTask`) task runs
      entirely on an internal :class:`ThreadedExecutor` — callers that
      cannot describe their work picklably lose nothing;
    * a platform without the ``fork`` start method (worker processes
      inherit loaded modules and need no re-import) likewise falls back
      to threads;
    * a single task whose payload fails to pickle at submission runs its
      ``local`` form inline, in submission-order position.

    A broken pool (a worker killed mid-batch) fails the affected tasks'
    outcomes and is discarded; the next :meth:`run` starts a fresh pool.
    """

    mode = "process"

    def __init__(self, max_workers: int = 4, max_inflight: int | None = None):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.max_inflight = (
            int(max_inflight) if max_inflight is not None else 2 * self.max_workers
        )
        if self.max_inflight < self.max_workers:
            raise ValueError(
                f"max_inflight ({self.max_inflight}) must be >= max_workers "
                f"({self.max_workers})"
            )
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._fallback = ThreadedExecutor(
            max_workers=self.max_workers, max_inflight=self.max_inflight
        )

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        with self._pool_lock:
            if self._pool is None:
                try:
                    ctx = multiprocessing.get_context("fork")
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.max_workers, mp_context=ctx
                    )
                except (ValueError, OSError):
                    return None
            return self._pool

    def _discard_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _consume(
        self, future: Future, task: ProcessTask, index: int, recorder: Recorder
    ) -> TaskOutcome:
        """Turn one worker result into a TaskOutcome with a rebuilt child."""
        child = recorder.child()
        try:
            value, snap, error = future.result()
        except BrokenProcessPool as exc:
            self._discard_pool()
            return TaskOutcome(index, error=exc, recorder=child)
        except Exception:  # noqa: BLE001 — transport, not task, failure
            # The worker shim catches task exceptions and returns them as
            # values, so anything *raised* here is transport-level: the
            # payload (or result) failed to pickle and ``fn`` may never
            # have run.  Shipping is an optimisation — fall back to the
            # task's local form, in submission-order position.
            return _run_one(index, task, recorder)
        child.absorb(snap)
        if error is not None:
            return TaskOutcome(index, error=error, recorder=child)
        if task.finish is not None:
            try:
                value = task.finish(value)
            except Exception as exc:  # noqa: BLE001
                return TaskOutcome(index, error=exc, recorder=child)
        return TaskOutcome(index, value=value, recorder=child)

    def run(
        self,
        tasks: Sequence[IoTask],
        recorder: Recorder,
        fail_fast: bool = False,
    ) -> list[TaskOutcome]:
        tasks = list(tasks)
        if not tasks:
            return []
        if not all(isinstance(t, ProcessTask) for t in tasks):
            return self._fallback.run(tasks, recorder, fail_fast)
        pool = self._ensure_pool()
        if pool is None:
            return self._fallback.run(tasks, recorder, fail_fast)
        outcomes: list[TaskOutcome] = [
            TaskOutcome(i, ran=False) for i in range(len(tasks))
        ]
        failed = False
        next_index = 0
        pending: dict[Future, int] = {}
        try:
            with self._run_span(recorder, len(tasks), self.max_inflight):
                while True:
                    while (
                        next_index < len(tasks)
                        and len(pending) < self.max_inflight
                        and not (fail_fast and failed)
                    ):
                        index = next_index
                        task = tasks[index]
                        next_index += 1
                        try:
                            future = pool.submit(
                                _process_child,
                                task.fn,
                                task.payload,
                                recorder.rank,
                            )
                        except Exception:  # noqa: BLE001 — unpicklable payload
                            # Inline degradation: run the local form now, in
                            # submission-order position.
                            outcome = _run_one(index, task, recorder)
                            outcomes[index] = outcome
                            if outcome.error is not None:
                                failed = True
                            continue
                        pending[future] = index
                    if not pending:
                        break
                    done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        outcome = self._consume(
                            future, tasks[index], index, recorder
                        )
                        outcomes[index] = outcome
                        if outcome.error is not None:
                            failed = True
        finally:
            # Drain this call's in-flight futures so a BaseException in the
            # loop above never leaves orphaned work racing a sibling caller.
            if pending:
                for future in pending:
                    future.cancel()
                done, _ = wait(set(pending))
                for future in done:
                    if future.cancelled():
                        continue
                    index = pending[future]
                    outcomes[index] = self._consume(
                        future, tasks[index], index, recorder
                    )
        return outcomes

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._fallback.shutdown()

    def __repr__(self) -> str:
        return (
            f"ProcessExecutor(max_workers={self.max_workers}, "
            f"max_inflight={self.max_inflight})"
        )


def executor_for(workers: int, mode: str = "thread") -> IoExecutor:
    """The executor a worker count selects (the ``--workers`` CLI mapping).

    ``workers <= 1`` is serial — a one-worker pool only adds overhead.
    ``mode`` selects the pool flavour above that: ``"thread"`` (default)
    for I/O-bound overlap, ``"process"`` (the ``--process-pool`` CLI flag)
    to move CRC+decode of large payloads off the GIL.
    """
    if mode not in ("thread", "process"):
        raise ValueError(f"unknown executor mode {mode!r}")
    if workers <= 1:
        return SerialExecutor()
    if mode == "process":
        return ProcessExecutor(max_workers=workers)
    return ThreadedExecutor(max_workers=workers)
