"""A backend view rooted at a sub-path of another backend.

Lets one physical backend hold many datasets (e.g. one per timestep) while
every dataset-level component keeps using its canonical relative paths
("manifest.json", "data/file_0.pbin").
"""

from __future__ import annotations

from repro.io.backend import FileBackend
from repro.obs.recorder import Recorder


class PrefixBackend(FileBackend):
    """Delegates every operation to ``base`` under ``prefix/``."""

    def __init__(self, base: FileBackend, prefix: str):
        self.base = base
        self.prefix = self._normalize(prefix)
        if not self.prefix:
            raise ValueError("prefix must be non-empty; use the base backend directly")

    def attach_recorder(self, recorder: Recorder | None) -> None:
        """Forward to ``base`` — every actual I/O op runs there, so counters
        must accumulate on the backend that executes the operations."""
        self.recorder = recorder
        self.base.attach_recorder(recorder)

    def _full(self, path: str) -> str:
        path = self._normalize(path)
        return f"{self.prefix}/{path}" if path else self.prefix

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        self.base.write_file(self._full(path), data, actor=actor)

    def read_file(self, path: str, actor: int = -1) -> bytes:
        return self.base.read_file(self._full(path), actor=actor)

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        return self.base.read_range(self._full(path), offset, length, actor=actor)

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        return self.base.readinto(self._full(path), offset, view, actor=actor)

    def readv(self, path: str, segments, actor: int = -1) -> int:
        return self.base.readv(self._full(path), segments, actor=actor)

    def exists(self, path: str) -> bool:
        return self.base.exists(self._full(path))

    def size(self, path: str) -> int:
        return self.base.size(self._full(path))

    def listdir(self, path: str) -> list[str]:
        return self.base.listdir(self._full(path))

    def delete(self, path: str, missing_ok: bool = False) -> None:
        self.base.delete(self._full(path), missing_ok=missing_ok)

    def __repr__(self) -> str:
        return f"PrefixBackend({self.base!r}, prefix={self.prefix!r})"
