"""The storage-backend interface and the I/O operation record.

Backends are deliberately tiny: whole-file create/write, ranged reads, and
directory listing are all the library needs.  Paths are POSIX-style strings
relative to the backend root ("data/file_0.pbin"); backends own the mapping
to whatever actually stores the bytes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class IoOp:
    """One recorded storage operation.

    ``kind`` is one of ``create``, ``open``, ``read``, ``write``, ``list``.
    ``nbytes`` is 0 for metadata-only operations.  ``offset`` is -1 when the
    operation is not positional (whole-file write, open).  ``actor`` tags the
    logical process that issued the op (reader rank / aggregator rank), which
    lets the performance model attribute per-process costs.
    """

    kind: str
    path: str
    nbytes: int = 0
    offset: int = -1
    actor: int = -1


class FileBackend(ABC):
    """Minimal filesystem interface shared by POSIX and virtual storage."""

    @abstractmethod
    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        """Create (or replace) ``path`` with ``data`` in one shot."""

    @abstractmethod
    def read_file(self, path: str, actor: int = -1) -> bytes:
        """Read the entire contents of ``path``."""

    @abstractmethod
    def read_range(
        self, path: str, offset: int, length: int, actor: int = -1
    ) -> bytes:
        """Read ``length`` bytes at ``offset``.  Short reads are an error."""

    @abstractmethod
    def exists(self, path: str) -> bool: ...

    @abstractmethod
    def size(self, path: str) -> int: ...

    @abstractmethod
    def listdir(self, path: str) -> list[str]:
        """Names (not paths) of entries directly under directory ``path``."""

    @abstractmethod
    def delete(self, path: str, missing_ok: bool = False) -> None:
        """Remove ``path``.  With ``missing_ok`` a missing file is a no-op,
        which makes cleanup-after-partial-write idempotent."""

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        parts = [p for p in path.split("/") if p not in ("", ".")]
        if any(p == ".." for p in parts):
            raise ValueError(f"path may not contain '..': {path!r}")
        return "/".join(parts)
