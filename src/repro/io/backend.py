"""The storage-backend interface and the I/O operation record.

Backends are deliberately tiny: whole-file create/write, ranged reads, and
directory listing are all the library needs.  Paths are POSIX-style strings
relative to the backend root ("data/file_0.pbin"); backends own the mapping
to whatever actually stores the bytes.

Instrumentation: any backend can have an obs recorder attached
(:meth:`FileBackend.attach_recorder`), after which it maintains
Darshan-style per-file counters — opens, reads, writes, bytes moved, keyed
by path — alongside whatever op log the concrete backend keeps.  The
counters are deliberately collected at this layer so POSIX and virtual
storage report identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.obs.names import (
    IO_BYTES_READ,
    IO_BYTES_WRITTEN,
    IO_OPENS,
    IO_READS,
    IO_WRITES,
)
from repro.obs.recorder import Recorder


@dataclass(frozen=True)
class IoOp:
    """One recorded storage operation.

    ``kind`` is one of ``create``, ``open``, ``read``, ``write``, ``list``.
    ``nbytes`` is 0 for metadata-only operations.  ``offset`` is -1 when the
    operation is not positional (whole-file write, open).  ``actor`` tags the
    logical process that issued the op (reader rank / aggregator rank), which
    lets the performance model attribute per-process costs.
    """

    kind: str
    path: str
    nbytes: int = 0
    offset: int = -1
    actor: int = -1


class FileBackend(ABC):
    """Minimal filesystem interface shared by POSIX and virtual storage."""

    #: Optional obs recorder; when set, per-file counters accumulate there.
    recorder: Recorder | None = None

    def attach_recorder(self, recorder: Recorder | None) -> None:
        """Route this backend's per-file counters into ``recorder``.

        Pass ``None`` to detach.  Concrete backends call the ``_note_*``
        helpers on their hot paths; with no recorder attached those are a
        single attribute check.
        """
        self.recorder = recorder

    def process_clone(self):
        """A picklable read-equivalent of this backend, or ``None``.

        The process executor ships reads to worker processes only when the
        backend can describe itself picklably; ``None`` (the default) means
        "keep my reads in this process" and callers degrade to threads.
        Stateful wrappers (caches, fault injectors, remote stacks) must
        stay at the default — their in-memory state cannot follow the
        clone.
        """
        return None

    # -- instrumentation helpers (no-ops without an attached recorder) ------

    def _note_open(self, path: str) -> None:
        if self.recorder is not None:
            self.recorder.add(IO_OPENS, 1, key=(path,))

    def _note_read(self, path: str, nbytes: int) -> None:
        if self.recorder is not None:
            self.recorder.add(IO_READS, 1, key=(path,))
            self.recorder.add(IO_BYTES_READ, nbytes, key=(path,))

    def _note_write(self, path: str, nbytes: int) -> None:
        if self.recorder is not None:
            self.recorder.add(IO_WRITES, 1, key=(path,))
            self.recorder.add(IO_BYTES_WRITTEN, nbytes, key=(path,))

    @abstractmethod
    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        """Create (or replace) ``path`` with ``data`` in one shot."""

    @abstractmethod
    def read_file(self, path: str, actor: int = -1) -> bytes:
        """Read the entire contents of ``path``."""

    @abstractmethod
    def read_range(
        self, path: str, offset: int, length: int, actor: int = -1
    ) -> bytes:
        """Read ``length`` bytes at ``offset``.  Short reads are an error."""

    def readinto(
        self, path: str, offset: int, view, actor: int = -1
    ) -> int:
        """Read ``len(view)`` bytes at ``offset`` directly into ``view``.

        ``view`` is any writable buffer (memoryview, ndarray byte view).
        Same contract as :meth:`read_range` — short reads are an error —
        but the destination is caller-owned, so scatter-gather consumers
        can land ranged reads in a preallocated result with no per-range
        allocation.  This default copies through :meth:`read_range`;
        concrete backends override it with a genuinely copy-free path.
        """
        out = memoryview(view).cast("B")
        data = self.read_range(path, offset, len(out), actor=actor)
        out[:] = data
        return len(out)

    def readv(self, path: str, segments, actor: int = -1) -> int:
        """Scatter-gather read: fill each ``(offset, view)`` in ``segments``.

        One *logical open* of ``path`` serves every segment, so a reader
        that wants the header, a handful of pruned particle runs, and the
        footer of one file pays a single open (the dominant fixed cost on
        parallel filesystems) instead of one per range.  Segments follow
        the :meth:`readinto` contract; returns total bytes read.  This
        default loops over :meth:`readinto` (one open per segment) —
        concrete backends override it to share the open.
        """
        total = 0
        for offset, view in segments:
            total += self.readinto(path, offset, view, actor=actor)
        return total

    @abstractmethod
    def exists(self, path: str) -> bool: ...

    @abstractmethod
    def size(self, path: str) -> int: ...

    @abstractmethod
    def listdir(self, path: str) -> list[str]:
        """Names (not paths) of entries directly under directory ``path``."""

    @abstractmethod
    def delete(self, path: str, missing_ok: bool = False) -> None:
        """Remove ``path``.  With ``missing_ok`` a missing file is a no-op,
        which makes cleanup-after-partial-write idempotent."""

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        parts = [p for p in path.split("/") if p not in ("", ".")]
        if any(p == ".." for p in parts):
            raise ValueError(f"path may not contain '..': {path!r}")
        return "/".join(parts)
