"""Real-filesystem backend rooted at a directory.

The read side is built for raw speed (the Fig. 7 scaling story):

* **Pooled handles** — every read primitive serves from a bounded LRU pool
  of open file handles instead of paying ``open``+``seek``+``read`` per
  call.  A pooled handle is validated against the file's identity
  ``(st_ino, st_size, st_mtime_ns)`` on every acquire, so an atomic
  ``os.replace`` — ours or anyone else's — is detected and the stale
  handle dropped before a single byte is served.
* **mmap zero-copy fast path** — files within the mapping budget are
  served as slices of one shared ``mmap`` view: ``read_range`` returns a
  copy of the slice, ``readinto``/``readv`` land bytes via vectorized
  numpy copies (which release the GIL for large transfers), and repeated
  reads of a warm file never enter the kernel at all.
* **``os.preadv`` scatter-gather fallback** — files outside the mapping
  budget (or with mmap disabled) batch offset-contiguous segments into
  single ``preadv`` calls on the pooled fd.  ``pread``/``preadv`` release
  the GIL, so concurrent readers overlap genuine device waits.

All of it stays behind the :class:`FileBackend` contract: per-file
Darshan counters (``io.opens`` counts *logical* opens, exactly as
before), error messages, and atomic-write semantics are unchanged, so
Virtual/Prefix/Fault/Remote backends and every existing caller are
untouched.  ``io.mmap_hit`` / ``io.mmap_miss`` / ``io.handle_reuse``
counters make the fast path observable.

Writes are atomic: data lands in a temp file in the target directory, is
fsynced, and is renamed into place with ``os.replace``.  A reader (or a
crash) can therefore never observe a torn file — only the old content or
the new content.  ``write_file``/``delete`` invalidate the path's pooled
handle so subsequent reads always observe the new content.

Instances are picklable (the handle pool and any attached recorder are
process-local and deliberately dropped), which is what lets the process
executor ship a backend description to worker processes.
"""

from __future__ import annotations

import itertools
import mmap
import os
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.errors import BackendError
from repro.io.backend import FileBackend
from repro.obs.names import IO_HANDLE_REUSES, IO_MMAP_HITS, IO_MMAP_MISSES

#: Process-wide counter so concurrent writers of the same path (simulated
#: aggregator ranks are threads) never share a temp file.
_TMP_IDS = itertools.count()

#: Most buffers one ``preadv`` call accepts (POSIX IOV_MAX is >= 1024 on
#: every platform we run on; staying at the floor avoids a sysconf probe).
_IOV_MAX = 1024


class _Handle:
    """One pooled open file: fd, optional mmap view, and a refcount.

    The refcount lets the pool evict (or invalidate) a handle while
    another thread is mid-read on it: eviction marks the handle closed
    and the *last* releaser actually closes the fd/mapping, so a served
    view is never yanked out from under a reader.
    """

    __slots__ = ("fd", "size", "sig", "mm", "refs", "closed")

    def __init__(self, fd: int, size: int, sig: tuple, mm: mmap.mmap | None):
        self.fd = fd
        self.size = size
        self.sig = sig
        self.mm = mm
        self.refs = 0
        self.closed = False

    def _close_now(self) -> None:
        if self.mm is not None:
            try:
                self.mm.close()
            except (OSError, ValueError):
                pass
            self.mm = None
        if self.fd >= 0:
            try:
                os.close(self.fd)
            except OSError:
                pass
            self.fd = -1


class _HandlePool:
    """Bounded LRU of open handles, keyed by normalized backend path."""

    def __init__(self, max_handles: int, use_mmap: bool, max_mapped_bytes: int):
        self.max_handles = max_handles
        self.use_mmap = use_mmap
        self.max_mapped_bytes = max_mapped_bytes
        self._lock = threading.Lock()
        self._handles: OrderedDict[str, _Handle] = OrderedDict()
        self._mapped_bytes = 0
        self.opens = 0
        self.reuses = 0
        self.evictions = 0
        self.invalidations = 0

    def acquire(self, norm: str, full: Path) -> tuple[_Handle, bool]:
        """An open, identity-validated handle for ``norm``; caller must
        :meth:`release`.  Returns ``(handle, reused)``."""
        st = os.stat(full)
        sig = (st.st_ino, st.st_size, st.st_mtime_ns)
        with self._lock:
            handle = self._handles.get(norm)
            if handle is not None:
                if handle.sig == sig:
                    self._handles.move_to_end(norm)
                    handle.refs += 1
                    self.reuses += 1
                    return handle, True
                # The file was replaced behind our back (atomic rewrite,
                # external tooling, a test corrupting bytes in place):
                # drop the stale handle and fall through to a fresh open.
                self._drop_locked(norm, handle)
        fd = os.open(full, os.O_RDONLY)
        mm: mmap.mmap | None = None
        with self._lock:
            if (
                self.use_mmap
                and st.st_size > 0
                and self._mapped_bytes + st.st_size <= self.max_mapped_bytes
            ):
                try:
                    mm = mmap.mmap(fd, st.st_size, prot=mmap.PROT_READ)
                    self._mapped_bytes += st.st_size
                except (OSError, ValueError):
                    mm = None
            handle = _Handle(fd, st.st_size, sig, mm)
            handle.refs = 1
            self.opens += 1
            # Another thread may have pooled the same path while we were
            # opening; replace its entry (ours is at least as fresh).
            old = self._handles.pop(norm, None)
            if old is not None:
                self._drop_locked(norm, old, pop=False)
            self._handles[norm] = handle
            while len(self._handles) > self.max_handles:
                victim_key, victim = next(iter(self._handles.items()))
                self._drop_locked(victim_key, victim)
                self.evictions += 1
        return handle, False

    def release(self, handle: _Handle) -> None:
        with self._lock:
            handle.refs -= 1
            if handle.closed and handle.refs <= 0:
                self._account_unmap(handle)
                handle._close_now()

    def invalidate(self, norm: str) -> None:
        """Forget ``norm``'s handle (after a write/delete of the path)."""
        with self._lock:
            handle = self._handles.get(norm)
            if handle is not None:
                self._drop_locked(norm, handle)
                self.invalidations += 1

    def close_all(self) -> None:
        with self._lock:
            for norm, handle in list(self._handles.items()):
                self._drop_locked(norm, handle)

    def _drop_locked(self, norm: str, handle: _Handle, pop: bool = True) -> None:
        if pop:
            self._handles.pop(norm, None)
        handle.closed = True
        if handle.refs <= 0:
            self._account_unmap(handle)
            handle._close_now()

    def _account_unmap(self, handle: _Handle) -> None:
        if handle.mm is not None:
            self._mapped_bytes -= handle.size

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "opens": self.opens,
                "reuses": self.reuses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "pooled": len(self._handles),
                "mapped_bytes": self._mapped_bytes,
            }


def _preadv_fill(fd: int, full: Path, items: list[tuple[int, memoryview]]) -> None:
    """Fill each ``(offset, view)`` from ``fd``, batching contiguous runs.

    Offset-contiguous segments are gathered into single ``os.preadv``
    calls (capped at ``_IOV_MAX`` buffers), so a coalesced chunk-run read
    costs one syscall per contiguous extent rather than one per segment.
    Short reads raise the same error the legacy per-segment loop did.
    """
    i = 0
    while i < len(items):
        # One contiguous group: [i, j) where each next offset continues on.
        j = i + 1
        end = items[i][0] + len(items[i][1])
        while (
            j < len(items)
            and j - i < _IOV_MAX
            and items[j][0] == end
        ):
            end += len(items[j][1])
            j += 1
        group = items[i:j]
        pos = group[0][0]
        gi = 0          # index into group
        sub = 0         # bytes already filled of group[gi]
        while gi < len(group):
            bufs = [group[gi][1][sub:]] + [v for _o, v in group[gi + 1 :]]
            bufs = [b for b in bufs if len(b)]
            if not bufs:
                break
            n = os.preadv(fd, bufs, pos)
            if n <= 0:
                offset, view = group[gi]
                raise BackendError(
                    f"short read from {full}: wanted {len(view)} bytes at "
                    f"{offset}, got {sub}"
                )
            pos += n
            while n > 0 and gi < len(group):
                take = min(n, len(group[gi][1]) - sub)
                sub += take
                n -= take
                if sub == len(group[gi][1]):
                    gi += 1
                    sub = 0
        i = j


class PosixBackend(FileBackend):
    """Stores backend paths as real files under ``root``.

    ``root`` is created on construction if missing (pass ``create=False``
    for read-only uses that must not leave directories behind).  All
    library paths are relative; escaping the root (via ``..``) is rejected
    by the base class.

    ``use_mmap`` enables the zero-copy mapped fast path (on by default);
    ``max_handles`` bounds the LRU handle pool and ``max_mapped_bytes``
    bounds the total bytes mapped at once — files past the budget serve
    through ``pread``/``preadv`` on the pooled fd instead.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        create: bool = True,
        use_mmap: bool = True,
        max_handles: int = 64,
        max_mapped_bytes: int = 1 << 30,
    ):
        self.root = Path(root)
        if create:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise BackendError(f"cannot create root {self.root}: {exc}") from exc
        elif self.root.exists() and not self.root.is_dir():
            raise BackendError(f"backend root {self.root} is not a directory")
        self.use_mmap = bool(use_mmap)
        self.max_handles = int(max_handles)
        self.max_mapped_bytes = int(max_mapped_bytes)
        self._pool = _HandlePool(self.max_handles, self.use_mmap, self.max_mapped_bytes)

    # -- pickling (process-executor transport) ------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The handle pool and any attached recorder are process-local.
        state.pop("_pool", None)
        state.pop("recorder", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.recorder = None
        self._pool = _HandlePool(
            self.max_handles, self.use_mmap, self.max_mapped_bytes
        )

    def process_clone(self):
        """A picklable equivalent of this backend for worker processes.

        The pool/recorder are dropped in transit (see ``__getstate__``);
        everything else — root, mmap policy — ships as-is.
        """
        return self

    def _full(self, path: str) -> Path:
        return self.root / self._normalize(path)

    # -- instrumentation ----------------------------------------------------

    def _note_mmap(self, path: str, hit: bool) -> None:
        if self.recorder is not None:
            name = IO_MMAP_HITS if hit else IO_MMAP_MISSES
            self.recorder.add(name, 1, key=(path,))

    def _note_reuse(self, path: str) -> None:
        if self.recorder is not None:
            self.recorder.add(IO_HANDLE_REUSES, 1, key=(path,))

    def pool_stats(self) -> dict[str, int]:
        """Handle-pool counters (opens/reuses/evictions/...; for tests)."""
        return self._pool.stats()

    def close(self) -> None:
        """Drop every pooled handle (idempotent; the pool refills lazily)."""
        self._pool.close_all()

    # -- writes -------------------------------------------------------------

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        full = self._full(path)
        full.parent.mkdir(parents=True, exist_ok=True)
        tmp = full.with_name(f".{full.name}.tmp-{os.getpid()}-{next(_TMP_IDS)}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, full)
            self._pool.invalidate(self._normalize(path))
            self._note_open(self._normalize(path))
            self._note_write(self._normalize(path), len(data))
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise BackendError(f"writing {full}: {exc}") from exc

    # -- reads --------------------------------------------------------------

    def read_file(self, path: str, actor: int = -1) -> bytes:
        norm = self._normalize(path)
        full = self._full(path)
        try:
            handle, reused = self._pool.acquire(norm, full)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        try:
            if handle.mm is not None:
                data = handle.mm[: handle.size]
                self._note_mmap(norm, True)
            else:
                parts = []
                pos = 0
                while pos < handle.size:
                    chunk = os.pread(handle.fd, handle.size - pos, pos)
                    if not chunk:
                        break
                    parts.append(chunk)
                    pos += len(chunk)
                data = b"".join(parts)
                self._note_mmap(norm, False)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        finally:
            self._pool.release(handle)
        if reused:
            self._note_reuse(norm)
        self._note_open(norm)
        self._note_read(norm, len(data))
        return data

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        if offset < 0 or length < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        norm = self._normalize(path)
        full = self._full(path)
        try:
            handle, reused = self._pool.acquire(norm, full)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        try:
            if handle.mm is not None:
                data = handle.mm[offset : offset + length]
                self._note_mmap(norm, True)
            else:
                parts = []
                pos = offset
                want = length
                while want > 0:
                    chunk = os.pread(handle.fd, want, pos)
                    if not chunk:
                        break
                    parts.append(chunk)
                    pos += len(chunk)
                    want -= len(chunk)
                data = b"".join(parts)
                self._note_mmap(norm, False)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        finally:
            self._pool.release(handle)
        if len(data) != length:
            raise BackendError(
                f"short read from {full}: wanted {length} bytes at {offset}, "
                f"got {len(data)}"
            )
        if reused:
            self._note_reuse(norm)
        self._note_open(norm)
        self._note_read(norm, length)
        return data

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        out = memoryview(view).cast("B")
        length = len(out)
        if offset < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        norm = self._normalize(path)
        full = self._full(path)
        try:
            handle, reused = self._pool.acquire(norm, full)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        try:
            self._fill_one(handle, full, offset, out, norm)
        finally:
            self._pool.release(handle)
        if reused:
            self._note_reuse(norm)
        self._note_open(norm)
        self._note_read(norm, length)
        return length

    def readv(self, path: str, segments, actor: int = -1) -> int:
        norm = self._normalize(path)
        full = self._full(path)
        items: list[tuple[int, memoryview]] = []
        for offset, view in segments:
            out = memoryview(view).cast("B")
            if offset < 0:
                raise BackendError(
                    f"negative offset/length ({offset}, {len(out)})"
                )
            items.append((int(offset), out))
        try:
            handle, reused = self._pool.acquire(norm, full)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        total = 0
        try:
            self._note_open(norm)
            if handle.mm is not None:
                mview = np.frombuffer(handle.mm, dtype=np.uint8)
                for offset, out in items:
                    length = len(out)
                    if offset + length > handle.size:
                        raise BackendError(
                            f"short read from {full}: wanted {length} bytes "
                            f"at {offset}, got {max(0, handle.size - offset)}"
                        )
                    if length:
                        np.copyto(
                            np.frombuffer(out, dtype=np.uint8),
                            mview[offset : offset + length],
                        )
                    self._note_read(norm, length)
                    total += length
                self._note_mmap(norm, True)
            else:
                _preadv_fill(
                    handle.fd, full, [(o, v) for o, v in items if len(v)]
                )
                for offset, out in items:
                    self._note_read(norm, len(out))
                    total += len(out)
                self._note_mmap(norm, False)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        finally:
            self._pool.release(handle)
        if reused:
            self._note_reuse(norm)
        return total

    def _fill_one(
        self, handle: _Handle, full: Path, offset: int, out: memoryview, norm: str
    ) -> None:
        """Land ``len(out)`` bytes at ``offset`` into ``out`` from ``handle``."""
        length = len(out)
        if handle.mm is not None:
            got = max(0, min(handle.size - offset, length))
            if got != length:
                raise BackendError(
                    f"short read from {full}: wanted {length} bytes at "
                    f"{offset}, got {got}"
                )
            if length:
                # numpy copies release the GIL for large transfers, unlike
                # memoryview slice assignment.
                np.copyto(
                    np.frombuffer(out, dtype=np.uint8),
                    np.frombuffer(
                        handle.mm, dtype=np.uint8, count=length, offset=offset
                    ),
                )
            self._note_mmap(norm, True)
            return
        try:
            if length:
                _preadv_fill(handle.fd, full, [(offset, out)])
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        self._note_mmap(norm, False)

    # -- metadata ------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._full(path).exists()

    def size(self, path: str) -> int:
        try:
            return self._full(path).stat().st_size
        except OSError as exc:
            raise BackendError(f"stat {path!r}: {exc}") from exc

    def listdir(self, path: str) -> list[str]:
        full = self._full(path)
        try:
            return sorted(os.listdir(full))
        except OSError as exc:
            raise BackendError(f"listing {full}: {exc}") from exc

    def delete(self, path: str, missing_ok: bool = False) -> None:
        try:
            self._full(path).unlink(missing_ok=missing_ok)
        except OSError as exc:
            raise BackendError(f"deleting {path!r}: {exc}") from exc
        self._pool.invalidate(self._normalize(path))

    def __repr__(self) -> str:
        return f"PosixBackend({str(self.root)!r})"
