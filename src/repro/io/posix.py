"""Real-filesystem backend rooted at a directory."""

from __future__ import annotations

import itertools
import os
from pathlib import Path

from repro.errors import BackendError
from repro.io.backend import FileBackend

#: Process-wide counter so concurrent writers of the same path (simulated
#: aggregator ranks are threads) never share a temp file.
_TMP_IDS = itertools.count()


class PosixBackend(FileBackend):
    """Stores backend paths as real files under ``root``.

    ``root`` is created on construction if missing (pass ``create=False``
    for read-only uses that must not leave directories behind).  All
    library paths are relative; escaping the root (via ``..``) is rejected
    by the base class.

    Writes are atomic: data lands in a temp file in the target directory,
    is fsynced, and is renamed into place with ``os.replace``.  A reader (or
    a crash) can therefore never observe a torn file — only the old content
    or the new content.
    """

    def __init__(self, root: str | os.PathLike, create: bool = True):
        self.root = Path(root)
        if create:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise BackendError(f"cannot create root {self.root}: {exc}") from exc
        elif self.root.exists() and not self.root.is_dir():
            raise BackendError(f"backend root {self.root} is not a directory")

    def _full(self, path: str) -> Path:
        return self.root / self._normalize(path)

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        full = self._full(path)
        full.parent.mkdir(parents=True, exist_ok=True)
        tmp = full.with_name(f".{full.name}.tmp-{os.getpid()}-{next(_TMP_IDS)}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, full)
            self._note_open(self._normalize(path))
            self._note_write(self._normalize(path), len(data))
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise BackendError(f"writing {full}: {exc}") from exc

    def read_file(self, path: str, actor: int = -1) -> bytes:
        full = self._full(path)
        try:
            data = full.read_bytes()
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        self._note_open(self._normalize(path))
        self._note_read(self._normalize(path), len(data))
        return data

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        if offset < 0 or length < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        full = self._full(path)
        try:
            with open(full, "rb") as fh:
                fh.seek(offset)
                data = fh.read(length)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        if len(data) != length:
            raise BackendError(
                f"short read from {full}: wanted {length} bytes at {offset}, "
                f"got {len(data)}"
            )
        self._note_open(self._normalize(path))
        self._note_read(self._normalize(path), length)
        return data

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        out = memoryview(view).cast("B")
        length = len(out)
        if offset < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        full = self._full(path)
        got = 0
        try:
            with open(full, "rb") as fh:
                fh.seek(offset)
                while got < length:
                    n = fh.readinto(out[got:])
                    if not n:
                        break
                    got += n
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        if got != length:
            raise BackendError(
                f"short read from {full}: wanted {length} bytes at {offset}, "
                f"got {got}"
            )
        self._note_open(self._normalize(path))
        self._note_read(self._normalize(path), length)
        return length

    def readv(self, path: str, segments, actor: int = -1) -> int:
        full = self._full(path)
        norm = self._normalize(path)
        total = 0
        try:
            with open(full, "rb") as fh:
                self._note_open(norm)
                for offset, view in segments:
                    out = memoryview(view).cast("B")
                    length = len(out)
                    if offset < 0:
                        raise BackendError(
                            f"negative offset/length ({offset}, {length})"
                        )
                    fh.seek(offset)
                    got = 0
                    while got < length:
                        n = fh.readinto(out[got:])
                        if not n:
                            break
                        got += n
                    if got != length:
                        raise BackendError(
                            f"short read from {full}: wanted {length} bytes "
                            f"at {offset}, got {got}"
                        )
                    self._note_read(norm, length)
                    total += length
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        return total

    def exists(self, path: str) -> bool:
        return self._full(path).exists()

    def size(self, path: str) -> int:
        try:
            return self._full(path).stat().st_size
        except OSError as exc:
            raise BackendError(f"stat {path!r}: {exc}") from exc

    def listdir(self, path: str) -> list[str]:
        full = self._full(path)
        try:
            return sorted(os.listdir(full))
        except OSError as exc:
            raise BackendError(f"listing {full}: {exc}") from exc

    def delete(self, path: str, missing_ok: bool = False) -> None:
        try:
            self._full(path).unlink(missing_ok=missing_ok)
        except OSError as exc:
            raise BackendError(f"deleting {path!r}: {exc}") from exc

    def __repr__(self) -> str:
        return f"PosixBackend({str(self.root)!r})"
