"""Real-filesystem backend rooted at a directory."""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import BackendError
from repro.io.backend import FileBackend


class PosixBackend(FileBackend):
    """Stores backend paths as real files under ``root``.

    ``root`` is created on construction if missing.  All library paths are
    relative; escaping the root (via ``..``) is rejected by the base class.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _full(self, path: str) -> Path:
        return self.root / self._normalize(path)

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        full = self._full(path)
        full.parent.mkdir(parents=True, exist_ok=True)
        try:
            full.write_bytes(data)
        except OSError as exc:
            raise BackendError(f"writing {full}: {exc}") from exc

    def read_file(self, path: str, actor: int = -1) -> bytes:
        full = self._full(path)
        try:
            return full.read_bytes()
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        if offset < 0 or length < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        full = self._full(path)
        try:
            with open(full, "rb") as fh:
                fh.seek(offset)
                data = fh.read(length)
        except OSError as exc:
            raise BackendError(f"reading {full}: {exc}") from exc
        if len(data) != length:
            raise BackendError(
                f"short read from {full}: wanted {length} bytes at {offset}, "
                f"got {len(data)}"
            )
        return data

    def exists(self, path: str) -> bool:
        return self._full(path).exists()

    def size(self, path: str) -> int:
        try:
            return self._full(path).stat().st_size
        except OSError as exc:
            raise BackendError(f"stat {path!r}: {exc}") from exc

    def listdir(self, path: str) -> list[str]:
        full = self._full(path)
        try:
            return sorted(os.listdir(full))
        except OSError as exc:
            raise BackendError(f"listing {full}: {exc}") from exc

    def delete(self, path: str) -> None:
        try:
            self._full(path).unlink()
        except OSError as exc:
            raise BackendError(f"deleting {path!r}: {exc}") from exc

    def __repr__(self) -> str:
        return f"PosixBackend({str(self.root)!r})"
