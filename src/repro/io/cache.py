"""A bounded byte-range LRU cache over any :class:`FileBackend`.

The reader's chunked plan turns one query into many small ranged reads, and
the paper's progressive/repeat workloads (Figs. 8–9) re-issue overlapping
queries against the same files.  :class:`CachingBackend` sits between the
reader and real storage and memoizes read results keyed by the *exact*
request — ``(path, offset, length)`` for ranged reads, ``(path,)`` for
whole-file reads — so a warm repeat query performs zero backend I/O.

Design points:

* **Exact-request keys, not block alignment.**  The chunk index already
  coalesces adjacent chunks into stable runs, so identical queries produce
  identical request streams; exact keys make hits deterministic without a
  read-amplifying block size.
* **Bounded by bytes, evicted LRU.**  ``max_bytes`` caps the sum of cached
  payload sizes; inserting past the cap evicts least-recently-used entries.
  A single result larger than the whole budget is served but never stored.
* **Write/delete invalidation.**  Mutating a path drops every cached range
  of that path before the write reaches the base backend, so the cache can
  never serve stale bytes (repair rewrites files under live facades).
  Invalidation also bumps a per-path *epoch*; a read snapshots the epoch
  before touching the base backend and its result is only stored if the
  epoch is unchanged, so a write that interleaves with an in-flight read
  can never get pre-write bytes re-cached behind it (the concurrent
  serving layer reads while repair/compaction writes).
* **Observable.**  With a recorder attached, ``cache.hit`` / ``cache.miss``
  counters accumulate per path and ``cache.evict`` counts discarded
  entries; the plain ``hits``/``misses``/``evictions`` attributes work
  without one.

Thread-safe: the threaded executor issues reads concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.io.backend import FileBackend
from repro.obs.names import CACHE_EVICT, CACHE_HIT, CACHE_MISS
from repro.obs.recorder import Recorder

__all__ = ["CachingBackend"]

#: Cache key: ("file", path) or ("range", path, offset, length).
_Key = tuple


class CachingBackend(FileBackend):
    """Wraps ``base`` with a bounded byte-range LRU read cache."""

    def __init__(self, base: FileBackend, max_bytes: int):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.base = base
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[_Key, bytes] = OrderedDict()
        self._epochs: dict[str, int] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def attach_recorder(self, recorder: Recorder | None) -> None:
        """Cache counters accumulate here; I/O counters on ``base``."""
        self.recorder = recorder
        self.base.attach_recorder(recorder)

    # -- cache machinery ----------------------------------------------------

    def _lookup(self, key: _Key, path: str) -> bytes | None:
        with self._lock:
            data = self._entries.get(key)
            if data is None:
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        if self.recorder is not None:
            self.recorder.add(CACHE_HIT, 1, key=(path,))
        return data

    def _epoch(self, path: str) -> int:
        """Snapshot the path's invalidation epoch before a base-backend read."""
        with self._lock:
            return self._epochs.get(path, 0)

    def _store(self, key: _Key, path: str, data: bytes, epoch: int) -> None:
        evicted: list[_Key] = []
        with self._lock:
            self.misses += 1
            if (
                self._epochs.get(path, 0) == epoch
                and len(data) <= self.max_bytes
                and key not in self._entries
            ):
                self._entries[key] = data
                self._bytes += len(data)
                while self._bytes > self.max_bytes:
                    old_key, old_data = self._entries.popitem(last=False)
                    self._bytes -= len(old_data)
                    self.evictions += 1
                    evicted.append(old_key)
        if self.recorder is not None:
            self.recorder.add(CACHE_MISS, 1, key=(path,))
            for old_key in evicted:
                self.recorder.add(CACHE_EVICT, 1, key=(old_key[1],))

    def _invalidate(self, path: str) -> None:
        with self._lock:
            self._epochs[path] = self._epochs.get(path, 0) + 1
            stale = [k for k in self._entries if k[1] == path]
            for key in stale:
                self._bytes -= len(self._entries.pop(key))

    @property
    def cached_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # -- reads (cached) -----------------------------------------------------

    def read_file(self, path: str, actor: int = -1) -> bytes:
        path = self._normalize(path)
        key = ("file", path)
        data = self._lookup(key, path)
        if data is not None:
            return data
        epoch = self._epoch(path)
        data = self.base.read_file(path, actor=actor)
        self._store(key, path, data, epoch)
        return data

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        path = self._normalize(path)
        key = ("range", path, int(offset), int(length))
        data = self._lookup(key, path)
        if data is not None:
            return data
        epoch = self._epoch(path)
        data = self.base.read_range(path, offset, length, actor=actor)
        self._store(key, path, data, epoch)
        return data

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        """Cache-aware scatter-gather read.

        Routes through :meth:`read_range` so repeated ranged reads hit the
        cache; the copy into the caller's buffer is the price of a reusable
        cached entry (a cached range must outlive any one destination).
        """
        out = memoryview(view).cast("B")
        data = self.read_range(path, offset, len(out), actor=actor)
        out[:] = data
        return len(out)

    def readv(self, path: str, segments, actor: int = -1) -> int:
        """Serve cached segments from memory; fetch the misses in one
        :meth:`FileBackend.readv` on the base (one shared open), then cache
        copies of what was fetched."""
        path = self._normalize(path)
        total = 0
        missing: list[tuple[int, memoryview]] = []
        for offset, view in segments:
            out = memoryview(view).cast("B")
            key = ("range", path, int(offset), len(out))
            data = self._lookup(key, path)
            if data is not None:
                out[:] = data
                total += len(out)
            else:
                missing.append((int(offset), out))
        if missing:
            epoch = self._epoch(path)
            total += self.base.readv(path, missing, actor=actor)
            for offset, out in missing:
                self._store(
                    ("range", path, offset, len(out)), path, bytes(out), epoch
                )
        return total

    # -- mutations (invalidate, then forward) --------------------------------

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        path = self._normalize(path)
        self._invalidate(path)
        self.base.write_file(path, data, actor=actor)

    def delete(self, path: str, missing_ok: bool = False) -> None:
        path = self._normalize(path)
        self._invalidate(path)
        self.base.delete(path, missing_ok=missing_ok)

    # -- metadata (uncached) -------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def size(self, path: str) -> int:
        return self.base.size(path)

    def listdir(self, path: str) -> list[str]:
        return self.base.listdir(path)

    def __repr__(self) -> str:
        return (
            f"CachingBackend({self.base!r}, max_bytes={self.max_bytes}, "
            f"cached={self.cached_bytes}, hits={self.hits}, "
            f"misses={self.misses})"
        )
