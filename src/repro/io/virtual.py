"""In-memory backend with full operation recording.

Used three ways:

* fast functional tests (no disk churn),
* op-stream capture for the performance models — a write or read performed
  against a :class:`VirtualBackend` leaves behind the exact sequence of
  creates/opens/ranged-reads the algorithm issued, which
  :mod:`repro.perf` replays against a machine's storage model,
* access-pattern assertions ("reading this box opened exactly one file").

Thread-safe: simulated aggregator ranks write concurrently.
"""

from __future__ import annotations

import threading

from repro.errors import BackendError
from repro.io.backend import FileBackend, IoOp


class VirtualBackend(FileBackend):
    """A dict-backed filesystem that logs every operation."""

    def __init__(self):
        self._files: dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.ops: list[IoOp] = []

    def _log(self, op: IoOp) -> None:
        self.ops.append(op)

    # -- FileBackend interface ------------------------------------------------

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        path = self._normalize(path)
        with self._lock:
            created = path not in self._files
            self._files[path] = bytes(data)
            if created:
                self._log(IoOp("create", path, actor=actor))
            self._log(IoOp("write", path, nbytes=len(data), actor=actor))
        self._note_open(path)
        self._note_write(path, len(data))

    def read_file(self, path: str, actor: int = -1) -> bytes:
        path = self._normalize(path)
        with self._lock:
            data = self._files.get(path)
            if data is None:
                raise BackendError(f"no such virtual file: {path!r}")
            self._log(IoOp("open", path, actor=actor))
            self._log(IoOp("read", path, nbytes=len(data), offset=0, actor=actor))
        self._note_open(path)
        self._note_read(path, len(data))
        return data

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        path = self._normalize(path)
        if offset < 0 or length < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        with self._lock:
            data = self._files.get(path)
            if data is None:
                raise BackendError(f"no such virtual file: {path!r}")
            if offset + length > len(data):
                raise BackendError(
                    f"short read from {path!r}: wanted {length} bytes at {offset}, "
                    f"file has {len(data)}"
                )
            self._log(IoOp("open", path, actor=actor))
            self._log(IoOp("read", path, nbytes=length, offset=offset, actor=actor))
        self._note_open(path)
        self._note_read(path, length)
        return data[offset : offset + length]

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        path = self._normalize(path)
        out = memoryview(view).cast("B")
        length = len(out)
        if offset < 0:
            raise BackendError(f"negative offset/length ({offset}, {length})")
        with self._lock:
            data = self._files.get(path)
            if data is None:
                raise BackendError(f"no such virtual file: {path!r}")
            if offset + length > len(data):
                raise BackendError(
                    f"short read from {path!r}: wanted {length} bytes at {offset}, "
                    f"file has {len(data)}"
                )
            self._log(IoOp("open", path, actor=actor))
            self._log(IoOp("read", path, nbytes=length, offset=offset, actor=actor))
        self._note_open(path)
        self._note_read(path, length)
        out[:] = data[offset : offset + length]
        return length

    def readv(self, path: str, segments, actor: int = -1) -> int:
        path = self._normalize(path)
        segs = []
        for offset, view in segments:
            out = memoryview(view).cast("B")
            if offset < 0:
                raise BackendError(
                    f"negative offset/length ({offset}, {len(out)})"
                )
            segs.append((offset, out))
        total = 0
        with self._lock:
            data = self._files.get(path)
            if data is None:
                raise BackendError(f"no such virtual file: {path!r}")
            for offset, out in segs:
                if offset + len(out) > len(data):
                    raise BackendError(
                        f"short read from {path!r}: wanted {len(out)} bytes "
                        f"at {offset}, file has {len(data)}"
                    )
            self._log(IoOp("open", path, actor=actor))
            for offset, out in segs:
                self._log(
                    IoOp(
                        "read", path, nbytes=len(out), offset=offset, actor=actor
                    )
                )
                total += len(out)
        self._note_open(path)
        for offset, out in segs:
            self._note_read(path, len(out))
            out[:] = data[offset : offset + len(out)]
        return total

    def exists(self, path: str) -> bool:
        with self._lock:
            return self._normalize(path) in self._files

    def size(self, path: str) -> int:
        path = self._normalize(path)
        with self._lock:
            data = self._files.get(path)
        if data is None:
            raise BackendError(f"no such virtual file: {path!r}")
        return len(data)

    def listdir(self, path: str) -> list[str]:
        prefix = self._normalize(path)
        prefix = prefix + "/" if prefix else ""
        with self._lock:
            self._log(IoOp("list", prefix or "."))
            names = {
                p[len(prefix) :].split("/", 1)[0]
                for p in self._files
                if p.startswith(prefix)
            }
        return sorted(names)

    def delete(self, path: str, missing_ok: bool = False) -> None:
        path = self._normalize(path)
        with self._lock:
            if path not in self._files:
                if missing_ok:
                    return
                raise BackendError(f"no such virtual file: {path!r}")
            del self._files[path]

    # -- inspection helpers ------------------------------------------------------

    def clear_ops(self) -> None:
        with self._lock:
            self.ops = []

    def ops_of_kind(self, kind: str) -> list[IoOp]:
        with self._lock:
            return [op for op in self.ops if op.kind == kind]

    def files_touched(self, kind: str = "open", actor: int | None = None) -> set[str]:
        with self._lock:
            return {
                op.path
                for op in self.ops
                if op.kind == kind and (actor is None or op.actor == actor)
            }

    def file_count(self) -> int:
        with self._lock:
            return len(self._files)

    def total_stored_bytes(self) -> int:
        with self._lock:
            return sum(len(d) for d in self._files.values())

    def __repr__(self) -> str:
        return f"VirtualBackend(files={self.file_count()}, ops={len(self.ops)})"
