"""Storage backends: where datasets' bytes actually live.

Two interchangeable backends implement the same small interface
(:class:`FileBackend`):

* :class:`PosixBackend` — a directory on the real filesystem; used by the
  examples and the functional tests, so write→read cycles exercise real
  bytes on a real FS.
* :class:`VirtualBackend` — an in-memory filesystem that records every
  operation (creates, opens, writes, reads with offsets).  The recorded op
  stream is what the performance models replay against a machine's storage
  model, and what tests assert on ("the reader opened exactly one file").

Fault tolerance lives alongside the backends:

* :class:`FaultInjectingBackend` wraps any backend with a deterministic,
  seedable :class:`FaultPlan` (transient faults, torn writes, bit-flips,
  crash-after-K-writes) — the failure-matrix test harness;
* :class:`RetryPolicy` retries transient failures with deterministic
  exponential backoff; the writer and reader apply it on their hot paths.

Execution lives here too: :class:`IoExecutor` (and its
:class:`SerialExecutor` / :class:`ThreadedExecutor` implementations) runs
independent per-file operations — serially or on a bounded thread pool —
with deterministic result order and per-task child recorders.

The remote tier rounds out the picture: :class:`RemoteBackend` speaks the
same interface to a high-latency object store over a pluggable transport
(:class:`SimulatedTransport` with RTT/bandwidth/cost physics, or a
stdlib-only :class:`HttpTransport`); :class:`ResilientBackend` adds
deadlines, hedged requests, and a per-path circuit breaker; and
:class:`DiskCacheBackend` persists a crash-safe local cache tier so warm
reads survive a remote outage.  :func:`build_remote_stack` assembles the
whole composition.
"""

from repro.io.backend import FileBackend, IoOp
from repro.io.cache import CachingBackend
from repro.io.diskcache import DiskCacheBackend
from repro.io.executor import (
    IoExecutor,
    ProcessExecutor,
    ProcessTask,
    SerialExecutor,
    TaskOutcome,
    ThreadedExecutor,
    executor_for,
)
from repro.io.faults import FaultInjectingBackend, FaultPlan, FaultSpec, InjectedCrashError
from repro.io.posix import PosixBackend
from repro.io.prefix import PrefixBackend
from repro.io.remote import (
    HttpTransport,
    OutagePlan,
    RemoteBackend,
    SimulatedTransport,
    Transport,
    TransportStats,
)
from repro.io.resilience import (
    CircuitBreaker,
    Deadline,
    Hedger,
    ResilientBackend,
    build_remote_stack,
    current_deadline,
    deadline_scope,
)
from repro.io.retry import RetryPolicy, RetryStats
from repro.io.virtual import VirtualBackend

__all__ = [
    "FileBackend",
    "IoOp",
    "PosixBackend",
    "PrefixBackend",
    "VirtualBackend",
    "CachingBackend",
    "DiskCacheBackend",
    "FaultInjectingBackend",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrashError",
    "RetryPolicy",
    "RetryStats",
    "IoExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "ProcessTask",
    "TaskOutcome",
    "executor_for",
    "Transport",
    "TransportStats",
    "OutagePlan",
    "SimulatedTransport",
    "HttpTransport",
    "RemoteBackend",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "CircuitBreaker",
    "Hedger",
    "ResilientBackend",
    "build_remote_stack",
]
