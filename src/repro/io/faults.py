"""Deterministic fault injection for storage backends.

:class:`FaultInjectingBackend` wraps any :class:`~repro.io.backend.FileBackend`
and perturbs its operations according to a :class:`FaultPlan` — a seedable,
fully deterministic schedule of failures.  The same plan against the same
workload produces the same faults every run, which is what lets the failure
matrix in the test suite assert exact recovery behaviour.

Supported fault kinds (see :class:`FaultSpec`):

``transient``
    The first ``heal_after`` matching operations on each path raise
    :class:`~repro.errors.TransientBackendError`, then the path heals.
    Models flaky mounts; exercised by :class:`~repro.io.retry.RetryPolicy`.
``permanent``
    Every matching operation raises :class:`~repro.errors.BackendError`.
``torn_write``
    A matching write silently stores only a prefix of the data (the torn
    length is drawn from the plan's RNG).  Models a crash after a partial
    buffer flush — the caller sees success, the bytes are short.
``bit_flip``
    A matching read returns the true data with one deterministic bit
    inverted.  Models silent media corruption; caught by format checksums.
``crash``
    After ``after_writes`` successful writes, the next write stores a torn
    prefix and raises :class:`InjectedCrashError`; every later write also
    raises.  Models a process dying mid-dataset.  With ``op="any"`` the
    rule counts deletes too and can fire on a delete (nothing is removed;
    the process died first) — this is how the generation tests walk the
    crash point through every mutating backend op of a commit, not just
    its writes.  Plain ``crash`` rules keep their writes-only semantics.

Every injected fault is recorded as an ``IoOp(kind="fault", ...)`` in
:attr:`FaultInjectingBackend.ops` and counted per kind in
:attr:`FaultInjectingBackend.fault_counts`, so tests and stats can assert
exactly what happened.  With an obs recorder attached
(:meth:`~repro.io.backend.FileBackend.attach_recorder`), each fault also
lands as an ``io.fault`` event and an ``io.faults`` counter keyed by kind,
so exported traces show exactly where the plan bit.
"""

from __future__ import annotations

import fnmatch
import random
import threading
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import BackendError, TransientBackendError
from repro.io.backend import FileBackend, IoOp
from repro.obs.names import EV_FAULT, IO_FAULTS

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjectingBackend",
    "InjectedCrashError",
]


class InjectedCrashError(BackendError):
    """The fault plan simulated a process crash during a write."""


@dataclass(frozen=True)
class FaultSpec:
    """One rule in a fault plan.

    Parameters
    ----------
    kind:
        ``transient`` | ``permanent`` | ``torn_write`` | ``bit_flip`` |
        ``crash``.
    op:
        Which operations the rule applies to: ``"read"`` (read_file and
        read_range), ``"write"``, or ``"any"``.  ``torn_write`` and
        ``crash`` always apply to writes regardless of this field.
    path_glob:
        ``fnmatch`` pattern on the backend-relative path (e.g.
        ``"data/*.pbin"``).
    heal_after:
        ``transient`` only — how many failures each matching path suffers
        before healing.
    after_writes:
        ``crash`` only — number of writes that succeed before the crash.
    max_triggers:
        Cap on how many times this rule fires in total (``None`` =
        unlimited).  Useful for "corrupt exactly one read".
    """

    kind: str
    op: str = "read"
    path_glob: str = "*"
    heal_after: int = 1
    after_writes: int = 0
    max_triggers: int | None = None

    _KINDS = ("transient", "permanent", "torn_write", "bit_flip", "crash")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {self._KINDS}")
        if self.op not in ("read", "write", "any"):
            raise ValueError(f"op must be read/write/any, got {self.op!r}")
        if self.heal_after < 0 or self.after_writes < 0:
            raise ValueError("heal_after and after_writes must be >= 0")

    def matches(self, op: str, path: str) -> bool:
        if self.kind == "torn_write":
            applies_to = "write"
        elif self.kind == "crash":
            # Opt-in: crash rules stay writes-only unless explicitly
            # widened to every mutating op (op="any" counts deletes too).
            applies_to = "any" if self.op == "any" else "write"
        else:
            applies_to = self.op
        if applies_to != "any" and applies_to != op:
            return False
        return fnmatch.fnmatch(path, self.path_glob)


@dataclass
class FaultPlan:
    """A deterministic schedule of faults: a rule list plus a seeded RNG."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        self.rng = random.Random(self.seed)

    @classmethod
    def transient_reads(
        cls, heal_after: int = 1, path_glob: str = "*", seed: int = 0
    ) -> "FaultPlan":
        return cls(
            (FaultSpec("transient", op="read", path_glob=path_glob, heal_after=heal_after),),
            seed=seed,
        )

    @classmethod
    def transient_writes(
        cls, heal_after: int = 1, path_glob: str = "*", seed: int = 0
    ) -> "FaultPlan":
        return cls(
            (FaultSpec("transient", op="write", path_glob=path_glob, heal_after=heal_after),),
            seed=seed,
        )

    @classmethod
    def crash_after(cls, writes: int, seed: int = 0) -> "FaultPlan":
        return cls((FaultSpec("crash", after_writes=writes),), seed=seed)

    @classmethod
    def crash_after_ops(cls, ops: int, seed: int = 0) -> "FaultPlan":
        """Crash after ``ops`` mutating operations, counting writes AND
        deletes — the schedule the generation/compaction crash matrices
        sweep so every commit step (including marker invalidations and GC
        deletes) gets its turn as the crash point."""
        return cls((FaultSpec("crash", op="any", after_writes=ops),), seed=seed)


class FaultInjectingBackend(FileBackend):
    """Wraps a backend and injects the faults described by a plan."""

    def __init__(self, inner: FileBackend, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.ops: list[IoOp] = []
        self.fault_counts: Counter[str] = Counter()
        self.writes_completed = 0
        self.deletes_completed = 0
        self._lock = threading.Lock()
        # transient bookkeeping: remaining failures per (spec index, path)
        self._transient_left: dict[tuple[int, str], int] = {}
        self._triggers: Counter[int] = Counter()
        self._crashed = False

    # -- plan evaluation ---------------------------------------------------

    @property
    def faults_injected(self) -> int:
        return sum(self.fault_counts.values())

    def _record(self, kind: str, path: str, nbytes: int = 0) -> None:
        self.fault_counts[kind] += 1
        self.ops.append(IoOp("fault", path, nbytes=nbytes))
        if self.recorder is not None:
            self.recorder.add(IO_FAULTS, 1, key=(kind,))
            self.recorder.event(EV_FAULT, kind=kind, path=path, nbytes=nbytes)

    def _check_dead(self, path: str) -> None:
        """Once a crash rule fired, the simulated process is gone — every
        further operation (including cleanup) fails."""
        if self._crashed:
            raise InjectedCrashError(
                f"backend crashed earlier; operation on {path!r} refused"
            )

    def _crash_ops(self, spec: FaultSpec) -> int:
        """The op count a crash rule compares against ``after_writes``:
        writes-only classically, writes + deletes for ``op="any"`` rules."""
        if spec.op == "any":
            return self.writes_completed + self.deletes_completed
        return self.writes_completed

    def _fire(self, idx: int, spec: FaultSpec) -> bool:
        """Whether rule ``idx`` may still trigger (respects max_triggers)."""
        if spec.max_triggers is not None and self._triggers[idx] >= spec.max_triggers:
            return False
        self._triggers[idx] += 1
        return True

    def _check_read(self, path: str) -> list[FaultSpec]:
        """Raise for transient/permanent read faults; return bit-flip specs."""
        flips: list[FaultSpec] = []
        for idx, spec in enumerate(self.plan.specs):
            if not spec.matches("read", path):
                continue
            if spec.kind == "permanent" and self._fire(idx, spec):
                self._record("permanent", path)
                raise BackendError(f"injected permanent fault reading {path!r}")
            if spec.kind == "transient":
                key = (idx, path)
                left = self._transient_left.setdefault(key, spec.heal_after)
                if left > 0 and self._fire(idx, spec):
                    self._transient_left[key] = left - 1
                    self._record("transient", path)
                    raise TransientBackendError(
                        f"injected transient fault reading {path!r} "
                        f"({left - 1} failures left before heal)"
                    )
            if spec.kind == "bit_flip":
                flips.append(spec)
        return flips

    def _apply_flips(self, path: str, data: bytes, specs: list[FaultSpec]) -> bytes:
        if not specs or not data:
            return data
        buf = bytearray(data)
        for spec in specs:
            idx = self.plan.specs.index(spec)
            if not self._fire(idx, spec):
                continue
            pos = self.plan.rng.randrange(len(buf))
            bit = self.plan.rng.randrange(8)
            buf[pos] ^= 1 << bit
            self._record("bit_flip", path, nbytes=1)
        return bytes(buf)

    def _check_write(self, path: str, data: bytes) -> bytes | None:
        """Raise/perturb for write faults; returns the data actually stored.

        Returns ``None`` when a crash rule fires *and* the torn prefix has
        already been stored (the caller must then raise).
        """
        for idx, spec in enumerate(self.plan.specs):
            if not spec.matches("write", path):
                continue
            if spec.kind == "crash":
                if self._crashed or self._crash_ops(spec) >= spec.after_writes:
                    self._crashed = True
                    self._record("crash", path)
                    if len(data) > 0:
                        cut = self.plan.rng.randrange(len(data))
                        if cut > 0:
                            self.inner.write_file(path, data[:cut])
                    raise InjectedCrashError(
                        f"injected crash on write #{self.writes_completed + 1} "
                        f"({path!r})"
                    )
            elif spec.kind == "permanent" and self._fire(idx, spec):
                self._record("permanent", path)
                raise BackendError(f"injected permanent fault writing {path!r}")
            elif spec.kind == "transient":
                key = (idx, path)
                left = self._transient_left.setdefault(key, spec.heal_after)
                if left > 0 and self._fire(idx, spec):
                    self._transient_left[key] = left - 1
                    self._record("transient", path)
                    raise TransientBackendError(
                        f"injected transient fault writing {path!r} "
                        f"({left - 1} failures left before heal)"
                    )
            elif spec.kind == "torn_write" and self._fire(idx, spec):
                cut = self.plan.rng.randrange(len(data)) if data else 0
                self._record("torn_write", path, nbytes=len(data) - cut)
                return data[:cut]
        return data

    # -- FileBackend interface ---------------------------------------------

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        path = self._normalize(path)
        with self._lock:
            self._check_dead(path)
            stored = self._check_write(path, data)
        self.inner.write_file(path, stored, actor=actor)
        with self._lock:
            self.writes_completed += 1

    def read_file(self, path: str, actor: int = -1) -> bytes:
        path = self._normalize(path)
        with self._lock:
            self._check_dead(path)
            flips = self._check_read(path)
        data = self.inner.read_file(path, actor=actor)
        with self._lock:
            return self._apply_flips(path, data, flips)

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        path = self._normalize(path)
        with self._lock:
            self._check_dead(path)
            flips = self._check_read(path)
        data = self.inner.read_range(path, offset, length, actor=actor)
        with self._lock:
            return self._apply_flips(path, data, flips)

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        path = self._normalize(path)
        with self._lock:
            self._check_dead(path)
            flips = self._check_read(path)
        n = self.inner.readinto(path, offset, view, actor=actor)
        if flips:
            out = memoryview(view).cast("B")
            with self._lock:
                out[:] = self._apply_flips(path, bytes(out), flips)
        return n

    def readv(self, path: str, segments, actor: int = -1) -> int:
        # One fault check per readv call, mirroring its one-open semantics
        # (a transient fault fails the whole scatter-gather read, as a real
        # failed open would).
        path = self._normalize(path)
        segs = [(off, memoryview(v).cast("B")) for off, v in segments]
        with self._lock:
            self._check_dead(path)
            flips = self._check_read(path)
        total = self.inner.readv(path, segs, actor=actor)
        if flips:
            # Flip inside the *data* segments: segment 0 of every
            # scatter-gather read is the fixed-size header, and a header
            # flip fails fast at parse time instead of exercising the
            # per-segment checksum isolation the format promises.  With
            # encoded columnar extents this lands the flip in compressed
            # segment bytes.
            targets = segs[1:] if len(segs) > 1 else segs
            blob = bytearray()
            for _off, out in targets:
                blob += out
            with self._lock:
                blob = bytearray(self._apply_flips(path, bytes(blob), flips))
            pos = 0
            for _off, out in targets:
                out[:] = blob[pos : pos + len(out)]
                pos += len(out)
        return total

    def exists(self, path: str) -> bool:
        with self._lock:
            self._check_dead(path)
        return self.inner.exists(path)

    def size(self, path: str) -> int:
        with self._lock:
            self._check_dead(path)
        return self.inner.size(path)

    def listdir(self, path: str) -> list[str]:
        with self._lock:
            self._check_dead(path)
        return self.inner.listdir(path)

    def delete(self, path: str, missing_ok: bool = False) -> None:
        with self._lock:
            self._check_dead(path)
            for spec in self.plan.specs:
                if spec.kind != "crash" or not spec.matches("delete", path):
                    continue
                if self._crashed or self._crash_ops(spec) >= spec.after_writes:
                    # The process died before issuing the delete: the file
                    # stays exactly as it was.
                    self._crashed = True
                    self._record("crash", path)
                    raise InjectedCrashError(
                        f"injected crash on delete ({path!r})"
                    )
        self.inner.delete(path, missing_ok=missing_ok)
        with self._lock:
            self.deletes_completed += 1

    def __repr__(self) -> str:
        return (
            f"FaultInjectingBackend({self.inner!r}, "
            f"faults={dict(self.fault_counts)})"
        )
