"""Deadlines, hedged requests, and circuit breaking for remote reads.

A remote object store fails in ways local storage does not: requests stall
for seconds, a whole endpoint goes dark, tail latency eats an interactive
query's budget.  This module is the robustness half of the remote tier —
:class:`ResilientBackend` wraps any :class:`~repro.io.backend.FileBackend`
(in practice a :class:`~repro.io.remote.RemoteBackend`) and composes four
defenses, outermost first:

1. **Deadlines.**  A :class:`Deadline` is carried *ambiently* through a
   :mod:`contextvars` scope (:func:`deadline_scope` /
   :func:`current_deadline`), because the query engine fans work out
   through executors and thread pools where threading a parameter through
   every signature would touch dozens of call sites.  Operations that start
   after expiry are shed immediately (``deadline.shed``), and the remote
   backend narrows each request's timeout to the remaining budget.
2. **Hedged requests.**  Reads that outlive the observed latency
   percentile (:class:`Hedger`, tail-latency style) launch a second
   identical request; first result wins, the loser is consumed quietly.
   Hedging only applies to idempotent reads, into private buffers, so a
   losing attempt can never tear a caller-visible result.
3. **Circuit breaker.**  Per-path failure tracking
   (:class:`CircuitBreaker`, closed → open → half-open) fails fast with
   :class:`~repro.errors.BreakerOpenError` instead of hammering a dead
   store — an open breaker turns a multi-second timeout into an immediate
   degraded read from whatever cache tier holds the data.
4. **Retry.**  An optional :class:`~repro.io.retry.RetryPolicy` sits
   inside the breaker (each logical operation counts once against the
   breaker regardless of its retry attempts) and, as of this change, stops
   retrying when the ambient deadline can no longer afford another sleep.

:func:`build_remote_stack` assembles the full production composition::

    CachingBackend (RAM LRU)
      └─ DiskCacheBackend (local disk, crash-safe)
           └─ ResilientBackend (deadline → hedge → breaker → retry)
                └─ RemoteBackend (transport: simulated or HTTP)

so warm data is served without any remote traffic — which is exactly what
keeps queries answerable through a full remote outage.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures import wait as _futures_wait
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.errors import (
    BreakerOpenError,
    ConfigError,
    DeadlineExceededError,
    TransientBackendError,
)
from repro.io.backend import FileBackend
from repro.obs.names import (
    BREAKER_FAST_FAILS,
    BREAKER_TRANSITIONS,
    DEADLINE_SHED,
    EV_BREAKER_STATE,
    EV_DEADLINE_SHED,
    EV_HEDGE,
    HEDGE_LAUNCHED,
    HEDGE_WASTED,
    HEDGE_WINS,
)
from repro.obs.recorder import Recorder

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "CircuitBreaker",
    "Hedger",
    "ResilientBackend",
    "build_remote_stack",
]


# -- deadlines ---------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """An absolute point on a monotonic clock by which work must finish.

    Built with :meth:`after`; carried through :func:`deadline_scope`.  The
    clock is injectable so tests can expire deadlines without sleeping.
    """

    at: float
    total_s: float
    clock: object = field(default=time.monotonic, compare=False, repr=False)

    @classmethod
    def after(cls, seconds: float, clock=time.monotonic) -> "Deadline":
        if seconds <= 0:
            raise ConfigError(f"deadline must be > 0 seconds, got {seconds}")
        return cls(at=clock() + seconds, total_s=float(seconds), clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - self.clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        rem = self.remaining()
        if rem <= 0.0:
            raise DeadlineExceededError(
                f"{what}: deadline of {self.total_s * 1e3:.0f} ms exceeded "
                f"({-rem * 1e3:.1f} ms ago)"
            )

    def __repr__(self) -> str:
        return (
            f"Deadline(total={self.total_s * 1e3:.0f}ms, "
            f"remaining={self.remaining() * 1e3:.0f}ms)"
        )


_DEADLINE: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The ambient deadline for this context, or ``None``."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Make ``deadline`` ambient within the block (``None`` = clear it).

    ContextVars do not cross thread boundaries: code that ships closures to
    worker threads (the query engine, the hedging pool) must capture the
    deadline at submit time and re-enter a scope inside the task body.
    """
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


# -- circuit breaker ---------------------------------------------------------


class _PathState:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Per-path closed → open → half-open failure tracking.

    ``failure_threshold`` consecutive transient failures against one path
    open its breaker; for ``reset_after`` seconds every request to that
    path fails fast with :class:`~repro.errors.BreakerOpenError` (counted
    under ``breaker.fast_fails``) without touching the store.  After the
    cooldown, the breaker goes *half-open*: exactly one probe request is
    let through — success closes the breaker, failure re-opens it for
    another cooldown.  Transitions are counted (``breaker.transitions``)
    and emitted as ``breaker.state`` events on the attached recorder.

    Thread-safe; the clock is injectable so chaos tests can march time
    forward without sleeping.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_after: float = 5.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after < 0:
            raise ConfigError(f"reset_after must be >= 0, got {reset_after}")
        self.failure_threshold = int(failure_threshold)
        self.reset_after = float(reset_after)
        self.clock = clock
        self.recorder: Recorder | None = None
        self._lock = threading.Lock()
        self._paths: dict[str, _PathState] = {}
        self.fast_fails = 0

    def state(self, path: str) -> str:
        with self._lock:
            st = self._paths.get(path)
            if st is None:
                return "closed"
            if (
                st.state == "open"
                and self.clock() - st.opened_at >= self.reset_after
            ):
                return "half-open"
            return st.state

    def _transition(self, path: str, st: _PathState, to: str) -> None:
        """Move ``path`` to state ``to`` (caller holds the lock)."""
        old = st.state
        if old == to:
            return
        st.state = to
        if to == "open":
            st.opened_at = self.clock()
            st.probing = False
        if to == "closed":
            st.failures = 0
            st.probing = False
        if self.recorder is not None:
            self.recorder.add(BREAKER_TRANSITIONS, 1, key=(to,))
            self.recorder.event(
                EV_BREAKER_STATE,
                path=path,
                to=to,
                failures=st.failures,
                **{"from": old},
            )

    def allow(self, path: str) -> None:
        """Admit one request to ``path`` or raise
        :class:`~repro.errors.BreakerOpenError` immediately."""
        with self._lock:
            st = self._paths.get(path)
            if st is None or st.state == "closed":
                return
            if st.state == "open":
                if self.clock() - st.opened_at >= self.reset_after:
                    self._transition(path, st, "half-open")
                else:
                    self._fast_fail(path)
            if st.state == "half-open":
                if st.probing:
                    self._fast_fail(path)
                st.probing = True
                return

    def _fast_fail(self, path: str) -> None:
        self.fast_fails += 1
        if self.recorder is not None:
            self.recorder.add(BREAKER_FAST_FAILS, 1, key=(path,))
        raise BreakerOpenError(
            f"circuit breaker open for {path!r} "
            f"(failing fast; probe in <= {self.reset_after:.1f}s)"
        )

    def record_success(self, path: str) -> None:
        with self._lock:
            st = self._paths.get(path)
            if st is None:
                return
            st.probing = False
            self._transition(path, st, "closed")
            st.failures = 0

    def record_failure(self, path: str) -> None:
        with self._lock:
            st = self._paths.setdefault(path, _PathState())
            st.failures += 1
            st.probing = False
            if st.state == "half-open" or st.failures >= self.failure_threshold:
                self._transition(path, st, "open")


# -- hedging ----------------------------------------------------------------


class Hedger:
    """Decides *when* a read has waited long enough to deserve a hedge.

    Keeps a sliding window of observed request latencies and triggers the
    second request once the primary outlives the ``percentile``-th of that
    window (the classic tail-at-scale recipe).  Until ``min_samples``
    observations exist — or when the percentile is implausibly low — the
    floor ``min_wait_s`` applies, which also prevents hedge storms against
    a uniformly slow store.
    """

    def __init__(
        self,
        *,
        percentile: float = 0.95,
        min_wait_s: float = 0.05,
        window: int = 128,
        min_samples: int = 8,
    ):
        if not 0.0 < percentile <= 1.0:
            raise ConfigError(f"percentile must be in (0, 1], got {percentile}")
        if min_wait_s < 0:
            raise ConfigError(f"min_wait_s must be >= 0, got {min_wait_s}")
        self.percentile = float(percentile)
        self.min_wait_s = float(min_wait_s)
        self.min_samples = int(min_samples)
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=int(window))

    def observe(self, latency_s: float) -> None:
        with self._lock:
            self._window.append(float(latency_s))

    def trigger_delay(self) -> float:
        """Seconds to wait on the primary before launching the hedge."""
        with self._lock:
            if len(self._window) < self.min_samples:
                return self.min_wait_s
            ordered = sorted(self._window)
            idx = min(len(ordered) - 1, int(self.percentile * len(ordered)))
            return max(self.min_wait_s, ordered[idx])


# -- the resilient wrapper ---------------------------------------------------


class ResilientBackend(FileBackend):
    """Deadline shedding, hedged reads, and circuit breaking over ``base``.

    Every operation runs the same guard pipeline: shed if the ambient
    :class:`Deadline` already expired, fail fast if the path's breaker is
    open, then execute — reads optionally hedged, everything optionally
    retried by ``retry`` *inside* the breaker (one logical operation is one
    breaker verdict, however many attempts it took).  Success closes the
    breaker for that path; a transient failure (after retries) counts
    against it.  Permanent errors — missing objects, corrupt payloads —
    pass through untouched and never trip the breaker.

    Hedged attempts read into private buffers; the caller's views are only
    filled from the winning attempt, so a slow loser cannot tear results.
    """

    def __init__(
        self,
        base: FileBackend,
        *,
        breaker: CircuitBreaker | None = None,
        hedger: Hedger | None = None,
        retry=None,
        hedge_workers: int = 4,
        clock=time.monotonic,
    ):
        self.base = base
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        self.hedger = hedger
        self.retry = retry
        self.clock = clock
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._hedge_workers = int(hedge_workers)
        self.shed = 0
        self.hedges_launched = 0

    def attach_recorder(self, recorder: Recorder | None) -> None:
        self.recorder = recorder
        self.breaker.recorder = recorder
        self.base.attach_recorder(recorder)

    def close(self) -> None:
        """Shut down the hedging pool (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _pool_get(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._hedge_workers,
                    thread_name_prefix="repro-hedge",
                )
            return self._pool

    # -- guard pipeline ------------------------------------------------------

    def _shed_check(self, path: str, op: str) -> Deadline | None:
        deadline = current_deadline()
        if deadline is not None and deadline.expired():
            self.shed += 1
            if self.recorder is not None:
                self.recorder.add(DEADLINE_SHED, 1)
                self.recorder.event(EV_DEADLINE_SHED, path=path, op=op)
            deadline.check(f"{op} {path!r}")
        return deadline

    def _guarded(self, path: str, op: str, fn, *, hedge: bool):
        deadline = self._shed_check(path, op)
        self.breaker.allow(path)
        if hedge and self.hedger is not None:
            call = lambda: self._hedged(path, op, fn, deadline)  # noqa: E731
        else:
            call = fn
        try:
            if self.retry is not None:
                result = self.retry.call(call, recorder=self.recorder)
            else:
                result = call()
        except TransientBackendError:
            self.breaker.record_failure(path)
            raise
        self.breaker.record_success(path)
        return result

    def _hedged(self, path: str, op: str, fn, deadline: Deadline | None):
        """Run ``fn``; launch one identical hedge if it outlives the trigger."""
        hedger = self.hedger
        assert hedger is not None

        def attempt():
            started = self.clock()
            if deadline is not None:
                with deadline_scope(deadline):
                    result = fn()
            else:
                result = fn()
            hedger.observe(self.clock() - started)
            return result

        delay = hedger.trigger_delay()
        pool = self._pool_get()
        primary = pool.submit(attempt)
        try:
            return primary.result(timeout=delay)
        except _FuturesTimeout:
            pass
        # Primary is slow: launch the hedge and take whichever lands first.
        self.hedges_launched += 1
        if self.recorder is not None:
            self.recorder.add(HEDGE_LAUNCHED, 1)
            self.recorder.event(EV_HEDGE, path=path, op=op, waited_s=delay)
        secondary = pool.submit(attempt)
        pending = {primary, secondary}
        first_error: BaseException | None = None
        while pending:
            done, pending = _futures_wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                exc = fut.exception()
                if exc is None:
                    winner = fut
                    for loser in pending:
                        # The losing attempt finishes (or fails) in the
                        # background; consume its outcome so nothing leaks.
                        loser.add_done_callback(lambda f: f.exception())
                    if self.recorder is not None:
                        if winner is secondary:
                            self.recorder.add(HEDGE_WINS, 1)
                        else:
                            self.recorder.add(HEDGE_WASTED, 1)
                    return winner.result()
                if first_error is None or fut is primary:
                    first_error = exc
        assert first_error is not None
        raise first_error

    # -- reads (hedged) ------------------------------------------------------

    def read_file(self, path: str, actor: int = -1) -> bytes:
        path = self._normalize(path)
        return self._guarded(
            path,
            "read_file",
            lambda: self.base.read_file(path, actor=actor),
            hedge=True,
        )

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        path = self._normalize(path)
        return self._guarded(
            path,
            "read_range",
            lambda: self.base.read_range(path, offset, length, actor=actor),
            hedge=True,
        )

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        out = memoryview(view).cast("B")
        data = self.read_range(path, offset, len(out), actor=actor)
        out[:] = data
        return len(out)

    def readv(self, path: str, segments, actor: int = -1) -> int:
        path = self._normalize(path)
        segs = [(int(off), memoryview(v).cast("B")) for off, v in segments]
        if not segs:
            return 0

        def attempt() -> list[bytearray]:
            # Private buffers per attempt: two racing hedge attempts must
            # never write into the caller's views concurrently.
            bufs = [bytearray(len(out)) for _, out in segs]
            self.base.readv(
                path,
                [(off, buf) for (off, _), buf in zip(segs, bufs)],
                actor=actor,
            )
            return bufs

        bufs = self._guarded(path, "readv", attempt, hedge=True)
        total = 0
        for (_, out), buf in zip(segs, bufs):
            out[:] = buf
            total += len(out)
        return total

    # -- writes / metadata (guarded, not hedged) -----------------------------

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        path = self._normalize(path)
        self._guarded(
            path,
            "write_file",
            lambda: self.base.write_file(path, data, actor=actor),
            hedge=False,
        )

    def exists(self, path: str) -> bool:
        path = self._normalize(path)
        return self._guarded(
            path, "exists", lambda: self.base.exists(path), hedge=False
        )

    def size(self, path: str) -> int:
        path = self._normalize(path)
        return self._guarded(
            path, "size", lambda: self.base.size(path), hedge=False
        )

    def listdir(self, path: str) -> list[str]:
        path = self._normalize(path)
        return self._guarded(
            path, "listdir", lambda: self.base.listdir(path), hedge=False
        )

    def delete(self, path: str, missing_ok: bool = False) -> None:
        path = self._normalize(path)
        self._guarded(
            path,
            "delete",
            lambda: self.base.delete(path, missing_ok=missing_ok),
            hedge=False,
        )

    def __repr__(self) -> str:
        return (
            f"ResilientBackend({self.base!r}, shed={self.shed}, "
            f"hedges={self.hedges_launched}, "
            f"fast_fails={self.breaker.fast_fails})"
        )


# -- stack assembly ----------------------------------------------------------


def build_remote_stack(
    transport,
    *,
    ram_cache_bytes: int = 64 << 20,
    disk_cache_dir: str | None = None,
    disk_cache_bytes: int = 256 << 20,
    retry=None,
    breaker: CircuitBreaker | None = None,
    hedger: Hedger | None = None,
    request_timeout: float | None = None,
    clock=time.monotonic,
) -> FileBackend:
    """Assemble the full remote read stack, warm tiers outermost.

    ``RAM LRU → local-disk cache → resilience → remote`` — reads served by
    either cache tier involve no remote request at all, which is what
    keeps warm queries bit-identical and fast through an outage.  Pass
    ``disk_cache_dir=None`` to skip the disk tier, ``hedger=None`` to
    disable hedging, ``retry=None`` to disable retries.
    """
    from repro.io.cache import CachingBackend
    from repro.io.remote import RemoteBackend

    backend: FileBackend = RemoteBackend(
        transport, default_timeout=request_timeout
    )
    backend = ResilientBackend(
        backend,
        breaker=breaker if breaker is not None else CircuitBreaker(clock=clock),
        hedger=hedger,
        retry=retry,
        clock=clock,
    )
    if disk_cache_dir is not None:
        from repro.io.diskcache import DiskCacheBackend

        backend = DiskCacheBackend(
            backend, disk_cache_dir, max_bytes=disk_cache_bytes
        )
    if ram_cache_bytes > 0:
        backend = CachingBackend(backend, max_bytes=ram_cache_bytes)
    return backend
