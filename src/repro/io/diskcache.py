"""A crash-safe local-disk cache tier under the block-cache interface.

The RAM LRU (:class:`~repro.io.cache.CachingBackend`) is fast but small and
dies with the process; the remote tier is durable but slow, metered, and
occasionally *gone*.  :class:`DiskCacheBackend` is the tier between them: a
bounded, LRU-evicted cache of read results persisted as one small file per
entry in a local directory, wrapping any base backend exactly like the RAM
cache does (same exact-request keys, same per-path invalidation epochs, same
store-after-invalidate guard), so the two compose into the stack
``RAM → disk → resilient remote`` with identical semantics at every tier.

Crash safety is inherited from the library's one durable-write idiom: every
entry is written to a temp file, fsynced, and renamed into place with
``os.replace``, so the directory only ever contains whole entries.  Each
entry file is self-describing — a one-line JSON header (path, offset,
length, payload digest) followed by the payload — which is what makes
recovery trivial: on construction the directory is scanned, entries that
parse and match their digest are adopted into the LRU (ordered by mtime),
and anything torn, truncated, or stale-format is deleted.  A cache that was
warm before a crash (or a previous process) is warm after it — that is the
"recently-warm queries survive a full remote outage" property the
resilience stack leans on.

Unlike the RAM tier, this tier also caches **metadata** — ``size``,
``exists``, and ``listdir`` results — as ordinary entries.  Against a remote
object store every metadata probe is a metered HEAD/LIST request, and the
read path does a ``size`` preflight before each data read, so uncached
metadata would both bill per query and make a fully-warm dataset unreadable
the moment the store goes down.  Metadata entries obey the same invalidation
rules as data: mutating a path drops its size/exists entries and every
cached listing of an ancestor directory (and bumps their epochs, so an
in-flight probe can never re-cache a pre-mutation answer).

Counters mirror the RAM tier under distinct names (``cache.disk_hit`` /
``cache.disk_miss`` / ``cache.disk_evict``, keyed by path) so a trace shows
exactly which tier served every read.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import ConfigError
from repro.io.backend import FileBackend
from repro.obs.names import CACHE_DISK_EVICT, CACHE_DISK_HIT, CACHE_DISK_MISS
from repro.obs.recorder import Recorder

__all__ = ["DiskCacheBackend"]

#: Entry-format magic; bump to orphan (and GC) entries from older layouts.
_MAGIC = "repro-diskcache-v1"

#: Process-wide counter so concurrent stores never share a temp file.
_TMP_IDS = itertools.count()

#: Cache key: ("file", path), ("range", path, offset, length), or a
#: metadata probe — ("size", path), ("exists", path), ("list", dirpath).
_Key = tuple


def _ancestor_dirs(path: str) -> tuple[str, ...]:
    """Every directory whose listing ``path`` appears under, root included:
    ``"a/b/c" -> ("a/b", "a", "")``."""
    parts = path.split("/")
    return tuple("/".join(parts[:i]) for i in range(len(parts) - 1, -1, -1))


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def _entry_name(key: _Key) -> str:
    """Stable filename for a key (flat directory, collision-free)."""
    return hashlib.sha256(repr(key).encode()).hexdigest()[:32] + ".entry"


class DiskCacheBackend(FileBackend):
    """Wraps ``base`` with a bounded, persistent, LRU disk cache."""

    def __init__(self, base: FileBackend, cache_dir: str | os.PathLike, max_bytes: int):
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {max_bytes}")
        self.base = base
        self.max_bytes = int(max_bytes)
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: key -> (entry filename, payload size); insertion order = LRU order.
        self._entries: OrderedDict[_Key, tuple[str, int]] = OrderedDict()
        self._epochs: dict[str, int] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries adopted / discarded by the recovery scan (observability
        #: for crash tests).
        self.recovered = 0
        self.discarded = 0
        self._recover()

    def attach_recorder(self, recorder: Recorder | None) -> None:
        """Disk-cache counters accumulate here; I/O counters on ``base``."""
        self.recorder = recorder
        self.base.attach_recorder(recorder)

    # -- entry files ---------------------------------------------------------

    def _write_entry(self, key: _Key, path: str, data: bytes) -> str:
        """Atomically persist one entry; returns its filename."""
        name = _entry_name(key)
        header = json.dumps(
            {
                "magic": _MAGIC,
                "key": list(key),
                "path": path,
                "size": len(data),
                "digest": _digest(data),
            },
            separators=(",", ":"),
        ).encode()
        full = self.cache_dir / name
        tmp = full.with_name(f".{name}.tmp-{os.getpid()}-{next(_TMP_IDS)}")
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(b"\n")
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, full)
        return name

    def _read_entry(self, name: str) -> tuple[_Key, str, bytes] | None:
        """Parse one entry file; ``None`` (never an exception) if unusable."""
        try:
            raw = (self.cache_dir / name).read_bytes()
            head, _, payload = raw.partition(b"\n")
            meta = json.loads(head)
            if meta.get("magic") != _MAGIC:
                return None
            if len(payload) != meta["size"] or _digest(payload) != meta["digest"]:
                return None
            return tuple(meta["key"]), meta["path"], payload
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _unlink(self, name: str) -> None:
        try:
            (self.cache_dir / name).unlink(missing_ok=True)
        except OSError:
            pass

    def _recover(self) -> None:
        """Adopt whole entries left by a previous process; GC everything else.

        ``os.replace`` guarantees each surviving entry file is complete, so
        recovery is just parse-or-delete.  Adopted entries are LRU-ordered
        by mtime (the best available proxy for previous recency) and the
        byte budget is re-enforced, evicting oldest-first if the directory
        outgrew a smaller configured cap.
        """
        found: list[tuple[float, str, _Key, str, int]] = []
        for entry in sorted(self.cache_dir.iterdir()):
            if entry.name.startswith("."):
                # A temp file is, by construction, an abandoned torn write.
                self._unlink(entry.name)
                self.discarded += 1
                continue
            if not entry.name.endswith(".entry"):
                continue
            parsed = self._read_entry(entry.name)
            if parsed is None:
                self._unlink(entry.name)
                self.discarded += 1
                continue
            key, path, payload = parsed
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                continue
            found.append((mtime, entry.name, key, path, len(payload)))
        for _mtime, name, key, _path, size in sorted(found):
            if key in self._entries:
                self._unlink(name)
                continue
            self._entries[key] = (name, size)
            self._bytes += size
            self.recovered += 1
        while self._bytes > self.max_bytes and self._entries:
            _key, (name, size) = self._entries.popitem(last=False)
            self._bytes -= size
            self._unlink(name)
            self.recovered -= 1
            self.discarded += 1

    # -- cache machinery (mirrors CachingBackend) ----------------------------

    def _lookup(self, key: _Key, path: str) -> bytes | None:
        data: bytes | None = None
        with self._lock:
            slot = self._entries.get(key)
            if slot is not None:
                parsed = self._read_entry(slot[0])
                if parsed is None:
                    # Torn/vanished on disk: forget it and fall through to
                    # a normal miss.
                    self._bytes -= slot[1]
                    del self._entries[key]
                    self._unlink(slot[0])
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    data = parsed[2]
        if data is not None and self.recorder is not None:
            self.recorder.add(CACHE_DISK_HIT, 1, key=(path,))
        return data

    def _epoch(self, path: str) -> int:
        with self._lock:
            return self._epochs.get(path, 0)

    def _store(self, key: _Key, path: str, data: bytes, epoch: int) -> None:
        evicted: list[str] = []
        with self._lock:
            self.misses += 1
            if (
                self._epochs.get(path, 0) == epoch
                and len(data) <= self.max_bytes
                and key not in self._entries
            ):
                name = self._write_entry(key, path, data)
                self._entries[key] = (name, len(data))
                self._bytes += len(data)
                while self._bytes > self.max_bytes:
                    old_key, (old_name, old_size) = self._entries.popitem(last=False)
                    self._bytes -= old_size
                    self.evictions += 1
                    self._unlink(old_name)
                    evicted.append(old_key[1])
        if self.recorder is not None:
            self.recorder.add(CACHE_DISK_MISS, 1, key=(path,))
            for old_path in evicted:
                self.recorder.add(CACHE_DISK_EVICT, 1, key=(old_path,))

    def _invalidate(self, path: str) -> None:
        dirs = _ancestor_dirs(path)
        with self._lock:
            for p in (path, *dirs):
                self._epochs[p] = self._epochs.get(p, 0) + 1
            stale = [
                k
                for k in self._entries
                if k[1] == path or (k[0] == "list" and k[1] in dirs)
            ]
            for key in stale:
                name, size = self._entries.pop(key)
                self._bytes -= size
                self._unlink(name)

    @property
    def cached_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            for name, _size in self._entries.values():
                self._unlink(name)
            self._entries.clear()
            self._bytes = 0

    # -- reads (cached) -----------------------------------------------------

    def read_file(self, path: str, actor: int = -1) -> bytes:
        path = self._normalize(path)
        key = ("file", path)
        data = self._lookup(key, path)
        if data is not None:
            return data
        epoch = self._epoch(path)
        data = self.base.read_file(path, actor=actor)
        self._store(key, path, data, epoch)
        return data

    def read_range(self, path: str, offset: int, length: int, actor: int = -1) -> bytes:
        path = self._normalize(path)
        key = ("range", path, int(offset), int(length))
        data = self._lookup(key, path)
        if data is not None:
            return data
        epoch = self._epoch(path)
        data = self.base.read_range(path, offset, length, actor=actor)
        self._store(key, path, data, epoch)
        return data

    def readinto(self, path: str, offset: int, view, actor: int = -1) -> int:
        out = memoryview(view).cast("B")
        data = self.read_range(path, offset, len(out), actor=actor)
        out[:] = data
        return len(out)

    def readv(self, path: str, segments, actor: int = -1) -> int:
        """Serve cached segments from disk; fetch the misses in one
        :meth:`FileBackend.readv` on the base, then persist what arrived."""
        path = self._normalize(path)
        total = 0
        missing: list[tuple[int, memoryview]] = []
        for offset, view in segments:
            out = memoryview(view).cast("B")
            key = ("range", path, int(offset), len(out))
            data = self._lookup(key, path)
            if data is not None:
                out[:] = data
                total += len(out)
            else:
                missing.append((int(offset), out))
        if missing:
            epoch = self._epoch(path)
            total += self.base.readv(path, missing, actor=actor)
            for offset, out in missing:
                self._store(
                    ("range", path, offset, len(out)), path, bytes(out), epoch
                )
        return total

    # -- mutations (invalidate, then forward) --------------------------------

    def write_file(self, path: str, data: bytes, actor: int = -1) -> None:
        path = self._normalize(path)
        self._invalidate(path)
        self.base.write_file(path, data, actor=actor)

    def delete(self, path: str, missing_ok: bool = False) -> None:
        path = self._normalize(path)
        self._invalidate(path)
        self.base.delete(path, missing_ok=missing_ok)

    # -- metadata (cached: every probe is a metered remote request) ----------

    def exists(self, path: str) -> bool:
        path = self._normalize(path)
        key = ("exists", path)
        data = self._lookup(key, path)
        if data is None:
            epoch = self._epoch(path)
            data = b"1" if self.base.exists(path) else b"0"
            self._store(key, path, data, epoch)
        return data == b"1"

    def size(self, path: str) -> int:
        path = self._normalize(path)
        key = ("size", path)
        data = self._lookup(key, path)
        if data is None:
            epoch = self._epoch(path)
            data = str(self.base.size(path)).encode()
            self._store(key, path, data, epoch)
        return int(data)

    def listdir(self, path: str) -> list[str]:
        path = self._normalize(path)
        key = ("list", path)
        data = self._lookup(key, path)
        if data is None:
            epoch = self._epoch(path)
            data = json.dumps(self.base.listdir(path)).encode()
            self._store(key, path, data, epoch)
        return list(json.loads(data))

    def __repr__(self) -> str:
        return (
            f"DiskCacheBackend({self.base!r}, dir={str(self.cache_dir)!r}, "
            f"max_bytes={self.max_bytes}, cached={self.cached_bytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )
