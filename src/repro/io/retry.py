"""Retry policy for storage operations.

Parallel filesystems fail transiently all the time — a brief network-mount
hiccup, an OST briefly over capacity, a metadata server failing over.  The
policy here retries exactly :class:`~repro.errors.TransientBackendError`;
anything else is treated as permanent and propagates on the first attempt.

Two properties matter for a reproducible test suite:

* **deterministic jitter** — backoff delays are fully determined by
  ``(seed, attempt)``, so two runs of the same fault plan sleep the same
  amounts and produce the same op streams;
* **injectable sleep** — tests pass ``sleep=lambda s: None`` and assert on
  the *requested* delays instead of wall-clock time.

Accounting routes through the unified instrumentation layer: pass a
:class:`~repro.obs.recorder.Recorder` to :meth:`RetryPolicy.call` and every
attempt/retry/giveup lands as ``io.*`` counters plus ``io.retry`` /
``io.giveup`` events, which is how the writer's and reader's retry numbers
reach exported traces.  :class:`RetryStats` remains as a small standalone
accumulator for direct policy use in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import TransientBackendError
from repro.obs.names import (
    EV_GIVEUP,
    EV_RETRY,
    IO_ATTEMPTS,
    IO_GIVEUPS,
    IO_RETRIES,
)
from repro.obs.recorder import Recorder

__all__ = ["RetryPolicy", "RetryStats"]


def _no_sleep(_s: float) -> None:
    """The :meth:`RetryPolicy.immediate` sleep: record the request, never wait.

    A module-level function (not a lambda) so immediate policies stay
    picklable — the process executor ships the retry policy to workers.
    """


@dataclass
class RetryStats:
    """Mutable counters a policy fills in across one logical operation set."""

    attempts: int = 0
    retries: int = 0
    giveups: int = 0
    slept: float = 0.0

    def merge(self, other: "RetryStats") -> None:
        self.attempts += other.attempts
        self.retries += other.retries
        self.giveups += other.giveups
        self.slept += other.slept


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempt ``a`` (0-based, i.e. the delay before
    retry ``a + 1``) is::

        backoff_base * backoff_factor**a * (1 + jitter * u(seed, a))

    where ``u`` is a deterministic value in ``[0, 1)`` derived from the seed
    and attempt with a Weyl-style integer hash — no global RNG state.
    """

    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    #: Decorrelated jitter (the AWS architecture-blog recipe, made
    #: deterministic): each delay is drawn between ``backoff_base`` and
    #: ``3 * previous_delay``, which decorrelates concurrent retriers far
    #: better than scaled exponential backoff.  Off by default so existing
    #: call sites keep their exact historical delay sequences.
    decorrelated: bool = False
    #: Total *requested* sleep budget across one :meth:`call`.  A retry whose
    #: backoff would push the cumulative requested sleep past this cap gives
    #: up instead of sleeping — requested (not wall-clock) accounting keeps
    #: the decision deterministic under injected ``sleep``.  ``None`` = no cap.
    max_elapsed: float | None = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError(
                "backoff_base must be >= 0, backoff_factor >= 1, jitter >= 0"
            )
        if self.max_elapsed is not None and self.max_elapsed < 0:
            raise ValueError(
                f"max_elapsed must be >= 0 or None, got {self.max_elapsed}"
            )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A policy that never retries (single attempt)."""
        return cls(max_attempts=1)

    @classmethod
    def immediate(cls, max_attempts: int = 3, seed: int = 0) -> "RetryPolicy":
        """Retries without sleeping — the test-suite default."""
        return cls(
            max_attempts=max_attempts,
            backoff_base=0.0,
            seed=seed,
            sleep=_no_sleep,
        )

    def delay(self, attempt: int, previous: float | None = None) -> float:
        """Backoff before retrying after 0-based failed ``attempt``.

        With :attr:`decorrelated` set, the delay also depends on the
        ``previous`` delay (pass the value this method returned last time;
        ``None`` for the first retry) — still fully determined by
        ``(seed, attempt, previous)``.
        """
        # Knuth multiplicative hash of (seed, attempt) -> [0, 1).
        h = ((self.seed * 40503 + attempt + 1) * 2654435761) & 0xFFFFFFFF
        unit = h / 2**32
        if self.decorrelated:
            low = self.backoff_base
            prev = previous if previous is not None and previous > 0 else low
            high = max(low, 3.0 * prev)
            return low + (high - low) * unit
        base = self.backoff_base * self.backoff_factor**attempt
        return base * (1.0 + self.jitter * unit)

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        stats: RetryStats | None = None,
        recorder: Recorder | None = None,
        on_retry: Callable[[int, TransientBackendError], None] | None = None,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn(*args, **kwargs)``, retrying transient backend failures.

        ``stats`` (if given) accumulates attempt/retry counters;
        ``recorder`` (if given) receives the same accounting as ``io.*``
        counters and retry/giveup events; ``on_retry`` is invoked with
        ``(attempt, error)`` before each backoff sleep.  Non-transient
        exceptions propagate immediately; a transient failure on the final
        attempt propagates as-is and counts as a giveup.

        Retrying stops early — the current transient error propagates and
        counts as a giveup — when the next backoff would overrun either
        :attr:`max_elapsed` (cumulative requested sleep) or the ambient
        :func:`~repro.io.resilience.current_deadline`'s remaining budget,
        so a retry loop can never sleep through the very deadline its
        caller is trying to meet.
        """
        stats = stats if stats is not None else RetryStats()
        requested = 0.0
        previous: float | None = None
        for attempt in range(self.max_attempts):
            stats.attempts += 1
            if recorder is not None:
                recorder.add(IO_ATTEMPTS)
            try:
                return fn(*args, **kwargs)
            except TransientBackendError as exc:
                pause = self.delay(attempt, previous)
                if attempt + 1 >= self.max_attempts or self._over_budget(
                    requested + pause
                ):
                    stats.giveups += 1
                    if recorder is not None:
                        recorder.add(IO_GIVEUPS)
                        recorder.event(EV_GIVEUP, attempt=attempt, error=str(exc))
                    raise
                stats.retries += 1
                if recorder is not None:
                    recorder.add(IO_RETRIES)
                    recorder.event(EV_RETRY, attempt=attempt, error=str(exc))
                if on_retry is not None:
                    on_retry(attempt, exc)
                previous = pause
                requested += pause
                stats.slept += pause
                self.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover

    def _over_budget(self, requested_total: float) -> bool:
        """Would sleeping up to ``requested_total`` break a budget?"""
        if self.max_elapsed is not None and requested_total > self.max_elapsed:
            return True
        # Lazy import: resilience depends on nothing here, but importing it
        # at module scope would make every retry user pay for the thread
        # machinery it pulls in.
        from repro.io.resilience import current_deadline

        deadline = current_deadline()
        return deadline is not None and requested_total > deadline.remaining()
