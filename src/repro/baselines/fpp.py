"""File-per-process baseline (IOR FPP equivalent).

Every rank dumps its local particles straight to its own file — maximal
write parallelism, zero aggregation, zero spatial organisation.  The paper's
Fig. 5 shows this saturating filesystems at scale (file-creation storms);
Fig. 7 shows its read cost when a small visualization job must traverse the
full file hierarchy.

Rank 0 still writes a manifest (readers need the dtype from somewhere), but
no spatial metadata exists: a reader cannot know which file holds which
region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.format.datafile import data_file_name, write_data_file
from repro.format.manifest import Manifest
from repro.io.backend import FileBackend
from repro.mpi.comm import SimComm
from repro.particles.batch import ParticleBatch
from repro.utils.timing import TimeBreakdown


@dataclass
class BaselineWriteResult:
    """Per-rank outcome shared by all baseline writers."""

    rank: int
    num_files: int
    files_written: list[str] = field(default_factory=list)
    bytes_written: int = 0
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)


class FilePerProcessWriter:
    """One file per rank, written independently."""

    def write(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        backend: FileBackend,
    ) -> BaselineWriteResult:
        result = BaselineWriteResult(rank=comm.rank, num_files=comm.size)
        with result.breakdown.measure("file_io"):
            path = data_file_name(comm.rank)
            result.bytes_written = write_data_file(
                backend, path, batch, actor=comm.rank
            )
            result.files_written.append(path)
        with result.breakdown.measure("metadata"):
            total = comm.allgather(len(batch))
            if comm.rank == 0:
                Manifest(
                    dtype=batch.dtype,
                    num_files=comm.size,
                    total_particles=sum(total),
                    writer={"strategy": "file-per-process", "nprocs": comm.size},
                ).write(backend, actor=0)
        return result
