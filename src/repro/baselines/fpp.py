"""File-per-process baseline (IOR FPP equivalent).

Every rank dumps its local particles straight to its own file — maximal
write parallelism, zero aggregation, zero spatial organisation.  The paper's
Fig. 5 shows this saturating filesystems at scale (file-creation storms);
Fig. 7 shows its read cost when a small visualization job must traverse the
full file hierarchy.

Rank 0 still writes a manifest (readers need the dtype from somewhere), but
no spatial metadata exists: a reader cannot know which file holds which
region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.format.datafile import data_file_name, write_data_file
from repro.format.manifest import Manifest
from repro.io.backend import FileBackend
from repro.mpi.comm import SimComm
from repro.obs.names import PHASE_FILE_IO, PHASE_METADATA
from repro.obs.recorder import Recorder
from repro.particles.batch import ParticleBatch
from repro.utils.timing import TimeBreakdown


@dataclass
class BaselineWriteResult:
    """Per-rank outcome shared by all baseline writers.

    Phase times live in the obs :attr:`recorder` (same registry names as
    the spatial writer); :attr:`breakdown` is a derived view over it.
    """

    rank: int
    num_files: int
    files_written: list[str] = field(default_factory=list)
    bytes_written: int = 0
    #: the rank's instrumentation record for this write.
    recorder: Recorder = field(default_factory=Recorder)

    @property
    def breakdown(self) -> TimeBreakdown:
        """Phase view derived from the recorder's spans."""
        return self.recorder.breakdown(cat="phase")


class FilePerProcessWriter:
    """One file per rank, written independently."""

    def write(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        backend: FileBackend,
        recorder: Recorder | None = None,
    ) -> BaselineWriteResult:
        rec = recorder if recorder is not None else Recorder(rank=comm.rank)
        result = BaselineWriteResult(
            rank=comm.rank, num_files=comm.size, recorder=rec
        )
        with rec.span(PHASE_FILE_IO):
            path = data_file_name(comm.rank)
            result.bytes_written = write_data_file(
                backend, path, batch, actor=comm.rank
            )
            result.files_written.append(path)
        with rec.span(PHASE_METADATA):
            total = comm.allgather(len(batch))
            if comm.rank == 0:
                Manifest(
                    dtype=batch.dtype,
                    num_files=comm.size,
                    total_particles=sum(total),
                    writer={"strategy": "file-per-process", "nprocs": comm.size},
                ).write(backend, actor=0)
        return result
