"""Spatially-unaware subfiling baseline (HDF5-subfiling-like).

Two-phase I/O with the same aggregation *mechanics* as the spatially-aware
writer — k ranks aggregate, k files come out — but the grouping is by rank
id, not by space: ranks ``[g*group, (g+1)*group)`` feed aggregator ``g``
regardless of where their particles live.  On typical row-major rank
layouts, consecutive ranks form rows/slabs scattered across the domain, so
each output file's particles span distant regions (the middle panel of the
paper's Fig. 1).

The format writes no spatial metadata — there is no meaningful bounding box
per file to record — which is precisely why post-hoc readers must touch
every file for any spatial query.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.fpp import BaselineWriteResult
from repro.errors import ConfigError
from repro.format.datafile import data_file_name, write_data_file
from repro.format.manifest import Manifest
from repro.io.backend import FileBackend
from repro.mpi.comm import SimComm
from repro.obs.names import PHASE_AGGREGATION, PHASE_FILE_IO, PHASE_METADATA
from repro.obs.recorder import Recorder
from repro.particles.batch import ParticleBatch


class RankOrderSubfilingWriter:
    """Aggregate contiguous rank blocks into one file per block."""

    def __init__(self, num_files: int):
        if num_files < 1:
            raise ConfigError(f"num_files must be >= 1, got {num_files}")
        self.num_files = num_files

    def _group_of(self, rank: int, nprocs: int) -> int:
        return rank * self.num_files // nprocs

    def _aggregator_of(self, group: int, nprocs: int) -> int:
        return group * nprocs // self.num_files

    def write(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        backend: FileBackend,
        recorder: Recorder | None = None,
    ) -> BaselineWriteResult:
        nprocs = comm.size
        if self.num_files > nprocs:
            raise ConfigError(
                f"{self.num_files} subfiles need as many aggregators, "
                f"only {nprocs} ranks exist"
            )
        rec = recorder if recorder is not None else Recorder(rank=comm.rank)
        result = BaselineWriteResult(
            rank=comm.rank, num_files=self.num_files, recorder=rec
        )
        group = self._group_of(comm.rank, nprocs)
        agg = self._aggregator_of(group, nprocs)

        with rec.span(PHASE_AGGREGATION):
            # Two-phase exchange, same metadata-then-data shape as ours.
            comm.isend(len(batch), agg, tag=0)
            if len(batch):
                comm.isend(batch.data, agg, tag=1)
            aggregated = None
            if comm.rank == agg:
                senders = [
                    r for r in range(nprocs) if self._group_of(r, nprocs) == group
                ]
                counts = {s: int(comm.recv(source=s, tag=0)) for s in senders}
                buffer = np.empty(sum(counts.values()), dtype=batch.dtype)
                offset = 0
                for s in senders:
                    n = counts[s]
                    if n == 0:
                        continue
                    buffer[offset : offset + n] = comm.recv(source=s, tag=1)
                    offset += n
                aggregated = ParticleBatch(buffer)

        with rec.span(PHASE_FILE_IO):
            if aggregated is not None:
                path = data_file_name(comm.rank)
                result.bytes_written = write_data_file(
                    backend, path, aggregated, actor=comm.rank
                )
                result.files_written.append(path)

        with rec.span(PHASE_METADATA):
            total = comm.allgather(len(batch))
            if comm.rank == 0:
                Manifest(
                    dtype=batch.dtype,
                    num_files=self.num_files,
                    total_particles=sum(total),
                    writer={
                        "strategy": "rank-order-subfiling",
                        "nprocs": nprocs,
                        "num_files": self.num_files,
                    },
                ).write(backend, actor=0)
        return result
