"""Reading datasets that carry no spatial metadata.

Formats produced by the baselines (and by our writer when the spatial table
has been lost) force the degraded access pattern the paper describes:
"every process [must] read all particles across all the files and then
cherry-pick the relevant particles."
"""

from __future__ import annotations

import numpy as np

from repro.dataset import Dataset
from repro.domain.box import Box
from repro.errors import DataFileError
from repro.format.datafile import read_data_file
from repro.io.backend import FileBackend
from repro.particles.batch import ParticleBatch, concatenate


class UnstructuredReader:
    """Brute-force reader: list the data directory, read every file."""

    def __init__(self, backend: FileBackend, actor: int = -1):
        self.backend = backend
        self.actor = actor
        self.manifest = Dataset(backend, actor=actor).read_manifest()
        names = backend.listdir("data")
        if not names:
            raise DataFileError("dataset has no data files")
        self.paths = [f"data/{n}" for n in names]

    @property
    def dtype(self) -> np.dtype:
        return self.manifest.dtype

    @property
    def num_files(self) -> int:
        return len(self.paths)

    def read_all(self) -> ParticleBatch:
        return concatenate(
            read_data_file(self.backend, p, self.dtype, self.actor)
            for p in self.paths
        )

    def read_box(self, box: Box) -> ParticleBatch:
        """A box query with no metadata: full scan, then filter."""
        everything = self.read_all()
        mask = box.contains_points(everything.positions, closed=True)
        return ParticleBatch(everything.data[mask])

    def read_assigned(self, nreaders: int, reader_rank: int) -> ParticleBatch:
        """Contiguous split of the file list for parallel full reads."""
        n = len(self.paths)
        lo = reader_rank * n // nreaders
        hi = (reader_rank + 1) * n // nreaders
        paths = self.paths[lo:hi]
        if not paths:
            return ParticleBatch(np.empty(0, dtype=self.dtype))
        return concatenate(
            read_data_file(self.backend, p, self.dtype, self.actor) for p in paths
        )
