"""Single-shared-file baseline (IOR collective / PHDF5-single-file style).

All ranks' particles end up in one file, concatenated in rank order.  The
aggregation is the degenerate all-to-one case of §3.1: the aggregation
partition is the whole domain, rank 0 is the single aggregator.  The paper
notes this "is not feasible [at scale] due to limitations in the available
memory on a single core" and shows collective I/O collapsing in Fig. 5 —
this implementation exists to make those comparisons runnable.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.fpp import BaselineWriteResult
from repro.format.datafile import write_data_file
from repro.format.manifest import Manifest
from repro.io.backend import FileBackend
from repro.mpi.comm import SimComm
from repro.obs.names import PHASE_AGGREGATION, PHASE_FILE_IO
from repro.obs.recorder import Recorder
from repro.particles.batch import ParticleBatch

SHARED_FILE_PATH = "data/shared.pbin"


class SharedFileWriter:
    """Gather everything to rank 0; write one file in rank order."""

    def write(
        self,
        comm: SimComm,
        batch: ParticleBatch,
        backend: FileBackend,
        recorder: Recorder | None = None,
    ) -> BaselineWriteResult:
        rec = recorder if recorder is not None else Recorder(rank=comm.rank)
        result = BaselineWriteResult(rank=comm.rank, num_files=1, recorder=rec)
        with rec.span(PHASE_AGGREGATION):
            gathered = comm.gather(batch.data, root=0)
        with rec.span(PHASE_FILE_IO):
            if comm.rank == 0:
                assert gathered is not None
                merged = ParticleBatch(
                    np.concatenate([np.atleast_1d(g) for g in gathered])
                )
                result.bytes_written = write_data_file(
                    backend, SHARED_FILE_PATH, merged, actor=0
                )
                result.files_written.append(SHARED_FILE_PATH)
                Manifest(
                    dtype=batch.dtype,
                    num_files=1,
                    total_particles=len(merged),
                    writer={"strategy": "shared-file", "nprocs": comm.size},
                ).write(backend, actor=0)
        comm.barrier()
        return result
