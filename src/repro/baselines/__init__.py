"""Baseline I/O strategies the paper compares against.

* :class:`FilePerProcessWriter` — IOR-style file-per-process: every rank
  writes its own file, no aggregation, no spatial metadata.
* :class:`SharedFileWriter` — IOR-collective / single-shared-file: all data
  funnels into one file in rank order.
* :class:`RankOrderSubfilingWriter` — HDF5-subfiling-like two-phase I/O that
  groups ranks *by rank id*, not by space (the "grouped by color" pathology
  of the paper's Fig. 1): throughput-wise it aggregates like ours, but the
  files it produces have no spatial locality and no spatial metadata.
* :class:`UnstructuredReader` — the only read strategy these formats allow:
  open every file, read everything, cherry-pick.
"""

from repro.baselines.fpp import FilePerProcessWriter
from repro.baselines.shared import SharedFileWriter
from repro.baselines.subfiling import RankOrderSubfilingWriter
from repro.baselines.reader import UnstructuredReader

__all__ = [
    "FilePerProcessWriter",
    "SharedFileWriter",
    "RankOrderSubfilingWriter",
    "UnstructuredReader",
]
