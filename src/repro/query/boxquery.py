"""Spatial box queries and their access-pattern accounting."""

from __future__ import annotations

from repro.core.reader import SpatialReader
from repro.domain.box import Box
from repro.particles.batch import ParticleBatch


def box_query(
    reader: SpatialReader,
    box: Box,
    max_level: int | None = None,
    nreaders: int = 1,
) -> ParticleBatch:
    """Exact spatial selection: metadata-pruned file reads, then filtering.

    A thin, intention-revealing wrapper over
    :meth:`~repro.core.reader.SpatialReader.read_box` for analysis code.
    """
    return reader.read_box(box, max_level=max_level, nreaders=nreaders, exact=True)


def count_files_touched(reader: SpatialReader, box: Box) -> int:
    """How many data files a box query must open — the Fig. 1 metric.

    The whole point of spatially-aware aggregation is to make this small:
    a reader process rendering one subdomain should touch one (or few)
    files, where rank-ordered formats force it to touch many.
    """
    return reader.plan_box_read(box).num_files
