"""k-nearest-neighbour search over a uniform-grid acceleration structure.

Nearest-neighbour search is one of the region-based analysis tasks the
paper's format is designed to serve (§3): the query point's neighbourhood
maps to a small box, which the spatial metadata resolves to few files.
:class:`GridKNN` is the in-memory half — a cell grid over an already-loaded
batch — with an expanding-ring search that visits cells in growing distance
shells until the k-th best distance is provably final.
"""

from __future__ import annotations

import numpy as np

from repro.domain.box import Box
from repro.domain.grid import CellGrid
from repro.errors import QueryError
from repro.particles.batch import ParticleBatch


class GridKNN:
    """Uniform-grid kNN index over one particle batch."""

    def __init__(self, batch: ParticleBatch, target_per_cell: float = 8.0):
        if len(batch) == 0:
            raise QueryError("cannot build a kNN index over zero particles")
        self.batch = batch
        bounds = batch.bounding_box()
        if bounds.is_empty():
            bounds = bounds.expanded(max(1e-9, 1e-6 * float(np.abs(bounds.lo).max() + 1)))
        self.bounds = bounds
        n_cells = max(1, int(round((len(batch) / target_per_cell) ** (1 / 3))))
        self.grid = CellGrid(bounds, (n_cells, n_cells, n_cells))
        flat = self.grid.flat_cell_of_points(batch.positions)
        order = np.argsort(flat, kind="stable")
        self._sorted_idx = order
        self._sorted_cells = flat[order]
        # Per-cell [start, end) into the sorted index arrays.
        self._starts = np.searchsorted(
            self._sorted_cells, np.arange(self.grid.num_cells), side="left"
        )
        self._ends = np.searchsorted(
            self._sorted_cells, np.arange(self.grid.num_cells), side="right"
        )

    def _cell_points(self, flat_cell: int) -> np.ndarray:
        return self._sorted_idx[self._starts[flat_cell] : self._ends[flat_cell]]

    def query(self, point, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Indices and distances of the k nearest particles to ``point``.

        Returns ``(indices, distances)`` sorted by distance.  ``k`` is capped
        at the batch size.
        """
        point = np.asarray(point, dtype=np.float64).reshape(3)
        k = min(int(k), len(self.batch))
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        dims = np.asarray(self.grid.dims)
        # Center cell of the query (clamped: queries may fall outside bounds).
        rel = (point - self.grid.domain.lo) / self.grid.cell_extent
        center = np.clip(np.floor(rel).astype(int), 0, dims - 1)
        positions = self.batch.positions

        best_idx = np.empty(0, dtype=np.int64)
        best_d = np.empty(0, dtype=np.float64)
        max_ring = int(dims.max())
        for ring in range(max_ring + 1):
            candidates = self._ring_cells(center, ring)
            if candidates.size:
                pts = np.concatenate([self._cell_points(c) for c in candidates])
                if pts.size:
                    d = np.linalg.norm(positions[pts] - point, axis=1)
                    all_idx = np.concatenate([best_idx, pts])
                    all_d = np.concatenate([best_d, d])
                    order = np.argsort(all_d, kind="stable")[:k]
                    best_idx, best_d = all_idx[order], all_d[order]
            # Stop when the kth distance cannot be beaten by farther rings:
            # every cell in ring r+1 is at least r * min_cell_extent away.
            if len(best_d) == k:
                ring_floor = ring * float(self.grid.cell_extent.min())
                if best_d[-1] <= ring_floor:
                    break
        return best_idx, best_d

    def _ring_cells(self, center: np.ndarray, ring: int) -> np.ndarray:
        """Flat ids of cells at Chebyshev distance exactly ``ring``."""
        dims = np.asarray(self.grid.dims)
        lo = np.maximum(center - ring, 0)
        hi = np.minimum(center + ring, dims - 1)
        cells = []
        for k in range(lo[2], hi[2] + 1):
            for j in range(lo[1], hi[1] + 1):
                for i in range(lo[0], hi[0] + 1):
                    if max(abs(i - center[0]), abs(j - center[1]), abs(k - center[2])) == ring:
                        cells.append(i + dims[0] * (j + dims[1] * k))
        return np.asarray(cells, dtype=np.int64)
