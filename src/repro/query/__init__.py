"""Read-side query engines over the spatial format.

Two layers live here:

* :mod:`repro.query.engine` — the extracted planning/execution core:
  :class:`QueryPlan` (first-class plans: files, coalesced chunk runs,
  projection, pushdown, generation pin), :class:`QueryEngine` (stateless
  plan/run over one :class:`~repro.dataset.Dataset`), and
  :class:`StagedReads` (the scatter buffers cross-query batching fills —
  see :mod:`repro.serve`).  Every read-side consumer — the
  :class:`~repro.core.reader.SpatialReader` facade, series reads, the
  CLI, and the serving layer — executes the same plan objects.
* analysis-level helpers, mirroring the paper's §3 motivating tasks:
  :func:`box_query` (spatial selection), :func:`range_query`
  (attribute-range selection over the min/max index), and
  :class:`GridKNN` (k-nearest-neighbour over a uniform grid).

The helpers are imported lazily: they consume the reader facade, which
itself builds on :mod:`repro.query.engine`, and eager imports here would
close that cycle.
"""

from typing import Any

from repro.query.engine import (
    QueryEngine,
    QueryPlan,
    QueryResult,
    ReadPlan,
    ReadReport,
    SkippedPartition,
    StagedReads,
)

__all__ = [
    "QueryEngine",
    "QueryPlan",
    "QueryResult",
    "ReadPlan",
    "ReadReport",
    "SkippedPartition",
    "StagedReads",
    "box_query",
    "count_files_touched",
    "range_query",
    "GridKNN",
]

_LAZY = {
    "box_query": ("repro.query.boxquery", "box_query"),
    "count_files_touched": ("repro.query.boxquery", "count_files_touched"),
    "range_query": ("repro.query.rangequery", "range_query"),
    "GridKNN": ("repro.query.knn", "GridKNN"),
}


def __getattr__(name: str) -> Any:
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module_name, attr = target
    return getattr(importlib.import_module(module_name), attr)
