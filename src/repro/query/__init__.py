"""Read-side query engines over the spatial format.

The paper motivates the format with region-dependent analysis tasks
(§3: "nearest neighbour search, vector field integration, stencil
operations, image processing").  This package supplies those consumers:

* :func:`box_query` — spatial selection, metadata-pruned;
* :func:`range_query` — attribute-range selection using the per-file
  min/max index (the §3.5 extension);
* :class:`GridKNN` — k-nearest-neighbour search over a uniform grid
  acceleration structure built from query results.
"""

from repro.query.boxquery import box_query, count_files_touched
from repro.query.rangequery import range_query
from repro.query.knn import GridKNN

__all__ = ["box_query", "count_files_touched", "range_query", "GridKNN"]
