"""The extracted query engine: first-class plans, shared execution.

Planning and execution used to live inside
:class:`~repro.core.reader.SpatialReader`; this module lifts them into a
reusable engine so every read-side consumer — the reader facade, series
reads, the CLI, and the multi-tenant :mod:`repro.serve` layer — consumes
the *same* plan objects instead of re-deriving state:

* :class:`QueryPlan` is a plain, first-class value: which files, how many
  particles from each, the coalesced per-file chunk runs, the attribute
  projection, the predicate pushdown, and the **generation pin** the plan
  was built against.  Plans are inert data — tests, the performance
  models, and the cross-query batch planner all consume them directly.
* :class:`QueryEngine` is stateless per query: planning reads the
  dataset's memoized tables (LOD prefix apportionment, box-id index,
  chunk indexes), and :meth:`QueryEngine.run` executes a plan against an
  explicit recorder, returning a :class:`QueryResult` (batch + report +
  plan).  Nothing is stored on the engine between calls, so one engine
  can serve many concurrent queries over one shared :class:`Dataset`.

Cross-query batching hooks in through :class:`StagedReads`: a batch
planner (see :mod:`repro.serve.batch`) merges the chunk runs of many
in-flight plans per file, performs one coalesced ``readv`` pass, and
parks the decoded particles here; execution then *scatters* each query's
slices out of the staged buffers instead of touching the backend.  The
staged copy is taken from the same decode path a direct read would run,
so batched results are bit-identical to serial execution by construction.

Generation pinning: plans record the generation the dataset resolved at
plan time.  Executing a plan against a facade that has since re-resolved
to a different generation raises — a plan is only meaningful against the
snapshot it was planned on (MVCC discipline, same as the facade's own
pinning).
"""

from __future__ import annotations

import threading
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.domain.box import Box
from repro.errors import (
    BackendError,
    BreakerOpenError,
    DataChecksumError,
    DeadlineExceededError,
    FormatError,
    QueryError,
    TransientBackendError,
)
from repro.format.datafile import (
    read_columnar_runs_into,
    read_data_file_into,
    read_data_prefix_into,
    read_particle_runs_into,
)
from repro.format.metadata import MetadataRecord
from repro.obs.names import (
    DECODE_VECTORIZED_RUNS,
    EV_CHUNK_SKIPPED,
    EV_PARTITION_READ,
    EV_PARTITION_SKIPPED,
    EV_PREFIX_VERIFIED,
    EV_RETRY,
    PHASE_FILE_IO,
)
from repro.obs.recorder import Event, Recorder
from repro.particles.batch import ParticleBatch

__all__ = [
    "QueryPlan",
    "ReadPlan",
    "SkippedPartition",
    "ReadReport",
    "QueryResult",
    "StagedReads",
    "QueryEngine",
]


@dataclass
class QueryPlan:
    """A fully resolved read: which files, how many particles from each."""

    #: (metadata record, particles to read from the file's head).
    entries: list[tuple[MetadataRecord, int]] = field(default_factory=list)
    #: the query box (None for full-dataset reads).
    box: Box | None = None
    #: LOD ceiling used when planning (None = full resolution).
    max_level: int | None = None
    #: Sub-file pruning: entry position -> coalesced ``(start, count)``
    #: particle runs selected by the file's chunk index.  Only recorded when
    #: pruning actually shrinks the read; applied by :meth:`QueryEngine.run`
    #: for exact box queries (a pruned read is a superset of the box but a
    #: subset of the file, so it is only equivalent after the exact filter).
    chunk_runs: dict[int, tuple[tuple[int, int], ...]] = field(
        default_factory=dict
    )
    #: Attribute projection: extra field names to materialise alongside
    #: ``position`` (None = all fields).  Columnar (v4) files fetch only
    #: the projected columns' segments; row files read whole records and
    #: copy the projected fields out.
    attrs: tuple[str, ...] | None = None
    #: Predicate pushdown: scalar attribute -> closed ``(lo, hi)`` value
    #: range.  Pruned against per-file and per-chunk attr min/max at plan
    #: time; re-applied exactly (post-filter) at execution, so results
    #: equal post-hoc filtering by construction.
    where: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: The dataset generation this plan was resolved against (None for
    #: hand-built plans).  Execution refuses a plan whose pin disagrees
    #: with the facade's current resolution — a plan only describes the
    #: snapshot it was planned on.
    generation: int | None = None

    @property
    def num_files(self) -> int:
        return sum(1 for _rec, n in self.entries if n > 0)

    @property
    def total_particles(self) -> int:
        return sum(n for _rec, n in self.entries)

    @property
    def pruned_particles(self) -> int:
        """Particles an exact chunk-pruned execution actually reads."""
        total = 0
        for i, (_rec, n) in enumerate(self.entries):
            runs = self.chunk_runs.get(i)
            total += sum(c for _s, c in runs) if runs is not None else n
        return total

    def bytes_to_read(self, particle_bytes: int) -> int:
        return self.pruned_particles * particle_bytes

    def result_dtype(self, full_dtype: np.dtype) -> np.dtype:
        """The structured dtype execution materialises for this plan.

        ``position`` is always present (the exact box filter needs it);
        ``where`` attributes are implicitly projected (the exact value
        filter needs them); field order follows the file dtype.
        """
        if self.attrs is None:
            return full_dtype
        keep = {"position", *self.attrs, *self.where}
        fields: list[tuple] = []
        for name in full_dtype.names or ():
            if name not in keep:
                continue
            sub = full_dtype.fields[name][0]  # type: ignore[index]
            if sub.shape:
                fields.append((name, sub.base, sub.shape))
            else:
                fields.append((name, sub.base))
        return np.dtype(fields)


#: Historic name — the plan predates its extraction into the engine.
ReadPlan = QueryPlan


@dataclass(frozen=True)
class SkippedPartition:
    """One partition a degraded read could not deliver."""

    path: str
    box_id: int
    reason: str      # "missing" | "transient-exhausted" | "checksum" | "corrupt"
    error: str       # the stringified underlying exception


@dataclass
class ReadReport:
    """What one plan execution actually did — the degraded-read ledger.

    Built from the execution recorder's events (:meth:`from_events`), so
    the report and an exported trace can never disagree.
    """

    partitions_read: int = 0
    particles_read: int = 0
    skipped: list[SkippedPartition] = field(default_factory=list)
    retries: int = 0
    #: prefix reads verified against the manifest's per-LOD checksums.
    prefixes_verified: int = 0
    #: columnar chunks dropped at segment granularity by a degraded read
    #: (the partition itself still delivered its surviving chunks).
    chunks_skipped: int = 0

    @classmethod
    def from_events(cls, events: list[Event]) -> "ReadReport":
        """Derive the ledger from one execution window of recorder events."""
        report = cls()
        for ev in events:
            if ev.name == EV_PARTITION_READ:
                report.partitions_read += 1
                report.particles_read += int(ev.args["particles"])  # type: ignore[call-overload]
            elif ev.name == EV_PARTITION_SKIPPED:
                report.skipped.append(
                    SkippedPartition(
                        path=str(ev.args["path"]),
                        box_id=int(ev.args["box_id"]),  # type: ignore[call-overload]
                        reason=str(ev.args["reason"]),
                        error=str(ev.args["error"]),
                    )
                )
            elif ev.name == EV_PREFIX_VERIFIED:
                report.prefixes_verified += 1
            elif ev.name == EV_CHUNK_SKIPPED:
                report.chunks_skipped += 1
            elif ev.name == EV_RETRY:
                report.retries += 1
        return report

    @property
    def complete(self) -> bool:
        return not self.skipped and not self.chunks_skipped

    @property
    def partitions_skipped(self) -> int:
        return len(self.skipped)

    def skipped_boxes(self) -> list[int]:
        return [s.box_id for s in self.skipped]

    def merge(self, other: "ReadReport") -> None:
        self.partitions_read += other.partitions_read
        self.particles_read += other.particles_read
        self.skipped.extend(other.skipped)
        self.retries += other.retries
        self.prefixes_verified += other.prefixes_verified
        self.chunks_skipped += other.chunks_skipped

    def equivalent(self, other: "ReadReport") -> bool:
        """Delivery-equivalence: same partitions, particles, and losses.

        Retry counts are excluded — a batched execution may absorb a
        transient fault once for many queries where serial execution
        would retry per query, without changing what was delivered.
        """
        return (
            self.partitions_read == other.partitions_read
            and self.particles_read == other.particles_read
            and self.prefixes_verified == other.prefixes_verified
            and self.chunks_skipped == other.chunks_skipped
            and sorted((s.path, s.box_id, s.reason) for s in self.skipped)
            == sorted((s.path, s.box_id, s.reason) for s in other.skipped)
        )


@dataclass
class QueryResult:
    """One executed plan: the particles plus the delivery ledger."""

    batch: ParticleBatch
    report: ReadReport
    plan: QueryPlan

    def __len__(self) -> int:
        return len(self.batch)


def _skip_reason(exc: Exception) -> str:
    if isinstance(exc, DataChecksumError):
        return "checksum"
    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(exc, BreakerOpenError):
        return "unavailable"
    if isinstance(exc, TransientBackendError):
        return "transient-exhausted"
    if isinstance(exc, BackendError):
        return "missing"
    return "corrupt"


@dataclass
class _StagedFile:
    """One file's pre-read, decoded particles (merged across queries)."""

    #: merged ascending, non-overlapping ``(start, count)`` particle runs.
    runs: tuple[tuple[int, int], ...]
    #: run start positions (for bisection) and buffer offsets per run.
    starts: tuple[int, ...]
    offsets: tuple[int, ...]
    #: decoded particles of every merged run, in run order.  The dtype is
    #: the union of every demanding query's result dtype (full dtype for
    #: row files), so any one query's fields are a subset.
    buf: np.ndarray


class StagedReads:
    """Decoded per-file buffers a batch planner pre-read for many queries.

    Execution consults :meth:`fetch` before touching the backend: a hit
    copies the entry's runs out of the staged buffer (field-by-field when
    the query projects a dtype subset) and costs zero backend I/O.  A
    miss — file not staged, runs not covered, fields not decoded, or an
    LOD-prefix entry (never staged; prefix reads carry their own
    verification) — returns ``None`` and the caller reads normally, so a
    partially applicable stage degrades to exactly serial behaviour.

    Thread-safe: one stage is shared by every query of a batch, and each
    query's entries may themselves run on a threaded executor.
    """

    def __init__(self) -> None:
        self._files: dict[str, _StagedFile] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._files)

    @property
    def staged_files(self) -> int:
        return len(self._files)

    def stage(
        self,
        path: str,
        runs: tuple[tuple[int, int], ...],
        buf: np.ndarray,
    ) -> None:
        """Park ``buf`` (the decoded particles of ``runs``, in order)."""
        offsets: list[int] = []
        pos = 0
        for _start, count in runs:
            offsets.append(pos)
            pos += count
        if pos != len(buf):
            raise ValueError(
                f"{path}: staged buffer holds {len(buf)} particles, "
                f"runs cover {pos}"
            )
        staged = _StagedFile(
            runs=tuple(runs),
            starts=tuple(s for s, _c in runs),
            offsets=tuple(offsets),
            buf=buf,
        )
        with self._lock:
            self._files[path] = staged

    def fetch(
        self,
        rec: MetadataRecord,
        count: int,
        runs: tuple[tuple[int, int], ...] | None,
        dest: np.ndarray,
    ) -> int | None:
        """Copy one plan entry out of the stage, or ``None`` on a miss."""
        staged = self._files.get(rec.file_path)
        if staged is None:
            self._miss()
            return None
        if runs is None and count < rec.particle_count:
            # LOD prefix entry: never staged (prefix checksum verification
            # and columnar boundary rounding belong to the direct path).
            self._miss()
            return None
        want = runs if runs is not None else ((0, count),)
        names = dest.dtype.names or ()
        buf_names = set(staged.buf.dtype.names or ())
        if not set(names) <= buf_names:
            self._miss()
            return None
        copies: list[tuple[int, int, int]] = []
        pos = 0
        for start, n in want:
            i = bisect_right(staged.starts, start) - 1
            if i < 0:
                self._miss()
                return None
            mstart, mcount = staged.runs[i]
            if not (mstart <= start and start + n <= mstart + mcount):
                self._miss()
                return None
            copies.append((pos, staged.offsets[i] + (start - mstart), n))
            pos += n
        if pos != len(dest):
            self._miss()
            return None
        if dest.dtype == staged.buf.dtype:
            for dpos, spos, n in copies:
                dest[dpos : dpos + n] = staged.buf[spos : spos + n]
        else:
            for name in names:
                dcol = dest[name]
                scol = staged.buf[name]
                for dpos, spos, n in copies:
                    dcol[dpos : dpos + n] = scol[spos : spos + n]
        with self._lock:
            self.hits += 1
        return pos

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1

    def __repr__(self) -> str:
        return (
            f"StagedReads(files={len(self._files)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def verify_prefix(
    path: str, data, recorder: Recorder, checksum_entry: dict | None
) -> None:
    """Check a prefix read against the manifest's per-LOD checksums.

    Ranged reads never see the v2 file footer, so this is the only
    integrity check they get.  Verification happens when the read count
    lands exactly on a recorded LOD boundary (checksums are prefix CRCs
    — they cannot verify arbitrary lengths).  ``data`` is the decoded
    particle array (or a :class:`ParticleBatch`); the CRC streams over
    its contiguous byte view, so no copy of the payload is made.
    """
    if not checksum_entry:
        return
    arr = data.data if isinstance(data, ParticleBatch) else data
    for rec_count, rec_crc in checksum_entry.get("prefixes", ()):
        if rec_count == len(arr):
            actual = zlib.crc32(np.ascontiguousarray(arr).view(np.uint8))
            if actual != int(rec_crc):
                raise DataChecksumError(
                    f"{path}: prefix of {len(arr)} particles has "
                    f"CRC32 {actual:#010x}, manifest records "
                    f"{int(rec_crc):#010x}"
                )
            recorder.event(EV_PREFIX_VERIFIED, path=path, count=len(arr))
            return


def read_entry_into(
    backend,
    dtype: np.dtype,
    rec: MetadataRecord,
    count: int,
    runs: tuple[tuple[int, int], ...] | None,
    dest: np.ndarray,
    recorder: Recorder,
    strict: bool,
    retry,
    actor: int,
    index,
    checksum_entry: dict | None,
    staged: StagedReads | None = None,
) -> int:
    """Read one plan entry directly into its slice of the result.

    The module-level core of :meth:`QueryEngine.run`'s per-entry task:
    everything it needs arrives as arguments (backend, dtype, the entry's
    memoized chunk ``index``, the manifest ``checksum_entry`` for prefix
    verification), so the *same* function serves the serial path, executor
    worker threads, and — because every argument is picklable — worker
    *processes* (see the engine's process-task descriptors).

    ``dest`` is the entry's preallocated destination (sized to ``count``
    particles, or to the run total when ``runs`` prunes the file); the
    whole multi-op read runs under one retry call so a transient fault
    costs exactly one retry, as on the legacy one-op path.  ``recorder``
    is the entry's child recorder when run on an executor; retry and
    verification events land there and are merged back in plan order by
    :meth:`QueryEngine.run`.  Returns the particles delivered.

    ``dest`` may carry a *projected* dtype (a field subset of the file
    dtype).  Columnar (v4) files then fetch only the projected columns'
    segments; row files read whole records into a scratch buffer and
    copy the projected fields out.  Columnar files are detected by the
    chunk index carrying a codec and always route through
    :func:`read_columnar_runs_into` — in non-strict mode that read can
    *degrade at chunk granularity*: surviving chunks are packed at the
    head of ``dest``, each lost chunk is logged as an
    ``EV_CHUNK_SKIPPED`` event, and the packed count is returned.

    With ``staged`` (cross-query batching), the stage is consulted
    first: a hit scatters the decoded particles out of the shared
    batch buffer and performs zero backend I/O.  Vectorized decode
    accounting lands on ``recorder`` as ``decode.vectorized_runs``
    (coalesced extents for columnar files, gathered runs for row files),
    keyed by path.
    """
    if runs is not None and not runs:
        return 0  # file intersects the box, but no chunk does
    if staged is not None:
        got = staged.fetch(rec, count, runs, dest)
        if got is not None:
            return got
    if index is not None and index.codec is not None:
        # Columnar file: runs and whole-file reads are chunk-aligned by
        # construction.  LOD prefix counts are apportioned globally and
        # can land mid-chunk, so a prefix read rounds up to the covering
        # chunk boundary, decodes into a scratch, and trims.
        prefix = runs is None and count < rec.particle_count
        if prefix:
            if count == 0:
                return 0
            ends = np.asarray(index.starts) + np.asarray(index.counts)
            pos = int(np.searchsorted(ends, count, side="left"))
            aligned = int(ends[min(pos, len(ends) - 1)])
            eff_runs: tuple[tuple[int, int], ...] = ((0, aligned),)
            target = np.empty(aligned, dtype=dest.dtype)
        else:
            eff_runs = runs if runs is not None else ((0, count),)
            target = dest
        skipped: list[tuple[int, str, str]] = []
        decode_stats: dict = {}
        got = retry.call(
            read_columnar_runs_into,
            backend,
            rec.file_path,
            dtype,
            index,
            eff_runs,
            target,
            actor=actor,
            strict=strict,
            skipped=skipped,
            decode_stats=decode_stats,
            recorder=recorder,
        )
        if decode_stats.get("vectorized_runs"):
            recorder.add(
                DECODE_VECTORIZED_RUNS,
                decode_stats["vectorized_runs"],
                key=(rec.file_path,),
            )
        if prefix:
            got = min(count, got)
            dest[:got] = target[:got]
        for ci, column, error in skipped:
            recorder.event(
                EV_CHUNK_SKIPPED,
                path=rec.file_path,
                box_id=rec.box_id,
                chunk=ci,
                column=column,
                error=error,
            )
        if (
            runs is None
            and count < rec.particle_count
            and not skipped
            and dest.dtype == dtype
        ):
            verify_prefix(rec.file_path, dest, recorder, checksum_entry)
        return got
    projected = dest.dtype != dtype
    scratch = np.empty(len(dest), dtype=dtype) if projected else dest
    if runs is not None:
        got = retry.call(
            read_particle_runs_into,
            backend,
            rec.file_path,
            dtype,
            runs,
            scratch,
            actor=actor,
            recorder=recorder,
        )
        recorder.add(DECODE_VECTORIZED_RUNS, len(runs), key=(rec.file_path,))
    elif count == rec.particle_count:
        got = retry.call(
            read_data_file_into,
            backend,
            rec.file_path,
            dtype,
            scratch,
            actor=actor,
            recorder=recorder,
        )
        recorder.add(DECODE_VECTORIZED_RUNS, 1, key=(rec.file_path,))
    else:
        retry.call(
            read_data_prefix_into,
            backend,
            rec.file_path,
            dtype,
            scratch,
            actor=actor,
            recorder=recorder,
        )
        recorder.add(DECODE_VECTORIZED_RUNS, 1, key=(rec.file_path,))
        verify_prefix(rec.file_path, scratch, recorder, checksum_entry)
        got = count
    if projected:
        for name in dest.dtype.names or ():
            dest[name] = scratch[name]
    return got


def _process_entry(payload: dict, recorder: Recorder) -> int:
    """Worker-process body of one plan entry (see ``ProcessTask``).

    The payload carries a pickled backend clone, the entry facts, and the
    name plus byte offset of the parent's shared-memory *result block*:
    the decoded particles land directly in the entry's slice of the final
    result (zero extra copies child-side, zero copies parent-side), and
    only the delivered count rides back over the result pipe.  Per-file
    backend counters are routed into the task recorder when the parent had
    a recorder attached, so they merge into the execution stream like
    every other child record.
    """
    from multiprocessing import shared_memory

    backend = payload["backend"]
    if payload["note_io"]:
        backend.attach_recorder(recorder)
    shm = shared_memory.SharedMemory(name=payload["shm_name"])
    dest = None
    try:
        dest = np.ndarray(
            payload["n"],
            dtype=payload["result_dtype"],
            buffer=shm.buf,
            offset=payload["byte_offset"],
        )
        return read_entry_into(
            backend,
            payload["dtype"],
            payload["rec"],
            payload["count"],
            payload["runs"],
            dest,
            recorder,
            payload["strict"],
            payload["retry"],
            payload["actor"],
            payload["index"],
            payload["checksum_entry"],
        )
    finally:
        dest = None  # release the exported buffer before closing the block
        shm.close()


class QueryEngine:
    """Plans and executes reads over one :class:`~repro.dataset.Dataset`.

    The engine holds no per-query state: planning consults the facade's
    memoized tables, and :meth:`run` takes the recorder to record into
    (defaulting to the dataset's), so one engine instance — shared via
    :meth:`repro.dataset.Dataset.engine` — safely serves concurrent
    queries from many clients.
    """

    def __init__(self, dataset) -> None:
        from repro.dataset import Dataset, as_dataset

        self.dataset: Dataset = as_dataset(dataset)

    # -- policy bundle (proxied so invalidation/re-resolution is honoured) ---

    @property
    def backend(self):
        return self.dataset.backend

    @property
    def strict(self) -> bool:
        return self.dataset.strict

    @property
    def retry(self):
        return self.dataset.retry

    @property
    def executor(self):
        return self.dataset.executor

    @property
    def recorder(self) -> Recorder:
        return self.dataset.recorder

    @property
    def actor(self) -> int:
        return self.dataset.actor

    @property
    def manifest(self):
        return self.dataset.manifest

    @property
    def metadata(self):
        return self.dataset.metadata

    @property
    def dtype(self) -> np.dtype:
        return self.manifest.dtype

    # -- planning ------------------------------------------------------------

    def _prefix_for(
        self, records: list[MetadataRecord], max_level: int | None, nreaders: int
    ) -> list[int]:
        """Per-file particle counts honouring an optional LOD ceiling.

        LOD prefix lengths are computed against the *whole dataset's* file
        counts (levels are a global notion), then restricted to the files
        the query actually touches.
        """
        if max_level is None:
            return [rec.particle_count for rec in records]
        if max_level < 0:
            raise QueryError(f"max_level must be >= 0, got {max_level}")
        # Both tables are pure functions of the loaded metadata, memoized on
        # the facade so repeated plans share one computation.
        prefixes = self.dataset.lod_prefix_table(max_level, nreaders)
        # Index by box_id (unique per table — validated on load), so plans
        # built from copied or sliced record lists still resolve; an
        # identity (id()) index silently KeyErrors on equal-but-distinct
        # record objects.
        index = self.dataset.box_id_index()
        out = []
        for rec in records:
            i = index.get(rec.box_id)
            if i is None:
                raise QueryError(
                    f"record box_id {rec.box_id} is not in this dataset's "
                    "spatial metadata table"
                )
            out.append(prefixes[i])
        return out

    def _normalize_projection(
        self,
        attrs: tuple[str, ...] | list[str] | None,
        where: dict[str, tuple[float, float]] | None,
    ) -> tuple[tuple[str, ...] | None, dict[str, tuple[float, float]]]:
        """Validate and canonicalise ``attrs`` / ``where`` query arguments.

        ``attrs`` come back deduplicated in file-dtype field order;
        ``where`` bounds come back as closed float intervals.  Both are
        checked against the dataset dtype up front so a typo'd attribute
        fails at plan time, not deep inside execution.
        """
        names = self.dtype.names or ()
        attrs_norm: tuple[str, ...] | None = None
        if attrs is not None:
            requested = set(attrs)
            unknown = requested - set(names)
            if unknown:
                raise QueryError(
                    f"unknown projection attribute(s) {sorted(unknown)!r}; "
                    f"dataset fields are {list(names)!r}"
                )
            attrs_norm = tuple(n for n in names if n != "position" and n in requested)
        where_norm: dict[str, tuple[float, float]] = {}
        for name, bounds in (where or {}).items():
            if name not in names:
                raise QueryError(
                    f"unknown where attribute {name!r}; "
                    f"dataset fields are {list(names)!r}"
                )
            sub = self.dtype.fields[name][0]  # type: ignore[index]
            if sub.shape:
                raise QueryError(
                    f"where attribute {name!r} is not scalar (shape {sub.shape})"
                )
            lo, hi = float(bounds[0]), float(bounds[1])
            if not lo <= hi:
                raise QueryError(
                    f"where range for {name!r} is empty: lo {lo} > hi {hi}"
                )
            where_norm[name] = (lo, hi)
        return attrs_norm, where_norm

    def plan_box(
        self,
        box: Box,
        max_level: int | None = None,
        nreaders: int = 1,
        attrs: tuple[str, ...] | list[str] | None = None,
        where: dict[str, tuple[float, float]] | None = None,
    ) -> QueryPlan:
        """Plan a spatial query: metadata pruning + optional LOD prefixes.

        Files carrying a chunk index are pruned further: only the coalesced
        runs of chunks whose tight bounds intersect ``box`` are planned
        (recorded in :attr:`QueryPlan.chunk_runs` when that is fewer
        particles than the whole file).  LOD-prefix entries are exempt — a
        prefix read must be the contiguous head of the file.

        ``attrs`` projects the result to ``position`` plus the named fields
        (columnar files then skip the other columns' bytes entirely).
        ``where`` maps scalar attribute names to closed ``(lo, hi)`` value
        ranges; files and chunks whose recorded min/max for an indexed
        attribute miss the range are pruned before any I/O, and the exact
        value filter is re-applied to whatever is read, so the result
        equals post-hoc filtering regardless of indexing.
        """
        attrs_norm, where_norm = self._normalize_projection(attrs, where)
        records = self.metadata.files_intersecting(box)
        if where_norm:
            records = [
                rec
                for rec in records
                if all(
                    rec.attr_ranges.get(name) is None
                    or (
                        rec.attr_ranges[name][0] <= hi
                        and lo <= rec.attr_ranges[name][1]
                    )
                    for name, (lo, hi) in where_norm.items()
                )
            ]
        counts = self._prefix_for(records, max_level, nreaders)
        plan = QueryPlan(
            list(zip(records, counts)),
            box=box,
            max_level=max_level,
            attrs=attrs_norm,
            where=where_norm,
            generation=self.dataset.generation,
        )
        for i, (rec, count) in enumerate(plan.entries):
            if count == 0 or count != rec.particle_count:
                continue
            index = self.dataset.chunk_index(rec)
            if index is None:
                continue
            runs = index.select_runs(box, where=where_norm)
            if sum(c for _s, c in runs) < count:
                plan.chunk_runs[i] = runs
        return plan

    def plan_full(
        self, max_level: int | None = None, nreaders: int = 1
    ) -> QueryPlan:
        records = list(self.metadata.records)
        counts = self._prefix_for(records, max_level, nreaders)
        return QueryPlan(
            list(zip(records, counts)),
            box=None,
            max_level=max_level,
            generation=self.dataset.generation,
        )

    def assign_files(self, nreaders: int, reader_rank: int) -> list[MetadataRecord]:
        """Contiguous file assignment for an ``nreaders``-way parallel read.

        File i goes to reader ``i * nreaders // num_files``-ish; we use the
        balanced contiguous split so each reader touches a spatially
        coherent run of files (metadata records are written in partition
        order, which is a spatial order).
        """
        if not 0 <= reader_rank < nreaders:
            raise QueryError(f"reader rank {reader_rank} out of range ({nreaders})")
        n = len(self.metadata)
        lo = reader_rank * n // nreaders
        hi = (reader_rank + 1) * n // nreaders
        return self.metadata.records[lo:hi]

    def plan_assigned(
        self, nreaders: int, reader_rank: int, max_level: int | None = None
    ) -> QueryPlan:
        """One reader's share of a full parallel read (Fig. 7 style)."""
        records = self.assign_files(nreaders, reader_rank)
        counts = self._prefix_for(records, max_level, nreaders)
        return QueryPlan(
            list(zip(records, counts)),
            max_level=max_level,
            generation=self.dataset.generation,
        )

    # -- execution -----------------------------------------------------------

    def _read_entry_into(
        self,
        rec: MetadataRecord,
        count: int,
        runs: tuple[tuple[int, int], ...] | None,
        dest: np.ndarray,
        recorder: Recorder,
        strict: bool,
        staged: StagedReads | None = None,
    ) -> int:
        """One plan entry into its result slice (see :func:`read_entry_into`)."""
        return read_entry_into(
            self.backend,
            self.dtype,
            rec,
            count,
            runs,
            dest,
            recorder,
            strict,
            self.retry,
            self.actor,
            self.dataset.chunk_index(rec),
            self.manifest.checksums.get(rec.file_path),
            staged,
        )

    def _verify_prefix(
        self, path: str, data, recorder: Recorder
    ) -> None:
        """Prefix-checksum check against the manifest (see :func:`verify_prefix`)."""
        verify_prefix(path, data, recorder, self.manifest.checksums.get(path))

    def _process_clone(self, staged: StagedReads | None, deadline):
        """The backend clone process-shipping would use, or ``None``.

        Shipping is declined — and the process executor degrades to its
        internal thread pool — when the work cannot cross a process
        boundary: staged buffers and ambient deadlines are in-memory
        parent state, and the backend must volunteer a picklable
        read-equivalent via
        :meth:`~repro.io.backend.FileBackend.process_clone`.
        """
        if getattr(self.executor, "mode", "serial") != "process":
            return None
        if staged is not None or deadline is not None:
            return None
        return self.backend.process_clone()

    def _process_tasks(
        self,
        tasks: list,
        entries: list[tuple[MetadataRecord, int]],
        runs_for: list[tuple[tuple[int, int], ...] | None],
        dests: list[np.ndarray],
        offsets: list[int],
        strict: bool,
        clone,
        shm_name: str,
    ) -> list:
        """Wrap plan-entry tasks as process descriptors.

        Only a :class:`~repro.io.executor.ProcessExecutor` consumes the
        descriptors; every other executor just calls the task's ``local``
        form, so wrapping is behaviour-neutral.  ``shm_name`` names the
        shared-memory block backing the *whole result array* (see
        :meth:`run`): each descriptor carries its entry's byte offset into
        it, the worker decodes straight into that slice, and nothing is
        copied parent-side.
        """
        from repro.io.executor import ProcessTask

        note_io = self.backend.recorder is not None
        wrapped: list = []
        for (rec, count), runs, dest, off, local in zip(
            entries, runs_for, dests, offsets, tasks
        ):
            payload = {
                "backend": clone,
                "dtype": self.dtype,
                "rec": rec,
                "count": count,
                "runs": runs,
                "strict": strict,
                "retry": self.retry,
                "actor": self.actor,
                "index": self.dataset.chunk_index(rec),
                "checksum_entry": self.manifest.checksums.get(rec.file_path),
                "shm_name": shm_name,
                "byte_offset": off * dest.dtype.itemsize,
                "n": len(dest),
                "result_dtype": dest.dtype,
                "note_io": note_io,
            }
            wrapped.append(ProcessTask(local, _process_entry, payload))
        return wrapped

    def check_generation(self, plan: QueryPlan) -> None:
        """Refuse a plan built against a different generation snapshot."""
        if plan.generation is None:
            return
        current = self.dataset.generation
        if plan.generation != current:
            raise QueryError(
                f"plan was built against generation {plan.generation}, "
                f"dataset now reads generation {current} — re-plan against "
                "the current snapshot"
            )

    def run(
        self,
        plan: QueryPlan,
        exact: bool = False,
        *,
        recorder: Recorder | None = None,
        strict: bool | None = None,
        staged: StagedReads | None = None,
        deadline=None,
    ) -> QueryResult:
        """Execute a plan.  ``exact=True`` filters particles to the plan's box.

        Execution is zero-copy scatter-gather: one result array is
        preallocated from the plan's totals and every per-file read lands
        directly in its slice via the backend's ``readinto`` — no per-file
        allocation and no concatenate copy on the complete-read path.
        Chunk-pruned runs (:attr:`QueryPlan.chunk_runs`) are honoured only
        for exact box reads; a non-exact read must deliver whole files.

        Per-file entries are independent, so they run on the dataset's
        :class:`~repro.io.executor.IoExecutor` (fail-fast in strict
        mode).  Outcomes are consumed in plan order and each entry's
        child recorder is merged back before its partition event is
        emitted, so batches, the :class:`ReadReport`, and the recorder's
        event stream are identical whichever executor ran the plan.

        ``recorder`` defaults to the dataset's; a service passes each
        query its own child so concurrent queries never interleave.
        ``staged`` supplies cross-query pre-read buffers (see
        :class:`StagedReads`).  Strict execution raises on the first (in
        plan order) unrecoverable error; non-strict skips the partition
        and logs it in the returned report.

        ``deadline`` (a :class:`~repro.io.resilience.Deadline`, defaulting
        to the caller's ambient one) bounds the whole execution: it is
        re-entered *inside* each entry's task body — executor worker
        threads do not inherit the caller's context — so the remote tier's
        per-request budgets and retry loops see it, and an entry that
        starts after expiry is shed before any I/O.  In non-strict mode a
        shed entry becomes a skipped partition with reason ``"deadline"``;
        breaker fast-fails likewise skip with reason ``"unavailable"``.
        """
        from repro.io.resilience import current_deadline, deadline_scope

        self.check_generation(plan)
        recorder = recorder if recorder is not None else self.recorder
        strict = self.strict if strict is None else strict
        deadline = deadline if deadline is not None else current_deadline()
        use_runs = exact and plan.box is not None
        entries: list[tuple[MetadataRecord, int]] = []
        runs_for: list[tuple[tuple[int, int], ...] | None] = []
        for i, (rec, count) in enumerate(plan.entries):
            if count <= 0:
                continue
            entries.append((rec, count))
            runs_for.append(plan.chunk_runs.get(i) if use_runs else None)
        expected = [
            sum(c for _s, c in runs) if runs is not None else count
            for (_rec, count), runs in zip(entries, runs_for)
        ]
        offsets = [0] * len(entries)
        pos = 0
        for i, n in enumerate(expected):
            offsets[i] = pos
            pos += n
        result_dtype = plan.result_dtype(self.dtype)
        # Process-shipped execution decodes every entry directly into one
        # shared-memory block that *is* the result array — workers write
        # their slices in place, so bulk bytes never cross the result pipe
        # and the parent copies nothing per entry.
        clone = self._process_clone(staged, deadline)
        shm_out = None
        if clone is not None:
            try:
                from multiprocessing import shared_memory

                shm_out = shared_memory.SharedMemory(
                    create=True, size=max(1, pos * result_dtype.itemsize)
                )
            except OSError:
                shm_out = None  # no shared memory here: keep reads local
        if shm_out is not None:
            out = np.ndarray(pos, dtype=result_dtype, buffer=shm_out.buf)
        else:
            out = np.empty(pos, dtype=result_dtype)
        #: particles delivered per entry (None = skipped / not run).
        delivered: list[int | None] = [None] * len(entries)
        mark = recorder.event_mark()
        try:
            with recorder.span(PHASE_FILE_IO, cat="read", files=plan.num_files):
                def _entry_task(r, rec, count, runs, dest):
                    if deadline is None:
                        return self._read_entry_into(
                            rec, count, runs, dest, r, strict, staged
                        )
                    with deadline_scope(deadline):
                        deadline.check(f"read {rec.file_path!r}")
                        return self._read_entry_into(
                            rec, count, runs, dest, r, strict, staged
                        )

                dests = [
                    out[offsets[i] : offsets[i] + expected[i]]
                    for i in range(len(entries))
                ]
                tasks: list = [
                    (
                        lambda r, rec=rec, count=count, runs=runs, dest=dest:
                        _entry_task(r, rec, count, runs, dest)
                    )
                    for (rec, count), runs, dest in zip(
                        entries, runs_for, dests
                    )
                ]
                if shm_out is not None:
                    tasks = self._process_tasks(
                        tasks, entries, runs_for, dests, offsets,
                        strict, clone, shm_out.name,
                    )
                outcomes = self.executor.run(
                    tasks, recorder, fail_fast=strict
                )
                for i, ((rec, _count), outcome) in enumerate(
                    zip(entries, outcomes)
                ):
                    if not outcome.ran:
                        break  # fail-fast cut the tail; the error already raised
                    if outcome.recorder is not None:
                        recorder.merge(outcome.recorder)
                    if outcome.error is not None:
                        exc = outcome.error
                        if strict or not isinstance(
                            exc, (BackendError, FormatError)
                        ):
                            raise exc
                        recorder.event(
                            EV_PARTITION_SKIPPED,
                            path=rec.file_path,
                            box_id=rec.box_id,
                            reason=_skip_reason(exc),
                            error=str(exc),
                        )
                        continue
                    delivered[i] = int(outcome.value)
                    recorder.event(
                        EV_PARTITION_READ,
                        path=rec.file_path,
                        box_id=rec.box_id,
                        particles=delivered[i],
                    )
            if shm_out is not None:
                # Land the result in private memory with one bulk copy so
                # the shared block can be released before returning.
                plain = np.empty_like(out)
                np.copyto(plain, out)
                out = plain
        finally:
            report = ReadReport.from_events(recorder.events_since(mark))
            if shm_out is not None:
                # Unlink only: the entry slices (`dests`, task closures)
                # still reference the mapping, so the munmap happens via
                # GC when this frame's locals die.  The kernel keeps the
                # memory alive until then; the name is gone immediately.
                try:
                    shm_out.unlink()
                except OSError:
                    pass
        if all(
            d is not None and d == e for d, e in zip(delivered, expected)
        ):
            result = out  # every slice filled: the preallocation IS the result
        else:
            # A chunk-degraded columnar read can deliver *fewer* particles
            # than its slice (survivors packed at the slice head), so any
            # short delivery also routes through the compacting branch.
            kept = [
                out[offsets[i] : offsets[i] + d]
                for i, d in enumerate(delivered)
                if d is not None
            ]
            result = (
                np.concatenate(kept)
                if kept
                else np.empty(0, dtype=out.dtype)
            )
        if exact and plan.box is not None and len(result):
            batch = ParticleBatch(result)
            mask = plan.box.contains_points(batch.positions, closed=True)
            result = batch.data[mask]
        if plan.where and len(result):
            # Exact predicate re-application: chunk/file pruning only
            # discards provably-disjoint data, so filtering here makes the
            # pushdown result equal post-hoc filtering by construction.
            mask = np.ones(len(result), dtype=bool)
            for name, (lo, hi) in plan.where.items():
                vals = result[name].astype(np.float64, copy=False)
                mask &= (vals >= lo) & (vals <= hi)
            result = result[mask]
        return QueryResult(ParticleBatch(result), report, plan)

    def __repr__(self) -> str:
        return f"QueryEngine({self.dataset!r})"
