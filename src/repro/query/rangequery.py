"""Attribute-range queries using the per-file min/max index.

The paper plans (§3.5) to extend the metadata with per-region scalar
extrema "to narrow down range-queries on these non-spatial attributes
(e.g., density, pressure or temperature)".  Our metadata format carries
that index when the writer is configured with ``attr_index=(...)``;
``range_query`` uses it to skip files whose [min, max] cannot overlap the
requested interval, then filters exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.reader import SpatialReader
from repro.errors import QueryError
from repro.format.datafile import read_data_file
from repro.particles.batch import ParticleBatch, concatenate


def range_query(
    reader: SpatialReader,
    attr: str,
    lo: float,
    hi: float,
    use_index: bool = True,
) -> ParticleBatch:
    """Particles with ``lo <= attr <= hi``.

    ``use_index=False`` forces the unpruned full scan — the ablation
    baseline for measuring what the min/max index buys.
    """
    if hi < lo:
        raise QueryError(f"range query needs lo <= hi, got [{lo}, {hi}]")
    if attr not in (reader.dtype.names or ()):
        raise QueryError(f"{attr!r} is not a field of {reader.dtype}")
    if use_index:
        records = reader.metadata.files_in_attr_range(attr, lo, hi)
    else:
        records = [r for r in reader.metadata.records if r.particle_count > 0]
    batches = []
    for rec in records:
        if rec.particle_count == 0:
            continue
        batch = read_data_file(reader.backend, rec.file_path, reader.dtype, reader.actor)
        col = np.asarray(batch.data[attr], dtype=np.float64)
        mask = (col >= lo) & (col <= hi)
        batches.append(ParticleBatch(batch.data[mask]))
    if not batches:
        return ParticleBatch(np.empty(0, dtype=reader.dtype))
    return concatenate(batches)


def files_pruned_by_index(reader: SpatialReader, attr: str, lo: float, hi: float) -> int:
    """How many candidate files the index eliminated for this range."""
    if attr not in reader.metadata.attr_names:
        raise QueryError(
            f"attribute {attr!r} is not indexed (index covers "
            f"{reader.metadata.attr_names})"
        )
    candidates = sum(1 for r in reader.metadata.records if r.particle_count > 0)
    kept = len(reader.metadata.files_in_attr_range(attr, lo, hi))
    return candidates - kept
