"""repro — spatially-aware parallel I/O for particle data.

A from-scratch Python reproduction of Kumar, Petruzza, Usher & Pascucci,
*Spatially-aware Parallel I/O for Particle Data*, ICPP 2019.

Public entry points:

* :mod:`repro.core` — the paper's contribution: spatially-aware two-phase
  I/O writer, LOD layout, spatial-metadata reader, adaptive aggregation.
* :mod:`repro.mpi` — in-process simulated MPI runtime (substrate).
* :mod:`repro.baselines` — file-per-process, shared-file and spatially
  unaware subfiling baselines.
* :mod:`repro.perf` — Mira/Theta/workstation performance models used by the
  benchmark harnesses.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
