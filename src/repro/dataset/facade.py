"""The :class:`Dataset` facade: one open/validate lifecycle for all consumers.

A dataset on disk is three things — ``manifest.json`` (the commit marker
and dtype/LOD/provenance record), ``spatial.meta`` (the binary per-file
table), and ``data/*`` (the particle files).  Opening one correctly means
reading the first two in order, validating their format versions and
checksums, and then carrying a consistent policy bundle (strict vs.
degraded, retry, instrumentation, execution) into every per-file
operation that follows.

:class:`Dataset` owns exactly that bundle:

* ``backend`` — where the bytes live (or a path, wrapped in a read-only
  :class:`~repro.io.posix.PosixBackend`);
* ``strict`` — raise on the first unrecoverable per-file error (True) or
  degrade and report (False);
* ``retry`` — the :class:`~repro.io.retry.RetryPolicy` applied to
  transient backend faults;
* ``recorder`` — the obs :class:`~repro.obs.recorder.Recorder` every
  lifecycle phase and derived component records into;
* ``executor`` — the :class:`~repro.io.executor.IoExecutor` that runs
  independent per-file operations (serial by default, threaded for real
  concurrency on GIL-releasing backends).

Consumers hang off the facade: :meth:`reader` (spatial queries),
:meth:`scrub` (integrity verification), :meth:`is_complete` (the commit
probe).  This module is the **only** place in the library that calls
``Manifest.read`` / ``SpatialMetadata.read`` — everything else goes
through here.

Generation pinning (MVCC): opening a dataset resolves which generation to
read **once** — the ``CURRENT`` pointer for chained datasets, the classic
``manifest.json`` otherwise — and every subsequent manifest/metadata/chunk
access goes through that pinned resolution.  A writer appending generation
N+1 touches only new paths and flips ``CURRENT`` last, so an open facade's
queries stay bit-identical to the generation it opened.  Pass
``generation=`` to pin an explicit (older) generation for snapshot reads;
:meth:`invalidate_cache` drops the resolution along with the memos, so the
next access re-resolves and observes new commits.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING

from repro.format.generations import ResolvedGeneration, resolve_generation
from repro.format.manifest import Manifest
from repro.format.metadata import SpatialMetadata
from repro.io.backend import FileBackend
from repro.io.executor import IoExecutor, SerialExecutor
from repro.io.retry import RetryPolicy
from repro.obs.names import EV_CURRENT_FALLBACK, GEN_FALLBACKS, PHASE_METADATA
from repro.obs.recorder import Recorder

if TYPE_CHECKING:  # circular at runtime: core imports repro.dataset
    from repro.core.reader import SpatialReader
    from repro.core.repair import RepairReport
    from repro.core.scrub import ScrubReport
    from repro.query.engine import QueryEngine

__all__ = ["Dataset", "open_dataset", "as_dataset"]


def _as_backend(target: FileBackend | str | os.PathLike) -> FileBackend:
    """Paths become read-only POSIX backends; backends pass through."""
    if isinstance(target, FileBackend):
        return target
    from repro.io.posix import PosixBackend

    return PosixBackend(target, create=False)


class Dataset:
    """One dataset plus the policy bundle every consumer shares.

    Construction is cheap and never touches storage; :meth:`load` (or the
    eager :meth:`open` classmethod) reads and validates the manifest and
    spatial-metadata table under a ``metadata`` span.  The ``manifest`` /
    ``metadata`` properties load lazily on first access, so
    consumers that only need one piece (or none — scrubbing a damaged
    dataset) can use the granular ``read_*`` methods instead.
    """

    def __init__(
        self,
        target: FileBackend | str | os.PathLike,
        *,
        actor: int = -1,
        strict: bool = True,
        retry: RetryPolicy | None = None,
        recorder: Recorder | None = None,
        executor: IoExecutor | None = None,
        cache_bytes: int = 0,
        generation: int | None = None,
    ):
        self.backend = _as_backend(target)
        if cache_bytes:
            from repro.io.cache import CachingBackend

            self.backend = CachingBackend(self.backend, cache_bytes)
        self.actor = actor
        self.strict = strict
        self.retry = retry if retry is not None else RetryPolicy()
        self.recorder = (
            recorder if recorder is not None else Recorder(rank=max(actor, 0))
        )
        self.executor = executor if executor is not None else SerialExecutor()
        #: Explicit generation pin (snapshot reads); None = follow CURRENT.
        self._pin_generation = generation
        # One facade is shared by every reader/engine/service client, so all
        # lazy state below — generation resolution, manifest/metadata load,
        # planning memos — is guarded by one reentrant lock.  Reentrant
        # because the memoized pieces compose (load() resolves, planning
        # tables read the loaded metadata) and per-piece locks would either
        # deadlock or leave observable half-initialised windows.
        self._memo_lock = threading.RLock()
        self._resolved: ResolvedGeneration | None = None
        self._manifest: Manifest | None = None
        self._metadata: SpatialMetadata | None = None
        # Read-planning memos (see the planning-tables section below).
        self._lod_tables: dict[tuple[int, int], list[int]] = {}
        self._box_index: dict[int, int] | None = None
        self._chunk_indexes: dict[str, object] = {}
        self._engine: "QueryEngine | None" = None

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(
        cls, target: FileBackend | str | os.PathLike, **kwargs: object
    ) -> "Dataset":
        """Construct and eagerly load/validate — the common entry point."""
        return cls(target, **kwargs).load()  # type: ignore[arg-type]

    def resolution(self) -> ResolvedGeneration:
        """Which generation this facade reads, resolved once and pinned.

        Resolution order: an explicit ``generation=`` pin wins; otherwise a
        valid ``CURRENT`` pointer; otherwise fall back to the newest fully
        verifiable generation (recorded as a ``generation.fallback``
        event); a dataset with neither pointer nor chain is the classic
        generation-0 layout.
        """
        with self._memo_lock:
            if self._resolved is None:
                resolved = resolve_generation(
                    self.backend, pin=self._pin_generation, actor=self.actor
                )
                if resolved.fallback:
                    self.recorder.add(GEN_FALLBACKS)
                    self.recorder.event(
                        EV_CURRENT_FALLBACK,
                        generation=resolved.generation,
                        detail=resolved.detail,
                    )
                self._resolved = resolved
            return self._resolved

    def load(self) -> "Dataset":
        """Read + validate manifest and spatial metadata (idempotent).

        Both reads happen under one ``metadata`` span on the dataset's
        recorder, against the pinned generation's paths (see
        :meth:`resolution`); format-version and checksum validation happens
        inside the format layer and surfaces as
        :class:`~repro.errors.FormatError` subclasses.
        """
        with self._memo_lock:
            if self._manifest is None or self._metadata is None:
                with self.recorder.span(PHASE_METADATA, cat="read"):
                    resolved = self.resolution()
                    self._manifest = Manifest.read(
                        self.backend, resolved.manifest_path, actor=self.actor
                    )
                    self._metadata = SpatialMetadata.read(
                        self.backend, resolved.meta_path, actor=self.actor
                    )
        return self

    @property
    def loaded(self) -> bool:
        return self._manifest is not None and self._metadata is not None

    @property
    def manifest(self) -> Manifest:
        if self._manifest is None:
            self.load()
        assert self._manifest is not None
        return self._manifest

    @property
    def metadata(self) -> SpatialMetadata:
        if self._metadata is None:
            self.load()
        assert self._metadata is not None
        return self._metadata

    # -- generation chain ----------------------------------------------------

    @property
    def pinned_generation(self) -> int | None:
        """The explicit generation pin, or None when following CURRENT."""
        return self._pin_generation

    @property
    def generation(self) -> int:
        """The generation this facade reads (resolving if needed)."""
        return self.resolution().generation

    def generations(self) -> list[int]:
        """Every generation with a manifest on disk, ascending."""
        from repro.format.generations import list_generations

        return list_generations(self.backend)

    def at_generation(self, gen: int) -> "Dataset":
        """A sibling facade pinned to ``gen`` (snapshot/time-travel reads).

        Shares the backend and policy bundle; caches are independent, so
        two pins never cross-contaminate memoized state.
        """
        return Dataset(
            self.backend,
            actor=self.actor,
            strict=self.strict,
            retry=self.retry,
            recorder=self.recorder,
            executor=self.executor,
            generation=gen,
        )

    # -- granular pieces (scrub and manifest-only formats) -------------------

    def manifest_exists(self) -> bool:
        return self.backend.exists(self.resolution().manifest_path)

    def metadata_exists(self) -> bool:
        return self.backend.exists(self.resolution().meta_path)

    def read_manifest(self) -> Manifest:
        """Read just the manifest, uncached.

        For consumers of manifest-only datasets (the baselines' formats
        carry no spatial table) and for scrubbing, where each piece is
        probed independently with its own error policy.
        """
        return Manifest.read(
            self.backend, self.resolution().manifest_path, actor=self.actor
        )

    def read_metadata(self) -> SpatialMetadata:
        """Read just the spatial table, uncached (see :meth:`read_manifest`)."""
        return SpatialMetadata.read(
            self.backend, self.resolution().meta_path, actor=self.actor
        )

    # -- basic facts ---------------------------------------------------------

    @property
    def dtype(self):
        return self.manifest.dtype

    @property
    def total_particles(self) -> int:
        return self.metadata.total_particles

    @property
    def num_files(self) -> int:
        return len(self.metadata)

    def domain(self):
        return self.metadata.domain()

    # -- memoized planning tables -------------------------------------------
    #
    # Read planning consults the same derived tables for every query: the
    # per-file LOD prefix apportionment (fixed per (max_level, nreaders)),
    # the box_id -> record-position index, and the per-file chunk indexes.
    # All are pure functions of the loaded metadata/manifest, so they are
    # computed once here and shared by every reader hanging off this facade;
    # :meth:`invalidate_cache` drops them with the metadata they derive from.

    def lod_prefix_table(self, max_level: int, nreaders: int) -> list[int]:
        """Per-file particle counts for levels ``0..max_level`` split over
        ``nreaders`` (memoized :func:`repro.core.lod.lod_prefix_counts`)."""
        key = (int(max_level), int(nreaders))
        with self._memo_lock:
            table = self._lod_tables.get(key)
            if table is None:
                import repro.core.lod as lod

                table = lod.lod_prefix_counts(
                    [r.particle_count for r in self.metadata.records],
                    nreaders,
                    max_level,
                    base=self.manifest.lod_base,
                    scale=self.manifest.lod_scale,
                )
                self._lod_tables[key] = table
            return table

    def box_id_index(self) -> dict[int, int]:
        """``box_id -> position`` over the metadata table (memoized)."""
        with self._memo_lock:
            if self._box_index is None:
                self._box_index = {
                    r.box_id: i for i, r in enumerate(self.metadata.records)
                }
            return self._box_index

    def chunk_index(self, rec) -> "object | None":
        """The validated :class:`~repro.format.chunks.FileChunkIndex` for
        ``rec``'s data file, or ``None``.

        ``None`` means no index was recorded (chunking disabled, empty
        file) *or* the recorded one fails validation — planning silently
        falls back to whole-file reads either way and leaves flagging a
        damaged index to the scrubber.  Memoized per file path.
        """
        path = rec.file_path
        with self._memo_lock:
            if path not in self._chunk_indexes:
                from repro.errors import FormatError
                from repro.format.chunks import FileChunkIndex

                centry = self.manifest.checksums.get(path, {})
                chunks = centry.get("chunks")
                index = None
                if chunks:
                    try:
                        index = FileChunkIndex.from_entry(
                            chunks,
                            rec.particle_count,
                            path=path,
                            codec=centry.get("codec"),
                            attr_names=tuple(self.metadata.attr_names),
                        )
                    except FormatError:
                        index = None
                self._chunk_indexes[path] = index
            return self._chunk_indexes[path]

    # -- consumers -----------------------------------------------------------

    def reader(self) -> "SpatialReader":
        """A spatial reader bound to this dataset's policy bundle."""
        from repro.core.reader import SpatialReader

        return SpatialReader(self)

    def engine(self) -> "QueryEngine":
        """The shared stateless :class:`~repro.query.engine.QueryEngine`.

        Memoized: every reader, series step, CLI command, and serving-layer
        client executing against this facade shares one engine (the engine
        holds no per-query state, so sharing is free and keeps the planning
        memos hot).  Survives :meth:`invalidate_cache` — the engine proxies
        the facade, so it observes re-resolved state automatically.
        """
        with self._memo_lock:
            if self._engine is None:
                from repro.query.engine import QueryEngine

                self._engine = QueryEngine(self)
            return self._engine

    def scrub(self) -> "ScrubReport":
        """Verify every on-disk invariant (per-file work on the executor)."""
        from repro.core.scrub import scrub_dataset

        return scrub_dataset(self)

    def repair(
        self, report: "ScrubReport | None" = None, *, dry_run: bool = False
    ) -> "RepairReport":
        """Plan and (unless ``dry_run``) execute repairs for every issue a
        scrub found; see :func:`repro.core.repair.repair_dataset`."""
        from repro.core.repair import repair_dataset

        return repair_dataset(self, report, dry_run=dry_run)

    def invalidate_cache(self) -> "Dataset":
        """Drop the cached manifest/metadata so the next access re-reads.

        The generation resolution is dropped too (an explicit pin is
        kept): a facade held open across a repair, append, or compaction
        re-resolves and observes the newly committed state.  Called
        automatically after :meth:`repair` executes any action; harmless
        otherwise."""
        with self._memo_lock:
            self._resolved = None
            self._manifest = None
            self._metadata = None
            self._lod_tables = {}
            self._box_index = None
            self._chunk_indexes = {}
        return self

    def is_complete(self) -> bool:
        """The two-phase-commit probe: marker present and everything it
        references on disk."""
        from repro.core.scrub import dataset_is_complete

        return dataset_is_complete(self)

    def __repr__(self) -> str:
        state = "loaded" if self.loaded else "unloaded"
        return (
            f"Dataset({self.backend!r}, {state}, strict={self.strict}, "
            f"executor={self.executor!r})"
        )


def open_dataset(
    target: FileBackend | str | os.PathLike,
    *,
    auto_repair: bool = False,
    **kwargs: object,
) -> Dataset:
    """Module-level alias of :meth:`Dataset.open`.

    With ``auto_repair=True`` the dataset is scrubbed first and, if damaged,
    repaired in place (see :func:`repro.core.repair.repair_dataset`) before
    the strict open — the self-healing open for unattended consumers.
    """
    if not auto_repair:
        return Dataset.open(target, **kwargs)
    ds = Dataset(target, **kwargs)  # type: ignore[arg-type]
    report = ds.scrub()
    if not report.ok:
        ds.repair(report)
    return ds.load()


def as_dataset(target: "Dataset | FileBackend | str | os.PathLike", **kwargs: object) -> Dataset:
    """Coerce a backend/path into an (unloaded) facade; pass facades through.

    The adapter consumers use to accept either form without re-wrapping a
    caller-configured dataset (which would drop its policy bundle).
    """
    if isinstance(target, Dataset):
        return target
    return Dataset(target, **kwargs)  # type: ignore[arg-type]
