"""The unified dataset access layer.

Every consumer of an on-disk dataset — the spatial reader, the scrubber,
the series reader, the baselines, restart, the CLI — opens it through one
facade, :class:`Dataset`, which owns the whole open/validate lifecycle:
manifest + spatial-metadata loading, format-version checks, the
strict/degraded policy, the retry policy, the obs recorder, and the I/O
executor that runs per-file work.  Before this layer existed each
consumer re-implemented its own ``Manifest.read`` + ``SpatialMetadata.read``
wiring; now :mod:`repro.dataset` is the only place those are called.

    from repro.dataset import Dataset
    from repro.io.executor import ThreadedExecutor

    ds = Dataset.open("out/my_dataset", executor=ThreadedExecutor(8))
    reader = ds.reader()                  # concurrent per-file reads
    report = ds.scrub()                   # concurrent per-file verification
"""

from repro.dataset.facade import Dataset, as_dataset, open_dataset

__all__ = ["Dataset", "as_dataset", "open_dataset"]
