"""Legacy setup shim.

The sandboxed environment ships an older setuptools without wheel support,
so ``pip install -e .`` falls back to this file (``--no-build-isolation
--no-use-pep517``).  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Spatially-aware parallel I/O for particle data (ICPP 2019 reproduction)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
