"""Analysis-module tests: grids, histograms, profiles, neighbour stats."""

import numpy as np
import pytest

from repro.analysis import (
    attribute_histogram,
    density_grid,
    neighbor_statistics,
    radial_profile,
)
from repro.core import SpatialReader, WriterConfig
from repro.domain import Box
from repro.errors import QueryError
from repro.particles.dtype import UINTAH_DTYPE

from tests.conftest import write_dataset


@pytest.fixture(scope="module")
def dataset():
    backend, _, _ = write_dataset(
        nprocs=8,
        partition_factor=(2, 2, 2),
        particles_per_rank=4_000,
        dtype=UINTAH_DTYPE,
        config=WriterConfig(partition_factor=(2, 2, 2), lod_base=64),
    )
    return SpatialReader(backend)


class TestDensityGrid:
    def test_mass_conserved(self, dataset):
        grid = density_grid(dataset, dims=(8, 8, 8))
        assert grid.shape == (8, 8, 8)
        assert grid.sum() == pytest.approx(dataset.total_particles)

    def test_weighted_deposit(self, dataset):
        grid = density_grid(dataset, dims=(4, 4, 4), weight_attr="volume")
        everything = dataset.read_full()
        assert grid.sum() == pytest.approx(float(everything.data["volume"].sum()))

    def test_region_restricted(self, dataset):
        box = Box([0, 0, 0], [0.5, 0.5, 0.5])
        grid = density_grid(dataset, dims=(4, 4, 4), box=box)
        everything = dataset.read_full()
        inside = box.contains_points(everything.positions, closed=True).sum()
        assert grid.sum() == pytest.approx(float(inside))

    def test_lod_estimate_unbiased(self, dataset):
        full = density_grid(dataset, dims=(2, 2, 2))
        coarse = density_grid(dataset, dims=(2, 2, 2), max_level=3)
        # LOD estimate is scaled to the full population and lands close.
        assert coarse.sum() == pytest.approx(full.sum(), rel=0.02)
        assert np.abs(coarse - full).max() < 0.25 * full.max()

    def test_lod_convergence(self, dataset):
        """Deeper LOD reads converge to the exact grid."""
        exact = density_grid(dataset, dims=(2, 2, 2))
        errs = []
        for level in (1, 4, 8):
            approx = density_grid(dataset, dims=(2, 2, 2), max_level=level)
            errs.append(np.abs(approx - exact).sum())
        assert errs[-1] <= errs[0]
        assert errs[-1] == pytest.approx(0.0, abs=1e-6)

    def test_unknown_weight_attr(self, dataset):
        with pytest.raises(QueryError):
            density_grid(dataset, weight_attr="nope")


class TestAttributeHistogram:
    def test_counts_match_numpy(self, dataset):
        counts, edges = attribute_histogram(dataset, "density", bins=16)
        everything = dataset.read_full()
        expected, _ = np.histogram(everything.data["density"], bins=16)
        assert counts.sum() == pytest.approx(expected.sum())
        assert np.allclose(counts, expected)

    def test_value_range(self, dataset):
        counts, edges = attribute_histogram(
            dataset, "density", bins=4, value_range=(0.5, 1.5)
        )
        assert edges[0] == 0.5 and edges[-1] == 1.5

    def test_lod_estimate_close(self, dataset):
        full, edges = attribute_histogram(dataset, "density", bins=8)
        est, _ = attribute_histogram(dataset, "density", bins=8, max_level=4)
        assert est.sum() == pytest.approx(full.sum(), rel=0.02)
        # Shape agreement: same argmax bin.
        assert np.argmax(est) == np.argmax(full)

    def test_non_scalar_rejected(self, dataset):
        with pytest.raises(QueryError):
            attribute_histogram(dataset, "stress")

    def test_unknown_attr(self, dataset):
        with pytest.raises(QueryError):
            attribute_histogram(dataset, "pressure")

    def test_bad_bins(self, dataset):
        with pytest.raises(QueryError):
            attribute_histogram(dataset, "density", bins=0)


class TestRadialProfile:
    def test_uniform_density_flat_profile(self, dataset):
        density, edges = radial_profile(dataset, [0.5, 0.5, 0.5], 0.3, bins=4)
        assert len(density) == 4
        # Uniform data: shell densities within ~3x of each other (counting noise).
        positive = density[density > 0]
        assert len(positive) == 4
        assert positive.max() < 3 * positive.min()

    def test_counts_match_brute_force(self, dataset):
        center = np.array([0.5, 0.5, 0.5])
        radius = 0.25
        density, edges = radial_profile(dataset, center, radius, bins=1)
        everything = dataset.read_full()
        dist = np.linalg.norm(everything.positions - center, axis=1)
        count = int((dist < radius).sum())
        volume = (4 / 3) * np.pi * radius**3
        assert density[0] == pytest.approx(count / volume, rel=0.01)

    def test_invalid_radius(self, dataset):
        with pytest.raises(QueryError):
            radial_profile(dataset, [0.5, 0.5, 0.5], 0.0)


class TestNeighborStatistics:
    def test_spacing_matches_density(self, dataset):
        box = Box([0.2, 0.2, 0.2], [0.8, 0.8, 0.8])
        stats = neighbor_statistics(dataset, box, k=1, sample=64, seed=1)
        # Mean nearest-neighbour distance for a Poisson process of density
        # rho is ~0.554 * rho^(-1/3); allow a generous band.
        rho = dataset.total_particles / dataset.domain().volume
        expected = 0.554 * rho ** (-1 / 3)
        assert 0.5 * expected < stats.mean_spacing < 2.0 * expected
        assert stats.median_spacing <= stats.p95_spacing

    def test_k_ordering(self, dataset):
        box = Box([0.3, 0.3, 0.3], [0.7, 0.7, 0.7])
        s1 = neighbor_statistics(dataset, box, k=1, sample=32, seed=2)
        s4 = neighbor_statistics(dataset, box, k=4, sample=32, seed=2)
        assert s4.mean_spacing > s1.mean_spacing

    def test_too_few_particles(self, dataset):
        tiny = Box([0.0, 0.0, 0.0], [1e-6, 1e-6, 1e-6])
        with pytest.raises(QueryError):
            neighbor_statistics(dataset, tiny)

    def test_invalid_args(self, dataset):
        box = Box([0.2, 0.2, 0.2], [0.8, 0.8, 0.8])
        with pytest.raises(QueryError):
            neighbor_statistics(dataset, box, k=0)
        with pytest.raises(QueryError):
            neighbor_statistics(dataset, box, sample=0)
