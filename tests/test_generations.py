"""Manifest generations: crash-safe append, snapshot isolation, compaction.

The MVCC contract under test:

* ``append`` commits generation N+1 by flipping the checksummed ``CURRENT``
  pointer; a reader pinned to generation N is bit-identical throughout.
* A crash at ANY mutating backend operation (write or delete — swept with
  ``FaultPlan.crash_after_ops``) leaves the dataset readable at exactly
  generation N or N+1, never a torn mix; ``repro repair`` converges it and
  the following scrub exits clean.
* Online compaction rewrites the chain's many small files as a
  consolidated new generation with identical full-resolution query
  results; retention GC never touches a generation a pinned reader holds
  within the ``keep`` window.

Seeded via ``REPRO_FAULT_SEED`` so CI can sweep the fault matrix.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from tests.conftest import write_dataset
from repro.core import (
    SpatialReader,
    SpatialWriter,
    WriterConfig,
    collect_generations,
    compact_dataset,
    dataset_is_complete,
    repair_dataset,
    scrub_dataset,
)
from repro.core.repair import ACTION_DROP_GENERATION, ACTION_REWRITE_CURRENT
from repro.dataset import Dataset
from repro.domain import Box
from repro.errors import (
    BackendError,
    ConfigError,
    DataFileError,
    FormatError,
    RankFailedError,
)
from repro.format.datafile import data_file_name
from repro.format.generations import (
    CURRENT_PATH,
    decode_current,
    encode_current,
    generation_manifest_path,
    generation_meta_path,
    list_generations,
    parse_generation_path,
    read_current,
    resolve_generation,
)
from repro.format.metadata import MetadataRecord, SpatialMetadata
from repro.io import VirtualBackend
from repro.io.faults import FaultInjectingBackend, FaultPlan
from repro.mpi import run_mpi
from repro.particles import uniform_particles
from repro.particles.dtype import MINIMAL_DTYPE

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

NPROCS = 4
PF = (2, 2, 1)
QUERY_BOX = Box([0.2, 0.2, 0.2], [0.8, 0.8, 0.8])


def clone(backend: VirtualBackend) -> VirtualBackend:
    out = VirtualBackend()
    out._files = dict(backend._files)
    return out


def append_step(backend, decomp, seed, n=60):
    """One SPMD append over the committed generation."""
    writer = SpatialWriter(WriterConfig(partition_factor=PF))

    def main(comm):
        patch = decomp.patch_of_rank(comm.rank)
        batch = uniform_particles(
            patch, n, dtype=MINIMAL_DTYPE, seed=seed, rank=comm.rank
        )
        return writer.append(comm, batch, decomp, backend)

    return run_mpi(NPROCS, main)


def canon(batch) -> np.ndarray:
    """Canonical row order: (id, x, y, z) lexsort — a total order for the
    minimal dtype, so bit-identity compares survive any file shuffle."""
    d = batch.data
    pos = d["position"]
    return d[np.lexsort((pos[:, 2], pos[:, 1], pos[:, 0], d["id"]))]


def query_mix(source, generation=None):
    """The fixed query mix every isolation assertion replays."""
    ds = (
        source
        if isinstance(source, Dataset)
        else Dataset(source, generation=generation)
    )
    reader = SpatialReader(ds)
    return (
        canon(reader.read_full()),
        canon(reader.read_box(QUERY_BOX)),
        canon(reader.read_full(max_level=1)),
    )


def mixes_equal(a, b) -> bool:
    return all(np.array_equal(x, y) for x, y in zip(a, b))


@pytest.fixture(scope="module")
def chained():
    """A two-generation dataset: gen 0 overwrite + one append."""
    backend, decomp, _ = write_dataset(
        nprocs=NPROCS, partition_factor=PF, particles_per_rank=120
    )
    append_step(backend, decomp, seed=101)
    return backend, decomp


# -- CURRENT pointer codec -----------------------------------------------------


class TestCurrentCodec:
    @pytest.mark.parametrize("gen", [0, 1, 7, 12345])
    def test_roundtrip(self, gen):
        assert decode_current(encode_current(gen)) == gen

    def test_negative_generation_rejected(self):
        with pytest.raises(FormatError):
            encode_current(-1)

    @pytest.mark.parametrize(
        "raw",
        [
            b"",
            b"garbage\n",
            b"spio-current 1\n",
            b"spio-current 1 3 00000000\n",  # checksum wrong
            encode_current(3)[:-3],  # torn tail
        ],
    )
    def test_damage_raises(self, raw):
        with pytest.raises(FormatError):
            decode_current(raw)

    def test_tampered_generation_fails_checksum(self):
        raw = bytearray(encode_current(3))
        raw[raw.index(b" 3 ") + 1] = ord("4")
        with pytest.raises(FormatError):
            decode_current(bytes(raw))

    def test_read_current_absent_is_none(self):
        assert read_current(VirtualBackend()) is None


class TestGenerationPaths:
    def test_parse(self):
        assert parse_generation_path("manifest.gen-3.json") == ("manifest", 3)
        assert parse_generation_path("spatial.gen-12.meta") == ("meta", 12)
        assert parse_generation_path("manifest.json") is None
        assert parse_generation_path("spatial.meta") is None

    def test_gen0_paths_are_classic(self):
        assert generation_manifest_path(0) == "manifest.json"
        assert generation_meta_path(0) == "spatial.meta"
        assert data_file_name(2, 0) == "data/file_2.pbin"

    def test_chained_paths_are_namespaced(self):
        assert generation_manifest_path(4) == "manifest.gen-4.json"
        assert generation_meta_path(4) == "spatial.gen-4.meta"
        assert data_file_name(2, 4) == "data/g4_file_2.pbin"

    def test_negative_generation_rejected(self):
        with pytest.raises(DataFileError):
            data_file_name(0, -1)


# -- metadata v4 (per-generation records) --------------------------------------


class TestMetadataGenerations:
    def _rec(self, box_id, gen, lo=0.0, hi=1.0):
        return MetadataRecord(
            box_id=box_id,
            agg_rank=0,
            particle_count=10,
            bounds=Box([lo] * 3, [hi] * 3),
            gen=gen,
        )

    def test_gen_roundtrips_through_bytes(self):
        table = SpatialMetadata([self._rec(0, 0), self._rec(1, 2, 2.0, 3.0)])
        back = SpatialMetadata.from_bytes(table.to_bytes())
        assert [r.gen for r in back.records] == [0, 2]
        assert back.records[1].file_path == "data/g2_file_0.pbin"

    def test_all_gen0_table_serialises_as_v3(self):
        """Gen-aware code must not change the bytes of classic datasets:
        the table only upgrades to the v4 layout when a record actually
        carries a non-zero generation (version int sits after the magic)."""
        table = SpatialMetadata([self._rec(0, 0)])
        chained = SpatialMetadata([self._rec(0, 0), self._rec(1, 1, 2.0, 3.0)])
        assert table.to_bytes()[8:12] == (3).to_bytes(4, "little")
        assert chained.to_bytes()[8:12] == (4).to_bytes(4, "little")

    def test_same_gen_same_rank_collides(self):
        with pytest.raises(FormatError):
            SpatialMetadata([self._rec(0, 1), self._rec(1, 1, 2.0, 3.0)])

    def test_same_rank_across_gens_is_fine(self):
        table = SpatialMetadata([self._rec(0, 0), self._rec(1, 1, 0.0, 1.0)])
        # Overlapping bounds are also fine across generations.
        assert len(table.records) == 2


# -- append / MVCC -------------------------------------------------------------


class TestAppendMVCC:
    def test_append_commits_next_generation(self, chained):
        backend, _decomp = chained
        assert read_current(backend) == 1
        assert list_generations(backend) == [0, 1]
        ds = Dataset(backend)
        assert ds.generation == 1
        assert ds.manifest.generation == 1
        assert ds.manifest.parent == 0
        assert ds.manifest.total_particles == NPROCS * (120 + 60)

    def test_pinned_reader_is_isolated_from_append(self):
        backend, decomp, _ = write_dataset(
            nprocs=NPROCS, partition_factor=PF, particles_per_rank=100
        )
        pinned = Dataset(backend)  # resolves and memoizes gen 0
        before = query_mix(pinned)
        append_step(backend, decomp, seed=7)
        # Same facade object, no invalidation: still generation 0, every
        # query bit-identical.
        assert pinned.generation == 0
        assert mixes_equal(before, query_mix(pinned))
        # A fresh facade sees the new generation.
        fresh = Dataset(backend)
        assert fresh.generation == 1
        assert len(SpatialReader(fresh).read_full()) == NPROCS * 160

    def test_at_generation_time_travel(self, chained):
        backend, _decomp = chained
        ds = Dataset(backend)
        old = ds.at_generation(0)
        assert old.generation == 0
        assert ds.generation == 1
        assert len(SpatialReader(old).read_full()) == NPROCS * 120
        assert mixes_equal(query_mix(old), query_mix(backend, generation=0))

    def test_generations_listing(self, chained):
        backend, _decomp = chained
        assert Dataset(backend).generations() == [0, 1]

    def test_invalidate_cache_keeps_pin(self, chained):
        backend, _decomp = chained
        pinned = Dataset(backend, generation=0)
        assert pinned.generation == 0
        pinned.invalidate_cache()
        assert pinned.pinned_generation == 0
        assert pinned.generation == 0

    def test_append_rejects_mismatched_lod(self, chained):
        backend, decomp = chained
        writer = SpatialWriter(
            WriterConfig(partition_factor=PF, lod_base=99)
        )

        def main(comm):
            patch = decomp.patch_of_rank(comm.rank)
            batch = uniform_particles(
                patch, 10, dtype=MINIMAL_DTYPE, seed=1, rank=comm.rank
            )
            return writer.append(comm, batch, decomp, clone(backend))

        with pytest.raises(RankFailedError, match="LOD"):
            run_mpi(NPROCS, main)

    def test_overwrite_invalidates_whole_chain(self, chained):
        backend, _decomp = chained
        b = clone(backend)
        write_dataset(
            nprocs=NPROCS, partition_factor=PF, particles_per_rank=50,
            backend=b,
        )
        assert read_current(b) is None
        assert list_generations(b) == [0]
        assert scrub_dataset(Dataset(b)).ok


# -- the crash matrix ----------------------------------------------------------


def _mutation_ops_of_append(chained):
    """Count the mutating ops (writes + deletes) of one append."""
    backend, decomp = chained
    faulty = FaultInjectingBackend(clone(backend), FaultPlan())
    append_step(faulty, decomp, seed=999)
    assert faulty.faults_injected == 0
    return faulty.writes_completed + faulty.deletes_completed


class TestAppendCrashMatrix:
    def test_crash_at_every_op_is_snapshot_isolated(self, chained):
        """The tentpole property: crash the appender at op k for EVERY k.

        Throughout: a reader pinned to generation N replays the fixed
        query mix bit-identically.  Afterwards: the dataset resolves to
        exactly N or N+1, repair converges it, and the verification scrub
        exits clean.
        """
        backend, decomp = chained
        total = _mutation_ops_of_append(chained)
        assert 3 <= total <= 24, total
        base_mix = query_mix(backend, generation=1)
        base_len = NPROCS * (120 + 60)

        for k in range(total):
            inner = clone(backend)
            faulty = FaultInjectingBackend(
                inner, FaultPlan.crash_after_ops(k, seed=FAULT_SEED)
            )
            pinned = Dataset(inner, generation=1)
            with pytest.raises(RankFailedError):
                append_step(faulty, decomp, seed=2000 + k)
            assert faulty.fault_counts["crash"] >= 1, f"op {k}"

            # Snapshot isolation: the pinned reader never saw a thing.
            assert mixes_equal(base_mix, query_mix(pinned)), f"op {k}"

            # Atomicity: the interrupted dataset reads as exactly N or N+1.
            resolved = resolve_generation(inner)
            assert resolved.generation in (1, 2), f"op {k}: {resolved}"
            survivors = query_mix(inner)
            assert len(survivors[0]) in (base_len, base_len + NPROCS * 60)

            # Repair converges whatever the crash left, scrub exits 0.
            report = repair_dataset(Dataset(inner))
            assert report.exit_code == 0, (k, report.summary_lines())
            verify = scrub_dataset(Dataset(inner))
            assert verify.ok, (k, [i.code for i in verify.issues])
            assert resolve_generation(inner).generation in (1, 2)
            assert dataset_is_complete(inner), f"op {k}"
            # The pinned generation survived repair bit-identically too.
            assert mixes_equal(base_mix, query_mix(inner, generation=1))


# -- compaction ----------------------------------------------------------------


@pytest.fixture(scope="module")
def long_chain():
    """Gen 0 + three appends: 4 generations, one small file per commit."""
    backend, decomp, _ = write_dataset(
        nprocs=NPROCS, partition_factor=PF, particles_per_rank=80
    )
    for seed in (11, 12, 13):
        append_step(backend, decomp, seed=seed, n=40)
    return backend, decomp


class TestCompaction:
    def test_compact_preserves_queries_and_consolidates(self, long_chain):
        backend, _decomp = long_chain
        b = clone(backend)
        before = query_mix(b)
        files_before = len(Dataset(b).metadata)
        report = compact_dataset(Dataset(b), target_files=2, keep=2)
        assert report.source_generation == 3
        assert report.new_generation == 4
        assert report.files_before == files_before
        ds = Dataset(b)
        assert ds.generation == 4
        assert len(ds.metadata) == 2
        # Full-resolution queries are bit-identical (LOD prefixes are
        # re-drawn by design — consolidation reshuffles).
        after = query_mix(b)
        assert np.array_equal(before[0], after[0])
        assert np.array_equal(before[1], after[1])
        assert scrub_dataset(Dataset(b)).ok

    def test_gc_respects_keep_window_and_pinned_readers(self, long_chain):
        backend, _decomp = long_chain
        b = clone(backend)
        pinned = Dataset(b, generation=3)
        pre = query_mix(pinned)
        compact_dataset(Dataset(b), target_files=1, keep=2)
        assert list_generations(b) == [3, 4]
        # keep=2 retained the pinned generation: bit-identical reads.
        assert mixes_equal(pre, query_mix(pinned))
        assert scrub_dataset(Dataset(b)).ok
        # Tightening retention to 1 drops generation 3 and its files.
        gc = collect_generations(Dataset(b), keep=1)
        assert gc.dropped == [3]
        assert gc.files_deleted
        assert gc.bytes_reclaimed > 0
        assert list_generations(b) == [4]
        assert scrub_dataset(Dataset(b)).ok
        assert np.array_equal(pre[0], query_mix(b)[0])

    def test_dry_run_writes_nothing(self, long_chain):
        backend, _decomp = long_chain
        b = clone(backend)
        snapshot = dict(b._files)
        report = compact_dataset(Dataset(b), dry_run=True)
        assert report.dry_run
        assert report.new_generation == report.source_generation
        assert b._files == snapshot
        gc = collect_generations(Dataset(b), keep=1, dry_run=True)
        assert gc.dry_run and gc.dropped
        assert b._files == snapshot

    def test_gc_refuses_damaged_pointer(self, long_chain):
        backend, _decomp = long_chain
        b = clone(backend)
        b.write_file(CURRENT_PATH, b"mangled")
        with pytest.raises(FormatError, match="repair"):
            collect_generations(Dataset(b), keep=1)

    def test_crash_during_compaction_is_atomic(self, long_chain):
        """Crash the compactor at every mutating op: the dataset always
        resolves to the old or the new generation, and repair converges."""
        backend, _decomp = long_chain
        counter = FaultInjectingBackend(clone(backend), FaultPlan())
        compact_dataset(Dataset(counter), target_files=2, keep=2)
        total = counter.writes_completed + counter.deletes_completed
        assert total >= 4
        base_mix = query_mix(backend)

        for k in range(total):
            inner = clone(backend)
            faulty = FaultInjectingBackend(
                inner, FaultPlan.crash_after_ops(k, seed=FAULT_SEED)
            )
            with pytest.raises((RankFailedError, BackendError)):
                compact_dataset(
                    Dataset(faulty), target_files=2, keep=2
                )
            resolved = resolve_generation(inner)
            assert resolved.generation in (3, 4), f"op {k}: {resolved}"
            report = repair_dataset(Dataset(inner))
            assert report.exit_code == 0, (k, report.summary_lines())
            assert scrub_dataset(Dataset(inner)).ok, f"op {k}"
            # Whatever generation survived serves identical full-res reads.
            assert np.array_equal(base_mix[0], query_mix(inner)[0]), f"op {k}"


# -- scrub / repair of chain damage --------------------------------------------


class TestChainScrubRepair:
    def _codes(self, backend):
        return sorted({i.code for i in scrub_dataset(Dataset(backend)).issues})

    def test_current_corrupt(self, chained):
        backend, _decomp = chained
        b = clone(backend)
        b.write_file(CURRENT_PATH, b"not a pointer")
        assert "current-corrupt" in self._codes(b)
        assert not dataset_is_complete(b)
        report = repair_dataset(Dataset(b))
        assert report.exit_code == 0
        assert any(a.kind == ACTION_REWRITE_CURRENT for a in report.actions)
        assert read_current(b) == 1
        assert scrub_dataset(Dataset(b)).ok

    def test_current_missing_with_chain(self, chained):
        backend, _decomp = chained
        b = clone(backend)
        b.delete(CURRENT_PATH)
        assert "current-missing" in self._codes(b)
        assert not dataset_is_complete(b)
        repair_dataset(Dataset(b))
        assert read_current(b) == 1
        assert scrub_dataset(Dataset(b)).ok

    def test_current_dangling(self, chained):
        backend, _decomp = chained
        b = clone(backend)
        b.write_file(CURRENT_PATH, encode_current(9))
        assert "current-dangling" in self._codes(b)
        repair_dataset(Dataset(b))
        assert read_current(b) == 1
        assert scrub_dataset(Dataset(b)).ok

    def test_generation_ahead_dropped(self, chained):
        backend, decomp = chained
        b = clone(backend)
        append_step(b, decomp, seed=55)  # gen 2
        b.write_file(CURRENT_PATH, encode_current(1))  # ...never flipped
        assert "generation-ahead" in self._codes(b)
        report = repair_dataset(Dataset(b))
        assert report.exit_code == 0
        assert any(a.kind == ACTION_DROP_GENERATION for a in report.actions)
        assert list_generations(b) == [0, 1]
        assert scrub_dataset(Dataset(b)).ok
        # The ahead generation's unique files went to quarantine, intact.
        assert any(
            n.startswith("g2_") for n in b.listdir("quarantine/data")
        )

    def test_generation_residue_swept(self, chained):
        backend, _decomp = chained
        b = clone(backend)
        b.write_file("spatial.gen-5.meta", b"orphaned table bytes")
        assert "generation-residue" in self._codes(b)
        repair_dataset(Dataset(b))
        assert not b.exists("spatial.gen-5.meta")
        assert scrub_dataset(Dataset(b)).ok

    def test_damaged_target_generation_falls_back(self, chained):
        """CURRENT names gen 1 but gen 1's manifest is mangled: scrub
        reports it, repair rebuilds gen 1 from its recovery trailers."""
        backend, _decomp = chained
        b = clone(backend)
        raw = bytes(b.read_file("manifest.gen-1.json"))
        b.write_file("manifest.gen-1.json", raw[: len(raw) // 2])
        ds = Dataset(b)
        report = repair_dataset(ds)
        assert report.exit_code == 0
        assert scrub_dataset(Dataset(b)).ok
        assert Dataset(b).generation == 1
        assert mixes_equal(
            query_mix(backend, generation=1), query_mix(b, generation=1)
        )


# -- satellites ----------------------------------------------------------------


class TestQuarantineInventory:
    def test_scrub_reports_quarantine_contents(self, chained):
        backend, decomp = chained
        b = clone(backend)
        append_step(b, decomp, seed=66)  # gen 2
        b.write_file(CURRENT_PATH, encode_current(1))
        repair_dataset(Dataset(b))  # quarantines the ahead generation
        report = scrub_dataset(Dataset(b))
        assert report.ok  # leftover quarantine is inventory, not damage
        assert report.quarantined
        # Inventory paths are relative to quarantine/ and keep their layout.
        assert any(q.startswith("data/g2_") for q in report.quarantined)
        joined = "\n".join(report.summary_lines())
        assert "[quarantined]" in joined
        assert f"quarantined     : {len(report.quarantined)}" in joined

    def test_clean_dataset_reports_empty_inventory(self, chained):
        backend, _decomp = chained
        report = scrub_dataset(Dataset(backend))
        assert report.quarantined == []


class TestRepairInvalidatesFacade:
    def test_kept_open_facade_sees_repaired_state(self, chained):
        """Satellite 1: Dataset.repair() must invalidate the facade's
        caches itself — a kept-open facade queries repaired state without
        any manual invalidate_cache() call."""
        backend, _decomp = chained
        b = clone(backend)
        ds = Dataset(b)
        assert ds.generation == 1  # resolution memoized now
        before = query_mix(backend, generation=1)
        b.write_file(CURRENT_PATH, b"mangled pointer")
        report = ds.repair()
        assert report.exit_code == 0
        # No invalidate_cache() here — repair did it.
        assert ds.generation == 1
        assert mixes_equal(before, query_mix(ds))

    def test_repair_resets_pin_resolution_only(self, chained):
        backend, _decomp = chained
        b = clone(backend)
        pinned = Dataset(b, generation=0)
        b.write_file(CURRENT_PATH, b"mangled pointer")
        pinned.repair()
        assert pinned.pinned_generation == 0
        assert pinned.generation == 0
