"""WriterConfig validation tests."""

import pytest

from repro.core import WriterConfig
from repro.core.config import PAPER_PARTITION_FACTORS
from repro.errors import ConfigError


class TestWriterConfig:
    def test_defaults_match_paper(self):
        cfg = WriterConfig()
        assert cfg.lod_base == 32      # P = 32 in §5.4
        assert cfg.lod_scale == 2      # "S defaults to 2" (§3.4)
        assert cfg.lod_heuristic == "random"
        assert not cfg.adaptive

    def test_paper_factors_all_valid(self):
        for pf in PAPER_PARTITION_FACTORS:
            WriterConfig(partition_factor=pf)
        assert (1, 1, 1) in PAPER_PARTITION_FACTORS
        assert (4, 4, 4) in PAPER_PARTITION_FACTORS

    def test_partition_volume(self):
        assert WriterConfig(partition_factor=(2, 4, 4)).partition_volume == 32

    def test_frozen(self):
        cfg = WriterConfig()
        with pytest.raises(AttributeError):
            cfg.lod_base = 5

    @pytest.mark.parametrize(
        "bad", [(0, 1, 1), (1, 1), (1, 1, 1, 1), (-2, 2, 2)]
    )
    def test_bad_partition_factor(self, bad):
        with pytest.raises(ConfigError):
            WriterConfig(partition_factor=bad)

    def test_bad_lod_base(self):
        with pytest.raises(ConfigError):
            WriterConfig(lod_base=0)

    def test_bad_lod_scale(self):
        with pytest.raises(ConfigError):
            WriterConfig(lod_scale=1)

    def test_bad_heuristic(self):
        with pytest.raises(ConfigError):
            WriterConfig(lod_heuristic="sorted")

    def test_describe_is_jsonable(self):
        import json

        cfg = WriterConfig(partition_factor=(2, 2, 4), attr_index=("density",))
        doc = json.dumps(cfg.describe())
        assert "2" in doc and "density" in doc

    def test_attr_index_normalised_to_tuple(self):
        cfg = WriterConfig(attr_index=["a", "b"])
        assert cfg.attr_index == ("a", "b")
