"""Units for the fault-tolerance layer: RetryPolicy, FaultInjectingBackend,
and the POSIX backend's atomic-write / delete semantics."""

import os

import pytest

from repro.errors import BackendError, TransientBackendError
from repro.io import (
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    PosixBackend,
    RetryPolicy,
    RetryStats,
    VirtualBackend,
)

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


class TestRetryPolicy:
    def test_no_fault_single_attempt(self):
        stats = RetryStats()
        policy = RetryPolicy.immediate(max_attempts=3)
        assert policy.call(lambda: 42, stats=stats) == 42
        assert stats.attempts == 1
        assert stats.retries == 0

    def test_transient_fault_retried(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientBackendError("flaky")
            return "ok"

        stats = RetryStats()
        assert RetryPolicy.immediate(max_attempts=5).call(flaky, stats=stats) == "ok"
        assert len(calls) == 3
        assert stats.retries == 2
        assert stats.giveups == 0

    def test_gives_up_after_max_attempts(self):
        calls = []

        def hopeless():
            calls.append(1)
            raise TransientBackendError("never heals")

        stats = RetryStats()
        with pytest.raises(TransientBackendError):
            RetryPolicy.immediate(max_attempts=3).call(hopeless, stats=stats)
        assert len(calls) == 3
        assert stats.giveups == 1

    def test_permanent_fault_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise BackendError("permanent")

        with pytest.raises(BackendError):
            RetryPolicy.immediate(max_attempts=5).call(broken)
        assert len(calls) == 1

    def test_backoff_deterministic_and_growing(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.01, seed=7)
        delays = [policy.delay(a) for a in range(4)]
        assert delays == [policy.delay(a) for a in range(4)]  # deterministic
        assert all(d > 0 for d in delays)
        # Exponential growth dominates the bounded jitter.
        assert delays[3] > delays[0]

    def test_different_seeds_different_jitter(self):
        a = RetryPolicy(max_attempts=5, seed=1).delay(0)
        b = RetryPolicy(max_attempts=5, seed=2).delay(0)
        assert a != b

    def test_sleep_injectable(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.5, sleep=slept.append
        )

        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise TransientBackendError("once")
            return 1

        stats = RetryStats()
        policy.call(flaky, stats=stats)
        assert len(slept) == 1
        assert slept[0] == pytest.approx(stats.slept)

    def test_none_policy_never_retries(self):
        def flaky():
            raise TransientBackendError("x")

        with pytest.raises(TransientBackendError):
            RetryPolicy.none().call(flaky)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode")

    def test_rejects_bad_op(self):
        with pytest.raises(ValueError, match="op must be"):
            FaultSpec("transient", op="maybe")

    def test_glob_matching(self):
        spec = FaultSpec("transient", op="read", path_glob="data/*.pbin")
        assert spec.matches("read", "data/file_0.pbin")
        assert not spec.matches("read", "manifest.json")
        assert not spec.matches("write", "data/file_0.pbin")


class TestFaultInjectingBackend:
    def _faulty(self, plan):
        inner = VirtualBackend()
        return inner, FaultInjectingBackend(inner, plan)

    def test_transparent_without_faults(self):
        inner, faulty = self._faulty(FaultPlan())
        faulty.write_file("a.bin", b"hello")
        assert faulty.read_file("a.bin") == b"hello"
        assert inner.read_file("a.bin") == b"hello"
        assert faulty.faults_injected == 0

    def test_transient_read_heals(self):
        inner, faulty = self._faulty(
            FaultPlan.transient_reads(heal_after=2, seed=FAULT_SEED)
        )
        faulty.write_file("a.bin", b"data")
        for _ in range(2):
            with pytest.raises(TransientBackendError):
                faulty.read_file("a.bin")
        assert faulty.read_file("a.bin") == b"data"
        assert faulty.fault_counts["transient"] == 2

    def test_transient_is_per_path(self):
        _, faulty = self._faulty(
            FaultPlan.transient_reads(heal_after=1, seed=FAULT_SEED)
        )
        faulty.write_file("a.bin", b"a")
        faulty.write_file("b.bin", b"b")
        with pytest.raises(TransientBackendError):
            faulty.read_file("a.bin")
        with pytest.raises(TransientBackendError):
            faulty.read_file("b.bin")
        assert faulty.read_file("a.bin") == b"a"
        assert faulty.read_file("b.bin") == b"b"

    def test_permanent_fault_never_heals(self):
        _, faulty = self._faulty(
            FaultPlan((FaultSpec("permanent", op="read", path_glob="a.*"),))
        )
        faulty.write_file("a.bin", b"x")
        for _ in range(4):
            with pytest.raises(BackendError):
                faulty.read_file("a.bin")

    def test_bit_flip_changes_exactly_one_bit(self):
        payload = bytes(range(256))
        _, faulty = self._faulty(
            FaultPlan(
                (FaultSpec("bit_flip", op="read", max_triggers=1),),
                seed=FAULT_SEED,
            )
        )
        faulty.write_file("a.bin", payload)
        flipped = faulty.read_file("a.bin")
        diff = [
            (i, a ^ b) for i, (a, b) in enumerate(zip(payload, flipped)) if a != b
        ]
        assert len(diff) == 1
        assert bin(diff[0][1]).count("1") == 1
        # max_triggers=1: the next read is clean.
        assert faulty.read_file("a.bin") == payload

    def test_torn_write_stores_prefix(self):
        inner, faulty = self._faulty(
            FaultPlan(
                (FaultSpec("torn_write", path_glob="a.*", max_triggers=1),),
                seed=FAULT_SEED,
            )
        )
        faulty.write_file("a.bin", b"0123456789")
        stored = inner.read_file("a.bin")
        assert b"0123456789".startswith(stored)
        assert len(stored) < 10

    def test_crash_kills_all_subsequent_operations(self):
        inner, faulty = self._faulty(FaultPlan.crash_after(2, seed=FAULT_SEED))
        faulty.write_file("a.bin", b"a")
        faulty.write_file("b.bin", b"b")
        with pytest.raises(InjectedCrashError):
            faulty.write_file("c.bin", b"cccc")
        # The dead backend refuses everything, even cleanup.
        with pytest.raises(InjectedCrashError):
            faulty.read_file("a.bin")
        with pytest.raises(InjectedCrashError):
            faulty.exists("a.bin")
        with pytest.raises(InjectedCrashError):
            faulty.delete("a.bin", missing_ok=True)
        # The survivors are intact in the underlying storage.
        assert inner.read_file("a.bin") == b"a"
        assert inner.read_file("b.bin") == b"b"

    def test_fault_ops_recorded(self):
        _, faulty = self._faulty(
            FaultPlan.transient_reads(heal_after=1, seed=FAULT_SEED)
        )
        faulty.write_file("a.bin", b"x")
        with pytest.raises(TransientBackendError):
            faulty.read_file("a.bin")
        assert [op.kind for op in faulty.ops] == ["fault"]
        assert faulty.ops[0].path == "a.bin"


class TestPosixAtomicity:
    def test_write_leaves_no_tmp_files(self, tmp_path):
        backend = PosixBackend(tmp_path)
        backend.write_file("data/f.bin", b"payload")
        names = {p.name for p in (tmp_path / "data").iterdir()}
        assert names == {"f.bin"}

    def test_overwrite_is_replace(self, tmp_path):
        backend = PosixBackend(tmp_path)
        backend.write_file("f.bin", b"old contents")
        backend.write_file("f.bin", b"new")
        assert backend.read_file("f.bin") == b"new"

    def test_delete_missing_raises_by_default(self, tmp_path):
        backend = PosixBackend(tmp_path)
        with pytest.raises(BackendError):
            backend.delete("nope.bin")

    def test_delete_missing_ok(self, tmp_path):
        backend = PosixBackend(tmp_path)
        backend.delete("nope.bin", missing_ok=True)  # no error
        backend.write_file("f.bin", b"x")
        backend.delete("f.bin", missing_ok=True)
        assert not backend.exists("f.bin")


class TestVirtualDelete:
    def test_delete_missing_ok(self):
        backend = VirtualBackend()
        with pytest.raises(BackendError):
            backend.delete("nope.bin")
        backend.delete("nope.bin", missing_ok=True)
