"""Adaptive aggregation-grid tests (paper §6)."""

import pytest

from repro.core.adaptive import AdaptiveAggregationGrid, build_adaptive_grid
from repro.core.aggregation import AggregationGrid
from repro.domain import Box, PatchDecomposition
from repro.errors import ConfigError, DomainError
from repro.particles import ParticleBatch, occupancy_particles, uniform_particles
from repro.particles.dtype import MINIMAL_DTYPE

DOMAIN = Box([0, 0, 0], [1, 1, 1])


def counts_for_occupancy(decomp, occupancy, per_rank=100):
    return [
        len(
            occupancy_particles(
                DOMAIN, decomp.patch_of_rank(r), per_rank, occupancy, rank=r
            )
        )
        for r in range(decomp.nprocs)
    ]


class TestBuildAdaptiveGrid:
    @pytest.fixture
    def decomp(self):
        return PatchDecomposition(DOMAIN, (4, 2, 2))  # 16 ranks

    def test_full_occupancy_matches_static(self, decomp):
        counts = [100] * 16
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        static = AggregationGrid.aligned(decomp, (2, 2, 2))
        assert grid.num_partitions == static.num_partitions
        assert [grid.partition_box(p) for p in range(grid.num_partitions)] == [
            static.partition_box(p) for p in range(static.num_partitions)
        ]

    def test_half_occupancy_halves_partitions(self, decomp):
        counts = counts_for_occupancy(decomp, 0.5)
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        full = build_adaptive_grid(decomp, [100] * 16, (2, 2, 2))
        assert full.num_partitions == 2
        assert grid.num_partitions == 1  # populated x-range halved

    def test_no_aggregator_for_empty_space(self, decomp):
        """§6: 'ensures that no aggregator is assigned to empty simulation domain'."""
        counts = counts_for_occupancy(decomp, 0.25)
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        for pid in range(grid.num_partitions):
            senders = grid.senders_of_partition(pid)
            assert senders, f"partition {pid} has no populated senders"
            assert all(counts[r] > 0 for r in senders)

    def test_empty_ranks_do_not_participate(self, decomp):
        counts = counts_for_occupancy(decomp, 0.25)
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        participating = grid.participating_ranks()
        for rank, c in enumerate(counts):
            assert (rank in participating) == (c > 0)

    def test_aggregators_spread_over_full_rank_space(self, decomp):
        """§6: aggregators uniform across the *entire* rank space."""
        counts = counts_for_occupancy(decomp, 0.5)
        # (1, 2, 2) keeps two partitions along x inside the populated half.
        grid = build_adaptive_grid(decomp, counts, (1, 2, 2))
        assert grid.num_partitions == 2
        # Even with all particles in the first x-half, aggregator ranks span
        # the whole 0..15 range rather than clustering at the start.
        assert grid.aggregators == [0, 8]

    def test_partition_boxes_cover_populated_region_only(self, decomp):
        counts = counts_for_occupancy(decomp, 0.25)
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        union_hi_x = max(grid.partition_box(p).hi[0] for p in range(grid.num_partitions))
        assert union_hi_x <= 0.25 + 1e-12

    def test_partition_boxes_disjoint(self, decomp):
        counts = counts_for_occupancy(decomp, 0.5)
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        boxes = [grid.partition_box(p) for p in range(grid.num_partitions)]
        for i, a in enumerate(boxes):
            for b in boxes[i + 1 :]:
                assert not a.intersects(b)

    def test_single_populated_rank(self, decomp):
        counts = [0] * 16
        counts[5] = 100
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        assert grid.num_partitions == 1
        assert grid.senders_of_partition(0) == [5]

    def test_all_empty_raises(self, decomp):
        with pytest.raises(DomainError):
            build_adaptive_grid(decomp, [0] * 16, (2, 2, 2))

    def test_counts_length_checked(self, decomp):
        with pytest.raises(ConfigError):
            AdaptiveAggregationGrid(
                AggregationGrid.aligned(decomp, (2, 2, 2)), [1, 2, 3]
            )

    def test_routing_consistent(self, decomp):
        counts = counts_for_occupancy(decomp, 0.5)
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        for rank in range(16):
            batch = occupancy_particles(
                DOMAIN, decomp.patch_of_rank(rank), 100, 0.5, rank=rank
            )
            routed = grid.route_particles(rank, batch)
            if counts[rank] == 0:
                assert routed == []
            else:
                assert len(routed) == 1
                pid, sub = routed[0]
                assert len(sub) == counts[rank]
                assert grid.partition_box(pid).contains_points(sub.positions).all()

    def test_liar_rank_detected(self, decomp):
        """A rank that reported 0 during setup but shows up with particles."""
        counts = [100] * 16
        counts[3] = 0
        grid = build_adaptive_grid(decomp, counts, (2, 2, 2))
        batch = uniform_particles(decomp.patch_of_rank(3), 10, dtype=MINIMAL_DTYPE)
        with pytest.raises(DomainError, match="reported 0"):
            grid.route_particles(3, batch)
        assert grid.route_particles(3, ParticleBatch.empty(MINIMAL_DTYPE)) == []


class TestQuantileCuts:
    def test_balances_skewed_loads(self):
        decomp = PatchDecomposition(DOMAIN, (8, 1, 1))
        # Heavy head: rank 0 has most particles.
        counts = [800, 100, 100, 100, 100, 100, 100, 100]
        uniform = build_adaptive_grid(decomp, counts, (4, 1, 1))
        quantile = build_adaptive_grid(decomp, counts, (4, 1, 1), quantile_cuts=True)
        assert uniform.num_partitions == quantile.num_partitions

        def partition_loads(grid):
            return [
                sum(counts[r] for r in grid.senders_of_partition(p))
                for p in range(grid.num_partitions)
            ]

        u_loads = partition_loads(uniform)
        q_loads = partition_loads(quantile)
        assert max(q_loads) <= max(u_loads)

    def test_quantile_covers_everything(self):
        decomp = PatchDecomposition(DOMAIN, (8, 1, 1))
        counts = [10, 20, 30, 500, 500, 30, 20, 10]
        grid = build_adaptive_grid(decomp, counts, (2, 1, 1), quantile_cuts=True)
        covered = sorted(
            r for p in range(grid.num_partitions) for r in grid.senders_of_partition(p)
        )
        assert covered == list(range(8))
