"""Multi-tenant serving layer: batched planning parity, admission, quotas.

The load-bearing property is **bit-identical parity**: any query served
through the batch planner (``stage_plans`` + staged ``engine.run``) or the
threaded :class:`~repro.serve.QueryService` must return exactly the bytes
and delivery-equivalent :class:`~repro.query.engine.ReadReport` that a
serial :meth:`QueryEngine.run` produces — including under projection, LOD,
fault injection, degraded mode, and a warm cache.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import WriterConfig
from repro.dataset import Dataset
from repro.domain import Box
from repro.errors import AdmissionError, ServiceError
from repro.io.executor import SerialExecutor
from repro.io.faults import FaultInjectingBackend, FaultPlan, FaultSpec
from repro.io.retry import RetryPolicy
from repro.obs.names import SERVER_BATCHES, SERVER_QUERIES, SERVER_REJECTED
from repro.obs.recorder import Recorder
from repro.serve import ClientQuota, QueryService, execute_batch, merge_runs, stage_plans

from .conftest import write_dataset

BOXES = [
    Box([0.05, 0.05, 0.05], [0.55, 0.60, 0.50]),
    Box([0.30, 0.20, 0.10], [0.80, 0.70, 0.60]),
    Box([0.10, 0.40, 0.30], [0.60, 0.90, 0.85]),
    Box([0.25, 0.25, 0.25], [0.75, 0.75, 0.75]),
]


def _columnar_backend(**kw):
    backend, _, _ = write_dataset(
        nprocs=8,
        partition_factor=(1, 1, 2),
        particles_per_rank=800,
        config=WriterConfig(
            partition_factor=(1, 1, 2), layout="columnar", codec="shuffle-zlib"
        ),
        **kw,
    )
    return backend


def _row_backend(**kw):
    backend, _, _ = write_dataset(
        nprocs=8, partition_factor=(1, 1, 2), particles_per_rank=800, **kw
    )
    return backend


def _serial_results(backend, items, **ds_kw):
    """Reference: each (box, exact, kwargs) run alone on a fresh dataset."""
    engine = Dataset.open(backend, **ds_kw).engine()
    out = []
    for box, exact, kw in items:
        plan = engine.plan_box(box, **kw)
        out.append(engine.run(plan, exact))
    return out


class TestMergeRuns:
    def test_empty(self):
        assert merge_runs([]) == ()

    def test_disjoint_sorted(self):
        assert merge_runs([(10, 5), (0, 5)]) == ((0, 5), (10, 5))

    def test_adjacent_merge(self):
        assert merge_runs([(0, 5), (5, 5)]) == ((0, 10),)

    def test_overlap_and_containment(self):
        assert merge_runs([(0, 10), (2, 3), (8, 6), (20, 1)]) == ((0, 14), (20, 1))

    def test_zero_count_dropped(self):
        assert merge_runs([(3, 0), (1, 2)]) == ((1, 2),)


class TestBatchParity:
    """execute_batch == serial, bit for bit, across layouts and plan shapes."""

    @pytest.mark.parametrize("layout", ["row", "columnar"])
    def test_exact_box_parity(self, layout):
        backend = _columnar_backend() if layout == "columnar" else _row_backend()
        items = [(box, True, {}) for box in BOXES]
        serial = _serial_results(backend, items)

        engine = Dataset.open(backend).engine()
        plans = [(engine.plan_box(box), exact) for box, exact, _kw in items]
        results, staged = execute_batch(engine, plans)

        assert staged.hits > 0  # the stage actually served fetches
        for s, b in zip(serial, results):
            assert np.array_equal(s.batch.data, b.batch.data)
            assert s.report.equivalent(b.report)

    def test_mixed_projection_lod_inexact_parity(self):
        backend = _columnar_backend()
        items = [
            (BOXES[0], True, {}),
            (BOXES[0], True, {"attrs": ()}),  # positions only
            (BOXES[1], False, {}),  # candidate files, no chunk pruning
            (BOXES[1], True, {"max_level": 0}),  # LOD prefix: never staged
            (BOXES[2], True, {}),
        ]
        serial = _serial_results(backend, items)

        engine = Dataset.open(backend).engine()
        plans = [(engine.plan_box(box, **kw), exact) for box, exact, kw in items]
        results, staged = execute_batch(engine, plans)

        assert staged.misses > 0  # the LOD-prefix entries fell back
        for s, b in zip(serial, results):
            assert s.batch.data.dtype == b.batch.data.dtype
            assert np.array_equal(s.batch.data, b.batch.data)
            assert s.report.equivalent(b.report)

    def test_single_query_not_staged(self):
        backend = _columnar_backend()
        engine = Dataset.open(backend).engine()
        staged = stage_plans(engine, [(engine.plan_box(BOXES[0]), True)])
        assert len(staged) == 0  # nobody to share with

    def test_parity_under_transient_faults(self):
        """A transient read fault during staging is retried (or degrades to
        direct reads); either way results match the serial fault-free run."""
        clean = _columnar_backend()
        expected = _serial_results(clean, [(box, True, {}) for box in BOXES])

        faulty = FaultInjectingBackend(
            clean,
            FaultPlan(
                (FaultSpec("transient", op="read", path_glob="data/*.pbin", heal_after=1),)
            ),
        )
        engine = Dataset.open(
            faulty, retry=RetryPolicy(max_attempts=4, backoff_base=0.0)
        ).engine()
        plans = [(engine.plan_box(box), True) for box in BOXES]
        results, _staged = execute_batch(engine, plans)
        assert faulty.faults_injected > 0
        for s, b in zip(expected, results):
            assert np.array_equal(s.batch.data, b.batch.data)
            assert s.report.equivalent(b.report)

    def test_parity_with_warm_cache(self):
        """Staging through a CachingBackend stays bit-identical after the
        cache has been warmed by serial traffic."""
        backend = _columnar_backend()
        ds = Dataset.open(backend, cache_bytes=64 * 1024 * 1024)
        engine = ds.engine()
        items = [(engine.plan_box(box), True) for box in BOXES]
        serial = [engine.run(p, e) for p, e in items]  # warms the cache
        results, staged = execute_batch(engine, items)
        assert staged.hits > 0
        for s, b in zip(serial, results):
            assert np.array_equal(s.batch.data, b.batch.data)
            assert s.report.equivalent(b.report)

    def test_staged_fetch_miss_on_uncovered_run(self):
        """A run outside the staged union misses instead of mis-copying."""
        from repro.query.engine import StagedReads

        staged = StagedReads()
        buf = np.arange(10, dtype=np.float64).view([("x", np.float64)])
        staged.stage("data/file_0.pbin", ((0, 10),), buf)

        class Rec:
            file_path = "data/file_0.pbin"
            particle_count = 100

        dest = np.empty(5, dtype=buf.dtype)
        assert staged.fetch(Rec(), 5, ((50, 5),), dest) is None
        got = staged.fetch(Rec(), 5, ((2, 5),), dest)
        assert got is not None
        assert np.array_equal(dest["x"], np.arange(2.0, 7.0))


class TestQueryService:
    def test_service_parity_and_stats(self):
        backend = _columnar_backend()
        items = [(box, True, {}) for box in BOXES * 3]
        serial = _serial_results(backend, items)

        rec = Recorder(rank=-1)
        with QueryService(
            Dataset.open(backend, executor=SerialExecutor()),
            max_workers=2,
            max_batch=len(items),
            autostart=False,
            recorder=rec,
        ) as service:
            futures = [service.submit(box) for box, _e, _kw in items]
            service.start()
            results = [f.result(timeout=60) for f in futures]
            stats = service.stats()

        for s, b in zip(serial, results):
            assert np.array_equal(s.batch.data, b.batch.data)
            assert s.report.equivalent(b.report)
        assert stats["queries"] == len(items)
        assert stats["pending"] == 0
        assert stats["batches"] >= 1
        assert stats["mean_batch_width"] > 1.0
        assert stats["staged_files"] > 0
        assert stats["ops_saved"] > 0
        assert stats["p99_latency_s"] >= stats["p50_latency_s"] > 0.0
        assert rec.value(SERVER_QUERIES, ("anon",)) == len(items)
        assert rec.value(SERVER_BATCHES) == stats["batches"]

    def test_multi_dataset_routing_and_unknown_rejection(self):
        a, b = _columnar_backend(seed=7), _row_backend(seed=11)
        with QueryService(
            {"colA": Dataset.open(a), "rowB": Dataset.open(b)}
        ) as service:
            ra = service.query(BOXES[0], dataset="colA")
            rb = service.query(BOXES[0], dataset="rowB")
            assert ra.batch.data.size != 0 and rb.batch.data.size != 0
            expected_a = Dataset.open(a).engine()
            sa = expected_a.run(expected_a.plan_box(BOXES[0]), True)
            assert np.array_equal(sa.batch.data, ra.batch.data)
            with pytest.raises(AdmissionError) as exc:
                service.submit(BOXES[0], dataset="nope")
            assert exc.value.reason == "unknown-dataset"

    def test_admission_closed_and_queue_full(self):
        backend = _row_backend()
        service = QueryService(
            Dataset.open(backend), max_pending=2, autostart=False
        )
        service.submit(BOXES[0])
        service.submit(BOXES[1])
        with pytest.raises(AdmissionError) as exc:
            service.submit(BOXES[2])
        assert exc.value.reason == "queue-full"
        service.start()
        service.close()
        with pytest.raises(AdmissionError) as exc:
            service.submit(BOXES[0])
        assert exc.value.reason == "closed"
        assert service.recorder.value(SERVER_REJECTED, ("queue-full",)) == 1
        assert service.recorder.value(SERVER_REJECTED, ("closed",)) == 1

    def test_quota_inflight(self):
        backend = _row_backend()
        service = QueryService(
            Dataset.open(backend),
            quota=ClientQuota(max_inflight=1),
            autostart=False,
        )
        f = service.submit(BOXES[0], client="greedy")
        with pytest.raises(AdmissionError) as exc:
            service.submit(BOXES[1], client="greedy")
        assert exc.value.reason == "client-inflight"
        # A different client is unaffected.
        g = service.submit(BOXES[1], client="modest")
        service.start()
        assert f.result(timeout=60).batch.data is not None
        assert g.result(timeout=60).batch.data is not None
        # Inflight released on completion: admitted again.
        service.query(BOXES[2], client="greedy")
        service.close()

    def test_quota_bytes_budget(self):
        backend = _row_backend()
        with QueryService(
            Dataset.open(backend), quota=ClientQuota(max_bytes=1)
        ) as service:
            first = service.query(BOXES[0], client="capped")
            assert first.batch.data.nbytes > 1  # budget now exhausted
            with pytest.raises(AdmissionError) as exc:
                service.submit(BOXES[1], client="capped")
            assert exc.value.reason == "client-bytes"
            # Other clients keep their own budgets.
            service.query(BOXES[1], client="fresh")

    def test_poisoned_query_does_not_wedge_siblings(self):
        """A query that fails planning resolves its own future with the
        error; every sibling in the same batch still completes."""
        backend = _columnar_backend()
        engine = Dataset.open(backend).engine()
        good = engine.run(engine.plan_box(BOXES[0]), True)

        with QueryService(
            Dataset.open(backend), max_batch=8, autostart=False
        ) as service:
            bad = service.submit("not-a-box")
            siblings = [service.submit(BOXES[0]) for _ in range(3)]
            service.start()
            with pytest.raises(Exception):
                bad.result(timeout=60)
            for f in siblings:
                got = f.result(timeout=60)
                assert np.array_equal(got.batch.data, good.batch.data)

    def test_close_drains_admitted_queries(self):
        backend = _row_backend()
        service = QueryService(Dataset.open(backend), autostart=False)
        futures = [service.submit(box) for box in BOXES]
        service.start()
        service.close()
        for f in futures:
            assert f.result(timeout=1).batch.data is not None

    def test_close_without_start_fails_futures(self):
        backend = _row_backend()
        service = QueryService(Dataset.open(backend), autostart=False)
        f = service.submit(BOXES[0])
        service.close()
        with pytest.raises(ServiceError):
            f.result(timeout=1)

    def test_concurrent_submitters_hammer(self):
        """Many client threads, small windows, real batching — every query
        resolves and matches the serial reference for its box."""
        backend = _columnar_backend()
        engine = Dataset.open(backend).engine()
        expected = {
            i: engine.run(engine.plan_box(box), True) for i, box in enumerate(BOXES)
        }

        errors: list[BaseException] = []
        with QueryService(
            Dataset.open(backend, executor=SerialExecutor()),
            max_workers=4,
            batch_window=0.005,
            max_batch=8,
        ) as service:

            def client(tid: int) -> None:
                try:
                    for j in range(6):
                        i = (tid + j) % len(BOXES)
                        got = service.query(BOXES[i], client=f"t{tid}")
                        ref = expected[i]
                        assert np.array_equal(got.batch.data, ref.batch.data)
                        assert ref.report.equivalent(got.report)
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(t,)) for t in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stats = service.stats()

        assert not errors, errors
        assert stats["queries"] == 8 * 6
        assert stats["pending"] == 0


class TestServiceDegraded:
    def test_degraded_batch_parity_with_permanent_fault(self):
        """A permanently unreadable file is skipped identically whether the
        query runs alone or inside a batch (the stage fails for that file
        and every query degrades to its own direct read + skip)."""
        clean = _columnar_backend()
        target = "data/" + sorted(
            n for n in clean.listdir("data") if n.endswith(".pbin")
        )[0]
        faulty = FaultInjectingBackend(
            clean,
            FaultPlan((FaultSpec("permanent", op="read", path_glob=target),)),
        )
        ds_kw = dict(strict=False, retry=RetryPolicy(max_attempts=2, backoff_base=0.0))
        big = Box([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        items = [(big, True, {}), (big, True, {}), (BOXES[0], True, {})]
        serial = _serial_results(faulty, items, **ds_kw)
        assert any(s.report.skipped_boxes() for s in serial)

        engine = Dataset.open(faulty, **ds_kw).engine()
        plans = [(engine.plan_box(box), exact) for box, exact, _kw in items]
        results, _staged = execute_batch(engine, plans)
        for s, b in zip(serial, results):
            assert np.array_equal(s.batch.data, b.batch.data)
            assert sorted(s.report.skipped_boxes()) == sorted(b.report.skipped_boxes())


class TestStalePlan:
    def test_generation_pinned_plan_rejected_after_recompact(self):
        """A plan carries the generation it was made against; executing it
        after the dataset has moved on raises instead of mixing snapshots."""
        from repro.core.compact import compact_dataset
        from repro.errors import QueryError

        backend = _row_backend()
        ds = Dataset.open(backend)
        engine = ds.engine()
        plan = engine.plan_box(BOXES[0])
        engine.run(plan, True)  # fine while current

        compact_dataset(backend)
        ds.invalidate_cache()
        with pytest.raises(QueryError, match="generation"):
            engine.run(plan, True)
        # Replanning against the new generation works.
        fresh = engine.plan_box(BOXES[0])
        engine.run(fresh, True)


class TestDeadlineAdmission:
    """The "deadline" admission reason and queued-deadline shedding
    (satellites of the resilience layer; see repro.io.resilience)."""

    def test_unmeetable_deadline_rejected_at_admission(self):
        backend = _row_backend()
        with QueryService(
            Dataset.open(backend), batch_window=0.05, autostart=False
        ) as service:
            with pytest.raises(AdmissionError) as exc:
                service.submit(BOXES[0], deadline_s=0.01)
            assert exc.value.reason == "deadline"
            assert service.recorder.value(SERVER_REJECTED, ("deadline",)) == 1
            service.start()

    def test_deadline_expiring_in_queue_fails_that_future(self):
        from repro.errors import DeadlineExceededError
        from repro.obs.names import DEADLINE_SHED

        backend = _row_backend()
        service = QueryService(
            Dataset.open(backend), batch_window=0.0, autostart=False
        )
        doomed = service.submit(BOXES[0], deadline_s=0.05)
        healthy = service.submit(BOXES[1])
        time.sleep(0.1)  # the queued deadline lapses before dispatch
        service.start()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=60)
        assert healthy.result(timeout=60).batch.data is not None
        service.close()
        assert service.recorder.total(DEADLINE_SHED) == 1

    def test_close_drain_accounting(self):
        backend = _row_backend()
        service = QueryService(Dataset.open(backend), autostart=False)
        futures = [service.submit(box) for box in BOXES[:3]]
        service.start()
        service.close(drain_timeout=60.0)
        assert all(f.done() and f.exception() is None for f in futures)
        stats = service.stats()
        assert stats["drained"] == 3
        assert stats["cancelled"] == 0
