"""Tests for the shared utilities (units, timing, tables, rng)."""

import time

import numpy as np
import pytest

from repro.utils import (
    GB,
    MB,
    Table,
    TimeBreakdown,
    Timer,
    format_bytes,
    format_count,
    format_seconds,
    format_throughput,
    resolve_rng,
    spawn_rng,
)


class TestUnits:
    def test_format_bytes(self):
        assert format_bytes(500) == "500 B"
        assert format_bytes(1_500_000) == "1.50 MB"
        assert format_bytes(98 * GB) == "98.00 GB"
        assert format_bytes(2.131e12) == "2.13 TB"

    def test_format_throughput(self):
        assert format_throughput(98 * GB) == "98.00 GB/s"

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.033) == "33.00 ms"
        assert format_seconds(5e-6) == "5.0 us"

    def test_format_count(self):
        assert format_count(262144) == "256Ki" or format_count(262144) == "256K"
        assert format_count(512) == "512"
        assert format_count(32768) == "32Ki" or format_count(32768) == "32K"
        assert format_count(2_000_000) == "2M"
        assert format_count(3_000_000_000) == "3B"


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.009

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestTimeBreakdown:
    def test_add_and_fractions(self):
        bd = TimeBreakdown()
        bd.add("io", 3.0)
        bd.add("agg", 1.0)
        bd.add("io", 1.0)
        assert bd.total == 5.0
        assert bd.fraction("io") == pytest.approx(0.8)
        assert bd.fraction("missing") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("x", -1.0)

    def test_measure_context(self):
        bd = TimeBreakdown()
        with bd.measure("work"):
            time.sleep(0.005)
        assert bd.phases["work"] >= 0.004

    def test_merged(self):
        a = TimeBreakdown({"io": 1.0})
        b = TimeBreakdown({"io": 2.0, "agg": 1.0})
        m = a.merged(b)
        assert m.phases == {"io": 3.0, "agg": 1.0}
        assert a.phases == {"io": 1.0}  # originals untouched

    def test_empty_str(self):
        assert "empty" in str(TimeBreakdown())
        assert "%" in str(TimeBreakdown({"io": 1.0}))

    def test_zero_total_fraction(self):
        assert TimeBreakdown().fraction("io") == 0.0


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"])
        t.add_row(["alpha", 1.0])
        t.add_row(["b", 123456.0])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in out and "1.23e+05" in out or "123456" in out

    def test_title(self):
        t = Table(["x"], title="My Table")
        t.add_row([1])
        assert t.render().splitlines()[0] == "My Table"

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([0.123456])
        t.add_row([0.0001])
        t.add_row([0])
        body = t.render()
        assert "0.12" in body and "0.0001" in body


class TestRng:
    def test_resolve_passthrough(self):
        g = np.random.default_rng(0)
        assert resolve_rng(g) is g

    def test_resolve_seed_deterministic(self):
        assert resolve_rng(42).random() == resolve_rng(42).random()

    def test_resolve_none(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        a = spawn_rng(1, 0).random(10)
        b = spawn_rng(1, 1).random(10)
        assert not np.allclose(a, b)

    def test_spawn_deterministic(self):
        assert np.allclose(spawn_rng(7, 3, 4).random(5), spawn_rng(7, 3, 4).random(5))

    def test_spawn_none_is_random(self):
        assert isinstance(spawn_rng(None, 1), np.random.Generator)
