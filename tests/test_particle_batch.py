"""Unit tests for ParticleBatch."""

import numpy as np
import pytest

from repro.domain import Box
from repro.particles import ParticleBatch, concatenate, uniform_particles
from repro.particles.dtype import MINIMAL_DTYPE


@pytest.fixture
def batch():
    return uniform_particles(Box([0, 0, 0], [1, 1, 1]), 200, dtype=MINIMAL_DTYPE, seed=5)


class TestConstruction:
    def test_from_positions(self):
        pos = np.array([[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]])
        b = ParticleBatch.from_positions(pos, MINIMAL_DTYPE)
        assert len(b) == 2
        assert np.allclose(b.positions, pos)
        assert b.data["id"].tolist() == [0.0, 1.0]

    def test_from_positions_bad_shape(self):
        with pytest.raises(ValueError):
            ParticleBatch.from_positions(np.zeros((3, 2)), MINIMAL_DTYPE)

    def test_empty(self):
        b = ParticleBatch.empty(MINIMAL_DTYPE)
        assert len(b) == 0
        assert b.nbytes == 0

    def test_2d_data_rejected(self):
        with pytest.raises(ValueError):
            ParticleBatch(np.zeros((2, 2), dtype=MINIMAL_DTYPE))

    def test_unstructured_rejected(self):
        with pytest.raises(ValueError):
            ParticleBatch(np.zeros(4))


class TestProtocol:
    def test_len_nbytes(self, batch):
        assert len(batch) == 200
        assert batch.nbytes == 200 * 32

    def test_getitem_slice(self, batch):
        sub = batch[10:20]
        assert len(sub) == 10
        assert np.array_equal(sub.data, batch.data[10:20])

    def test_getitem_mask(self, batch):
        mask = batch.positions[:, 0] < 0.5
        assert len(batch[mask]) == int(mask.sum())

    def test_getitem_scalar_stays_batch(self, batch):
        sub = batch[0]
        assert isinstance(sub, ParticleBatch)
        assert len(sub) == 1

    def test_equality(self, batch):
        assert batch == batch.copy()
        assert batch != batch[0:10]

    def test_unhashable(self, batch):
        with pytest.raises(TypeError):
            hash(batch)


class TestGeometry:
    def test_bounding_box(self, batch):
        bb = batch.bounding_box()
        assert np.all(bb.lo >= 0) and np.all(bb.hi <= 1)
        assert bb.contains_points(batch.positions, closed=True).all()

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            ParticleBatch.empty(MINIMAL_DTYPE).bounding_box()

    def test_select_in_box(self, batch):
        box = Box([0, 0, 0], [0.5, 1, 1])
        sel = batch.select_in_box(box)
        assert (sel.positions[:, 0] < 0.5).all()
        outside = batch.mask_in_box(box)
        assert len(sel) == int(outside.sum())

    def test_bin_by_boxes_partitions_exactly(self, batch):
        boxes = [
            Box([0, 0, 0], [0.5, 1, 1]),
            Box([0.5, 0, 0], [1.0000001, 1.0000001, 1.0000001]),
        ]
        bins = batch.bin_by_boxes(boxes)
        assert sum(len(b) for b in bins) == len(batch)

    def test_bin_by_boxes_stray_raises(self, batch):
        with pytest.raises(ValueError, match="outside all"):
            batch.bin_by_boxes([Box([0, 0, 0], [0.5, 1, 1])])


class TestTransforms:
    def test_permuted_roundtrip(self, batch):
        rng = np.random.default_rng(0)
        order = rng.permutation(len(batch))
        permuted = batch.permuted(order)
        inverse = np.argsort(order)
        assert permuted.permuted(inverse) == batch

    def test_permuted_validates(self, batch):
        with pytest.raises(ValueError):
            batch.permuted(np.zeros(len(batch), dtype=int))

    def test_bytes_roundtrip(self, batch):
        blob = batch.tobytes()
        again = ParticleBatch.frombuffer(blob, batch.dtype)
        assert again == batch

    def test_copy_is_deep(self, batch):
        c = batch.copy()
        c.data["id"][0] = -1
        assert batch.data["id"][0] != -1


class TestConcatenate:
    def test_basic(self, batch):
        joined = concatenate([batch[0:50], batch[50:200]])
        assert joined == batch

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_mixed_dtypes_rejected(self, batch):
        from repro.particles.dtype import UINTAH_DTYPE

        other = ParticleBatch.empty(UINTAH_DTYPE)
        with pytest.raises(ValueError):
            concatenate([batch, other])
