"""LOD arithmetic and ordering tests (paper §3.4, §5.4)."""

import numpy as np
import pytest

from repro.core.lod import (
    cumulative_level_count,
    level_size,
    lod_prefix_counts,
    max_level,
    order_for_heuristic,
    paper_level_formula,
    random_lod_order,
    stratified_lod_order,
)
from repro.domain import Box, CellGrid
from repro.errors import ConfigError
from repro.particles import ParticleBatch, clustered_particles, uniform_particles
from repro.particles.dtype import MINIMAL_DTYPE


class TestLevelArithmetic:
    def test_paper_example_levels(self):
        # §3.4: 100 particles, n=1, P=32, S=2 -> levels of 32, 64, then 4.
        assert level_size(1, 0) == 32
        assert level_size(1, 1) == 64
        assert cumulative_level_count(1, 1) == 96
        assert max_level(100, 1) == 2

    def test_paper_big_example(self):
        # §5.4: 2^31 particles, n=64, P=32, S=2 -> l = 20.
        assert paper_level_formula(2**31, 64) == 20
        assert max_level(2**31, 64) == 20

    def test_level_size_formula(self):
        # x(n, l) = n * P * S^l
        assert level_size(4, 3, base=10, scale=3) == 4 * 10 * 27

    def test_cumulative_is_geometric_sum(self):
        total = sum(level_size(2, l, 8, 2) for l in range(5))
        assert cumulative_level_count(2, 4, 8, 2) == total

    def test_cumulative_negative_level(self):
        assert cumulative_level_count(1, -1) == 0

    def test_max_level_small_total(self):
        assert max_level(10, 4, base=32) == 0

    def test_max_level_is_minimal(self):
        lvl = max_level(10_000, 2, 16, 2)
        assert cumulative_level_count(2, lvl, 16, 2) >= 10_000
        assert cumulative_level_count(2, lvl - 1, 16, 2) < 10_000

    def test_scale_3(self):
        assert level_size(1, 2, base=5, scale=3) == 45
        assert cumulative_level_count(1, 2, 5, 3) == 5 + 15 + 45

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_n(self, bad):
        with pytest.raises(ConfigError):
            level_size(bad, 0)

    def test_invalid_level(self):
        with pytest.raises(ConfigError):
            level_size(1, -1)

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            cumulative_level_count(1, 0, scale=1)


class TestPrefixCounts:
    def test_sums_to_target(self):
        counts = [100, 200, 300, 400]
        prefixes = lod_prefix_counts(counts, n_readers=2, upto_level=2, base=16)
        # target = 2 * 16 * (1 + 2 + 4) = 224
        assert sum(prefixes) == 224
        assert all(0 <= p <= c for p, c in zip(prefixes, counts))

    def test_proportional_allocation(self):
        prefixes = lod_prefix_counts([100, 300], 1, 1, base=50)
        # target 150, split 1:3 -> ~37 / ~113
        assert sum(prefixes) == 150
        assert prefixes[0] < prefixes[1]

    def test_full_read_when_target_exceeds(self):
        counts = [50, 50]
        prefixes = lod_prefix_counts(counts, 4, 10, base=32)
        assert prefixes == [50, 50]

    def test_all_empty(self):
        assert lod_prefix_counts([0, 0], 1, 3) == [0, 0]

    def test_some_empty_files(self):
        prefixes = lod_prefix_counts([0, 100, 0], 1, 0, base=10)
        assert prefixes[0] == 0 and prefixes[2] == 0
        assert prefixes[1] == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            lod_prefix_counts([-1], 1, 0)

    def test_monotone_in_level(self):
        counts = [123, 456, 789]
        prev = [0, 0, 0]
        for level in range(12):
            cur = lod_prefix_counts(counts, 2, level, base=8)
            assert all(c >= p for c, p in zip(cur, prev))
            prev = cur
        assert prev == counts  # eventually everything


class TestRandomOrder:
    @pytest.fixture
    def batch(self):
        return uniform_particles(Box([0, 0, 0], [1, 1, 1]), 500, dtype=MINIMAL_DTYPE, seed=0)

    def test_is_permutation(self, batch):
        order = random_lod_order(batch, seed=1)
        assert sorted(order.tolist()) == list(range(500))

    def test_deterministic(self, batch):
        assert np.array_equal(random_lod_order(batch, 1, 3), random_lod_order(batch, 1, 3))

    def test_agg_rank_varies_stream(self, batch):
        a = random_lod_order(batch, 1, agg_rank=0)
        b = random_lod_order(batch, 1, agg_rank=1)
        assert not np.array_equal(a, b)

    def test_actually_shuffles(self, batch):
        order = random_lod_order(batch, seed=2)
        assert not np.array_equal(order, np.arange(500))

    def test_empty_batch(self):
        empty = ParticleBatch.empty(MINIMAL_DTYPE)
        assert len(random_lod_order(empty, 0)) == 0

    def test_prefix_is_spatially_representative(self, batch):
        """A shuffled prefix should cover the domain, not one corner."""
        order = random_lod_order(batch, seed=3)
        prefix = batch.permuted(order)[0:100]
        grid = CellGrid(Box([0, 0, 0], [1, 1, 1]), (2, 2, 2))
        cells = np.unique(grid.flat_cell_of_points(prefix.positions))
        assert len(cells) == 8  # every octant sampled


class TestStratifiedOrder:
    def test_is_permutation(self):
        b = clustered_particles(Box([0, 0, 0], [1, 1, 1]), 400, dtype=MINIMAL_DTYPE, seed=1)
        order = stratified_lod_order(b, seed=0)
        assert sorted(order.tolist()) == list(range(400))

    def test_empty_batch(self):
        assert len(stratified_lod_order(ParticleBatch.empty(MINIMAL_DTYPE))) == 0

    def test_better_coverage_than_random_on_clusters(self):
        """Stratified prefixes cover occupied cells faster than random ones."""
        domain = Box([0, 0, 0], [1, 1, 1])
        b = clustered_particles(domain, 2000, num_clusters=6, spread=0.02,
                                dtype=MINIMAL_DTYPE, seed=5)
        grid = CellGrid(domain, (8, 8, 8))
        occupied = set(np.unique(grid.flat_cell_of_points(b.positions)).tolist())

        def covered(order, k):
            prefix = b.permuted(order)[0:k]
            return len(set(np.unique(grid.flat_cell_of_points(prefix.positions)).tolist()))

        k = max(16, len(occupied) // 2)
        strat = covered(stratified_lod_order(b, seed=0, bounds=domain), k)
        rand = covered(random_lod_order(b, seed=0), k)
        assert strat >= rand

    def test_first_round_hits_every_occupied_cell(self):
        domain = Box([0, 0, 0], [1, 1, 1])
        b = clustered_particles(domain, 1000, dtype=MINIMAL_DTYPE, seed=2)
        grid_dims = (4, 4, 4)
        grid = CellGrid(domain, grid_dims)
        occupied = np.unique(grid.flat_cell_of_points(b.positions))
        order = stratified_lod_order(b, seed=0, grid_dims=grid_dims, bounds=domain)
        prefix = b.permuted(order)[0 : len(occupied)]
        seen = np.unique(grid.flat_cell_of_points(prefix.positions))
        assert np.array_equal(seen, occupied)

    def test_dispatch(self):
        b = uniform_particles(Box([0, 0, 0], [1, 1, 1]), 50, dtype=MINIMAL_DTYPE, seed=0)
        assert sorted(order_for_heuristic(b, "random", 0, 0).tolist()) == list(range(50))
        assert sorted(order_for_heuristic(b, "stratified", 0, 0).tolist()) == list(range(50))
        with pytest.raises(ConfigError):
            order_for_heuristic(b, "sorted", 0, 0)
