"""Failure injection: corrupted datasets, lying peers, broken backends.

The fault-plan seed is taken from ``REPRO_FAULT_SEED`` (default 0) so CI can
sweep several deterministic schedules without editing the tests.
"""

import os

import numpy as np
import pytest

from repro.core import SpatialReader, dataset_is_complete, scrub_dataset
from repro.dataset import Dataset
from repro.domain import Box
from repro.format.datafile import HEADER_BYTES
from repro.errors import (
    BackendError,
    DataChecksumError,
    DataFileError,
    FormatError,
    MetadataError,
    RankFailedError,
)
from repro.io import (
    FaultInjectingBackend,
    FaultPlan,
    RetryPolicy,
    SerialExecutor,
    ThreadedExecutor,
    VirtualBackend,
)

from tests.conftest import write_dataset

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


@pytest.fixture
def dataset():
    backend, _, _ = write_dataset(nprocs=8, partition_factor=(2, 2, 2))
    return backend


@pytest.fixture
def dataset8():
    """Eight data files (one per rank), for partial-damage scenarios."""
    backend, _, _ = write_dataset(nprocs=8, partition_factor=(1, 1, 1))
    return backend


class TestCorruptMetadata:
    def test_truncated_metadata(self, dataset):
        raw = dataset.read_file("spatial.meta")
        dataset.write_file("spatial.meta", raw[: len(raw) // 2])
        with pytest.raises(MetadataError):
            SpatialReader(dataset)

    def test_garbage_metadata(self, dataset):
        dataset.write_file("spatial.meta", b"\xff" * 64)
        with pytest.raises(MetadataError):
            SpatialReader(dataset)

    def test_deleted_metadata(self, dataset):
        dataset.delete("spatial.meta")
        with pytest.raises(MetadataError):
            SpatialReader(dataset)

    def test_empty_metadata_file(self, dataset):
        dataset.write_file("spatial.meta", b"")
        with pytest.raises(MetadataError):
            SpatialReader(dataset)


class TestCorruptManifest:
    def test_truncated_manifest(self, dataset):
        raw = dataset.read_file("manifest.json")
        dataset.write_file("manifest.json", raw[:20])
        with pytest.raises(FormatError):
            SpatialReader(dataset)

    def test_wrong_dtype_in_manifest(self, dataset):
        """A manifest whose dtype disagrees with the data files is caught at
        read time by the record-size check."""
        import json

        doc = json.loads(dataset.read_file("manifest.json"))
        doc["dtype_descr"] = [["position", "<f8", [3]], ["extra", "<f8"], ["id", "<f8"]]
        dataset.write_file("manifest.json", json.dumps(doc).encode())
        reader = SpatialReader(dataset)
        with pytest.raises(DataFileError, match="record size"):
            reader.read_full()


class TestCorruptDataFiles:
    def test_missing_data_file(self, dataset):
        reader = SpatialReader(dataset)
        victim = reader.metadata.records[0].file_path
        dataset.delete(victim)
        with pytest.raises(BackendError):
            reader.read_full()

    def test_truncated_data_file(self, dataset):
        # Cut into the particle records themselves — clipping only the v3
        # recovery trailer leaves the payload readable by design.
        reader = SpatialReader(dataset)
        victim = reader.metadata.records[0].file_path
        raw = dataset.read_file(victim)
        dataset.write_file(victim, raw[: HEADER_BYTES + 100])
        with pytest.raises(DataFileError):
            reader.read_full()

    def test_count_mismatch_header_vs_metadata(self, dataset):
        """Metadata says N particles; the data file header says otherwise.

        The LOD prefix reader trusts the metadata for planning, so the
        mismatch surfaces as a DataFileError when the slice runs past the
        header's count."""
        reader = SpatialReader(dataset)
        rec = reader.metadata.records[0]
        raw = bytearray(dataset.read_file(rec.file_path))
        import struct

        struct.pack_into("<Q", raw, 16, 5)  # header now claims 5 particles
        dataset.write_file(rec.file_path, bytes(raw))
        with pytest.raises(DataFileError):
            reader.read_full()


class TestFailingBackend:
    class ExplodingBackend(VirtualBackend):
        """Fails every read after the first N."""

        def __init__(self, allowed_reads: int):
            super().__init__()
            self.allowed = allowed_reads

        def read_range(self, path, offset, length, actor=-1):
            if path.startswith("data/"):
                if self.allowed <= 0:
                    raise BackendError("injected I/O failure")
                self.allowed -= 1
            return super().read_range(path, offset, length, actor)

        def read_file(self, path, actor=-1):
            if path.startswith("data/"):
                if self.allowed <= 0:
                    raise BackendError("injected I/O failure")
                self.allowed -= 1
            return super().read_file(path, actor)

        def readv(self, path, segments, actor=-1):
            if path.startswith("data/"):
                if self.allowed <= 0:
                    raise BackendError("injected I/O failure")
                self.allowed -= 1
            return super().readv(path, segments, actor)

    def test_mid_read_failure_propagates(self):
        backend, _, _ = write_dataset(nprocs=8, partition_factor=(1, 1, 1))
        exploding = self.ExplodingBackend(allowed_reads=3)
        # Copy dataset into the exploding backend.
        for name in ("manifest.json", "spatial.meta"):
            exploding.write_file(name, backend.read_file(name))
        for name in backend.listdir("data"):
            exploding.write_file(f"data/{name}", backend.read_file(f"data/{name}"))
        exploding.allowed = 3
        reader = SpatialReader(exploding)
        with pytest.raises(BackendError, match="injected"):
            reader.read_full()


class TestScrubDetection:
    """`scrub_dataset` must catch every corruption class of the acceptance
    criteria: truncation, garbage, deletion, count mismatch, bit flip."""

    def test_clean_dataset_scrubs_clean(self, dataset8):
        report = scrub_dataset(dataset8)
        assert report.ok
        assert report.complete
        assert report.files_checked == 8
        assert report.bytes_verified > 0

    def test_detects_truncation(self, dataset):
        victim = SpatialReader(dataset).metadata.records[0].file_path
        dataset.write_file(victim, dataset.read_file(victim)[: HEADER_BYTES + 100])
        report = scrub_dataset(dataset)
        assert not report.ok
        assert "data-truncated" in report.codes

    def test_detects_trailer_damage(self, dataset):
        # Clip only the recovery trailer: the payload stays readable, but
        # the scrubber flags the lost self-description.
        victim = SpatialReader(dataset).metadata.records[0].file_path
        dataset.write_file(victim, dataset.read_file(victim)[:-40])
        report = scrub_dataset(dataset)
        assert "trailer-damaged" in report.codes
        assert all(i.repairable for i in report.issues)

    def test_detects_garbage(self, dataset):
        victim = SpatialReader(dataset).metadata.records[0].file_path
        dataset.write_file(victim, b"\xde\xad\xbe\xef" * 32)
        assert "data-header" in scrub_dataset(dataset).codes

    def test_detects_deletion(self, dataset):
        victim = SpatialReader(dataset).metadata.records[0].file_path
        dataset.delete(victim)
        report = scrub_dataset(dataset)
        assert "data-missing" in report.codes
        assert not report.complete

    def test_detects_count_mismatch(self, dataset):
        import struct

        victim = SpatialReader(dataset).metadata.records[0].file_path
        raw = bytearray(dataset.read_file(victim))
        struct.pack_into("<Q", raw, 16, 5)
        dataset.write_file(victim, bytes(raw))
        assert "count-mismatch" in scrub_dataset(dataset).codes

    def test_detects_payload_bit_flip(self, dataset):
        victim = SpatialReader(dataset).metadata.records[0].file_path
        raw = bytearray(dataset.read_file(victim))
        raw[100] ^= 0x04  # one bit, somewhere in the records
        dataset.write_file(victim, bytes(raw))
        report = scrub_dataset(dataset)
        assert "data-checksum" in report.codes
        assert not any(i.repairable for i in report.issues)

    def test_detects_metadata_bit_flip(self, dataset):
        raw = bytearray(dataset.read_file("spatial.meta"))
        raw[40] ^= 0x10
        dataset.write_file("spatial.meta", bytes(raw))
        assert "metadata-checksum" in scrub_dataset(dataset).codes

    def test_detects_orphan_file(self, dataset):
        dataset.write_file("data/file_99.pbin", b"leftover")
        report = scrub_dataset(dataset)
        assert "data-orphan" in report.codes
        assert all(i.repairable for i in report.issues)

    def test_detects_manifest_metadata_disagreement(self, dataset):
        """The manifest pins spatial.meta by CRC — a table swapped in from
        elsewhere (internally valid, wrong dataset) is caught."""
        import json

        doc = json.loads(dataset.read_file("manifest.json"))
        doc["spatial_meta_crc32"] = (doc["spatial_meta_crc32"] + 1) % 2**32
        dataset.write_file("manifest.json", json.dumps(doc).encode())
        assert "metadata-crc-mismatch" in scrub_dataset(dataset).codes


class TestDegradedReads:
    def _corrupt_one(self, dataset):
        reader = SpatialReader(dataset)
        victim = reader.metadata.records[0]
        raw = bytearray(dataset.read_file(victim.file_path))
        raw[HEADER_BYTES + 4] ^= 0x01  # a byte inside the particle records
        dataset.write_file(victim.file_path, bytes(raw))
        return victim

    def test_strict_read_raises(self, dataset8):
        self._corrupt_one(dataset8)
        with pytest.raises(DataChecksumError):
            SpatialReader(dataset8).read_full()

    def test_degraded_read_skips_and_reports(self, dataset8):
        victim = self._corrupt_one(dataset8)
        reader = SpatialReader(dataset8, strict=False)
        clean_total = reader.total_particles
        batch = reader.read_full()
        report = reader.last_report
        assert not report.complete
        assert report.partitions_skipped == 1
        assert report.skipped[0].path == victim.file_path
        assert report.skipped[0].reason == "checksum"
        assert report.partitions_read == 7
        assert len(batch) == report.particles_read
        assert len(batch) == clean_total - victim.particle_count

    def test_degraded_read_of_missing_file(self, dataset8):
        reader = SpatialReader(dataset8, strict=False)
        victim = reader.metadata.records[3]
        dataset8.delete(victim.file_path)
        batch = reader.read_full()
        assert reader.last_report.skipped[0].reason == "missing"
        assert reader.last_report.skipped_boxes() == [victim.box_id]
        assert len(batch) == reader.total_particles - victim.particle_count

    def test_degraded_clean_read_is_complete(self, dataset8):
        reader = SpatialReader(dataset8, strict=False)
        batch = reader.read_full()
        assert reader.last_report.complete
        assert reader.last_report.partitions_read == 8
        assert len(batch) == reader.total_particles


class TestTransientFaultHealing:
    """Faults that heal within the retry budget must be invisible: results
    byte-identical to a fault-free run."""

    def test_write_through_transient_faults_is_byte_identical(self):
        clean, _, _ = write_dataset(nprocs=8, partition_factor=(2, 2, 2))
        inner = VirtualBackend()
        faulty = FaultInjectingBackend(
            inner, FaultPlan.transient_writes(heal_after=2, seed=FAULT_SEED)
        )
        _, _, results = write_dataset(
            nprocs=8,
            partition_factor=(2, 2, 2),
            backend=faulty,
            retry=RetryPolicy.immediate(max_attempts=5, seed=FAULT_SEED),
        )
        assert faulty.fault_counts["transient"] > 0
        assert sum(r.retries for r in results) == faulty.fault_counts["transient"]
        names = ["manifest.json", "spatial.meta"] + [
            f"data/{n}" for n in sorted(clean.listdir("data"))
        ]
        assert sorted(clean.listdir("data")) == sorted(inner.listdir("data"))
        for name in names:
            assert inner.read_file(name) == clean.read_file(name), name
        assert scrub_dataset(inner).ok

    def test_read_through_transient_faults_is_byte_identical(self, dataset):
        expected = SpatialReader(dataset).read_full()
        faulty = FaultInjectingBackend(
            dataset,
            FaultPlan.transient_reads(
                heal_after=2, path_glob="data/*", seed=FAULT_SEED
            ),
        )
        reader = SpatialReader(
            faulty, retry=RetryPolicy.immediate(max_attempts=5, seed=FAULT_SEED)
        )
        batch = reader.read_full()
        assert faulty.fault_counts["transient"] > 0
        assert reader.last_report.retries == faulty.fault_counts["transient"]
        assert batch.tobytes() == expected.tobytes()

    def test_retry_budget_too_small_gives_up(self, dataset):
        faulty = FaultInjectingBackend(
            dataset,
            FaultPlan.transient_reads(
                heal_after=5, path_glob="data/*", seed=FAULT_SEED
            ),
        )
        reader = SpatialReader(
            faulty, retry=RetryPolicy.immediate(max_attempts=2, seed=FAULT_SEED)
        )
        from repro.errors import TransientBackendError

        with pytest.raises(TransientBackendError):
            reader.read_full()

    def test_exhausted_retries_degrade_gracefully(self, dataset):
        """strict=False: unhealed transients skip the partition instead."""
        faulty = FaultInjectingBackend(
            dataset,
            FaultPlan.transient_reads(
                heal_after=50, path_glob="data/file_0.pbin", seed=FAULT_SEED
            ),
        )
        reader = SpatialReader(
            faulty,
            strict=False,
            retry=RetryPolicy.immediate(max_attempts=3, seed=FAULT_SEED),
        )
        batch = reader.read_full()
        assert reader.last_report.partitions_skipped == 1
        assert reader.last_report.skipped[0].reason == "transient-exhausted"
        assert len(batch) == reader.last_report.particles_read


class TestExecutorParity:
    """Serial and threaded execution must be observably identical.

    Bytes read, ReadReport, scrub verdicts, and the merged obs trace
    (event name/args sequences, counters, span names — timestamps aside)
    may not depend on which executor ran the per-file work, including
    under injected faults.  Runs under every REPRO_FAULT_SEED of the CI
    matrix.
    """

    EXECUTORS = [ThreadedExecutor(max_workers=2), ThreadedExecutor(max_workers=8)]

    @staticmethod
    def _trace(recorder):
        return (
            [(e.name, dict(e.args)) for e in recorder.events],
            recorder.counters(),
            [s.name for s in recorder.spans],
        )

    def _read(self, dataset, executor, strict, fault_plan=None):
        backend = dataset
        if fault_plan is not None:
            backend = FaultInjectingBackend(dataset, fault_plan)
        reader = Dataset(
            backend,
            strict=strict,
            retry=RetryPolicy.immediate(max_attempts=5, seed=FAULT_SEED),
            executor=executor,
        ).reader()
        batch = reader.read_full()
        return batch, reader.last_report, reader.recorder, backend

    @pytest.mark.parametrize("executor", EXECUTORS, ids=repr)
    def test_clean_strict_read_identical(self, dataset, executor):
        want, want_report, want_rec, _ = self._read(dataset, SerialExecutor(), True)
        got, got_report, got_rec, _ = self._read(dataset, executor, True)
        assert got.tobytes() == want.tobytes()
        assert got_report == want_report
        assert self._trace(got_rec) == self._trace(want_rec)

    @pytest.mark.parametrize("executor", EXECUTORS, ids=repr)
    def test_degraded_read_with_corruption_identical(self, dataset8, executor):
        """A corrupt partition is skipped identically under both executors."""
        victim = SpatialReader(dataset8).metadata.records[2]
        raw = bytearray(dataset8.read_file(victim.file_path))
        raw[HEADER_BYTES + 4] ^= 0x01  # a byte inside the particle records
        dataset8.write_file(victim.file_path, bytes(raw))

        want, want_report, want_rec, _ = self._read(dataset8, SerialExecutor(), False)
        got, got_report, got_rec, _ = self._read(dataset8, executor, False)
        assert want_report.skipped_boxes() == [victim.box_id]
        assert got.tobytes() == want.tobytes()
        assert got_report == want_report
        assert self._trace(got_rec) == self._trace(want_rec)

    @pytest.mark.parametrize("executor", EXECUTORS, ids=repr)
    def test_degraded_read_under_transient_faults_identical(
        self, dataset8, executor
    ):
        """Healing transients: retry counts and skip lists match exactly.

        Transient fault state is tracked per path, so each file sees the
        same deterministic fault schedule whatever thread reads it.
        """
        plan = FaultPlan.transient_reads(
            heal_after=2, path_glob="data/*", seed=FAULT_SEED
        )
        want, want_report, want_rec, faulty_s = self._read(
            dataset8, SerialExecutor(), False, fault_plan=plan
        )
        got, got_report, got_rec, faulty_t = self._read(
            dataset8, executor, False, fault_plan=plan
        )
        assert faulty_s.fault_counts["transient"] > 0
        assert faulty_t.fault_counts == faulty_s.fault_counts
        assert want_report.retries == faulty_s.fault_counts["transient"]
        assert got_report.retries == want_report.retries
        assert got.tobytes() == want.tobytes()
        assert got_report == want_report
        assert self._trace(got_rec) == self._trace(want_rec)

    @pytest.mark.parametrize("executor", EXECUTORS, ids=repr)
    def test_exhausted_transients_skip_identically(self, dataset8, executor):
        """Unhealed transients on one file degrade identically."""
        plan = FaultPlan.transient_reads(
            heal_after=50, path_glob="data/file_0.pbin", seed=FAULT_SEED
        )
        want, want_report, want_rec, _ = self._read(
            dataset8, SerialExecutor(), False, fault_plan=plan
        )
        got, got_report, got_rec, _ = self._read(
            dataset8, executor, False, fault_plan=plan
        )
        assert want_report.partitions_skipped == 1
        assert want_report.skipped[0].reason == "transient-exhausted"
        assert got.tobytes() == want.tobytes()
        assert got_report == want_report
        assert self._trace(got_rec) == self._trace(want_rec)

    @pytest.mark.parametrize("executor", EXECUTORS, ids=repr)
    def test_strict_read_raises_same_error_class(self, dataset8, executor):
        victim = SpatialReader(dataset8).metadata.records[0]
        raw = bytearray(dataset8.read_file(victim.file_path))
        raw[HEADER_BYTES + 4] ^= 0x01  # a byte inside the particle records
        dataset8.write_file(victim.file_path, bytes(raw))
        with pytest.raises(DataChecksumError):
            self._read(dataset8, SerialExecutor(), True)
        with pytest.raises(DataChecksumError):
            self._read(dataset8, executor, True)

    @pytest.mark.parametrize("executor", EXECUTORS, ids=repr)
    def test_scrub_verdicts_identical(self, dataset8, executor):
        """Scrub of a damaged dataset: same issues in the same order."""
        victim = SpatialReader(dataset8).metadata.records[1].file_path
        dataset8.write_file(victim, dataset8.read_file(victim)[:-40])
        dataset8.delete(SpatialReader(dataset8).metadata.records[5].file_path)

        want = Dataset(dataset8, executor=SerialExecutor()).scrub()
        got = Dataset(dataset8, executor=executor).scrub()
        assert got.issues == want.issues
        assert got.files_checked == want.files_checked
        assert got.bytes_verified == want.bytes_verified
        assert got.complete == want.complete


class TestCrashRecoveryMatrix:
    """Crash after K backend writes, for every K in the write schedule.

    nprocs=8 with partition_factor (1, 1, 1) produces exactly 10 backend
    writes: 8 data files, spatial.meta, manifest.json.  Whatever K, the
    interrupted dataset must read as incomplete, and rerunning the write
    over the same storage must converge to a scrub-clean dataset.
    """

    TOTAL_WRITES = 10

    def _run(self, backend, retry=None):
        return write_dataset(
            nprocs=8, partition_factor=(1, 1, 1), backend=backend, retry=retry
        )

    @pytest.mark.parametrize("k", range(TOTAL_WRITES))
    def test_crash_after_k_writes(self, k):
        inner = VirtualBackend()
        faulty = FaultInjectingBackend(
            inner, FaultPlan.crash_after(k, seed=FAULT_SEED)
        )
        with pytest.raises(RankFailedError):
            self._run(faulty)
        assert faulty.fault_counts["crash"] >= 1

        # The torn dataset is always detectable as incomplete...
        assert not dataset_is_complete(inner)
        with pytest.raises(FormatError):
            SpatialReader(inner)

        # ...and rerunning the write over the same storage converges.
        self._run(inner)
        assert dataset_is_complete(inner)
        report = scrub_dataset(inner)
        assert report.ok, [i.code for i in report.issues]
        assert len(SpatialReader(inner).read_full()) == 8 * 500

    def test_fault_free_run_makes_exactly_total_writes(self):
        inner = VirtualBackend()
        faulty = FaultInjectingBackend(inner, FaultPlan())
        self._run(faulty)
        assert faulty.writes_completed == self.TOTAL_WRITES
        assert faulty.faults_injected == 0


class TestWriterFailures:
    def test_rank_with_wrong_dtype_fails_cleanly(self):
        """One rank shipping a mismatched dtype aborts the write."""
        from repro.particles.dtype import MINIMAL_DTYPE, UINTAH_DTYPE
        from repro.particles import uniform_particles

        def batches(rank, patch):
            dtype = UINTAH_DTYPE if rank == 3 else MINIMAL_DTYPE
            return uniform_particles(patch, 10, dtype=dtype, rank=rank)

        with pytest.raises(RankFailedError):
            write_dataset(nprocs=8, batch_fn=batches)

    def test_particles_outside_patch_fail_aligned_write(self):
        """Aligned writes trust patch containment; a particle leaking out of
        the domain is caught by the partition-box invariantcheck on read, or
        by the grid when binning is involved."""
        from repro.particles import ParticleBatch
        from repro.particles.dtype import MINIMAL_DTYPE
        from repro.core import WriterConfig

        def batches(rank, patch):
            arr = np.zeros(4, dtype=MINIMAL_DTYPE)
            arr["position"] = 5.0  # way outside the unit domain
            return ParticleBatch(arr)

        cfg = WriterConfig(partition_factor=(2, 2, 2), align_to_patches=False)
        with pytest.raises(RankFailedError):
            write_dataset(nprocs=8, config=cfg, batch_fn=batches)
