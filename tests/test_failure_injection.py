"""Failure injection: corrupted datasets, lying peers, broken backends."""

import numpy as np
import pytest

from repro.core import SpatialReader
from repro.domain import Box
from repro.errors import (
    BackendError,
    DataFileError,
    FormatError,
    MetadataError,
    RankFailedError,
)
from repro.io import VirtualBackend

from tests.conftest import write_dataset


@pytest.fixture
def dataset():
    backend, _, _ = write_dataset(nprocs=8, partition_factor=(2, 2, 2))
    return backend


class TestCorruptMetadata:
    def test_truncated_metadata(self, dataset):
        raw = dataset.read_file("spatial.meta")
        dataset.write_file("spatial.meta", raw[: len(raw) // 2])
        with pytest.raises(MetadataError):
            SpatialReader(dataset)

    def test_garbage_metadata(self, dataset):
        dataset.write_file("spatial.meta", b"\xff" * 64)
        with pytest.raises(MetadataError):
            SpatialReader(dataset)

    def test_deleted_metadata(self, dataset):
        dataset.delete("spatial.meta")
        with pytest.raises(MetadataError):
            SpatialReader(dataset)

    def test_empty_metadata_file(self, dataset):
        dataset.write_file("spatial.meta", b"")
        with pytest.raises(MetadataError):
            SpatialReader(dataset)


class TestCorruptManifest:
    def test_truncated_manifest(self, dataset):
        raw = dataset.read_file("manifest.json")
        dataset.write_file("manifest.json", raw[:20])
        with pytest.raises(FormatError):
            SpatialReader(dataset)

    def test_wrong_dtype_in_manifest(self, dataset):
        """A manifest whose dtype disagrees with the data files is caught at
        read time by the record-size check."""
        import json

        doc = json.loads(dataset.read_file("manifest.json"))
        doc["dtype_descr"] = [["position", "<f8", [3]], ["extra", "<f8"], ["id", "<f8"]]
        dataset.write_file("manifest.json", json.dumps(doc).encode())
        reader = SpatialReader(dataset)
        with pytest.raises(DataFileError, match="record size"):
            reader.read_full()


class TestCorruptDataFiles:
    def test_missing_data_file(self, dataset):
        reader = SpatialReader(dataset)
        victim = reader.metadata.records[0].file_path
        dataset.delete(victim)
        with pytest.raises(BackendError):
            reader.read_full()

    def test_truncated_data_file(self, dataset):
        reader = SpatialReader(dataset)
        victim = reader.metadata.records[0].file_path
        raw = dataset.read_file(victim)
        dataset.write_file(victim, raw[:-40])
        with pytest.raises(DataFileError):
            reader.read_full()

    def test_count_mismatch_header_vs_metadata(self, dataset):
        """Metadata says N particles; the data file header says otherwise.

        The LOD prefix reader trusts the metadata for planning, so the
        mismatch surfaces as a DataFileError when the slice runs past the
        header's count."""
        reader = SpatialReader(dataset)
        rec = reader.metadata.records[0]
        raw = bytearray(dataset.read_file(rec.file_path))
        import struct

        struct.pack_into("<Q", raw, 16, 5)  # header now claims 5 particles
        dataset.write_file(rec.file_path, bytes(raw))
        with pytest.raises(DataFileError):
            reader.read_full()


class TestFailingBackend:
    class ExplodingBackend(VirtualBackend):
        """Fails every read after the first N."""

        def __init__(self, allowed_reads: int):
            super().__init__()
            self.allowed = allowed_reads

        def read_range(self, path, offset, length, actor=-1):
            if path.startswith("data/"):
                if self.allowed <= 0:
                    raise BackendError("injected I/O failure")
                self.allowed -= 1
            return super().read_range(path, offset, length, actor)

        def read_file(self, path, actor=-1):
            if path.startswith("data/"):
                if self.allowed <= 0:
                    raise BackendError("injected I/O failure")
                self.allowed -= 1
            return super().read_file(path, actor)

    def test_mid_read_failure_propagates(self):
        backend, _, _ = write_dataset(nprocs=8, partition_factor=(1, 1, 1))
        exploding = self.ExplodingBackend(allowed_reads=3)
        # Copy dataset into the exploding backend.
        for name in ("manifest.json", "spatial.meta"):
            exploding.write_file(name, backend.read_file(name))
        for name in backend.listdir("data"):
            exploding.write_file(f"data/{name}", backend.read_file(f"data/{name}"))
        exploding.allowed = 3
        reader = SpatialReader(exploding)
        with pytest.raises(BackendError, match="injected"):
            reader.read_full()


class TestWriterFailures:
    def test_rank_with_wrong_dtype_fails_cleanly(self):
        """One rank shipping a mismatched dtype aborts the write."""
        from repro.particles.dtype import MINIMAL_DTYPE, UINTAH_DTYPE
        from repro.particles import uniform_particles

        def batches(rank, patch):
            dtype = UINTAH_DTYPE if rank == 3 else MINIMAL_DTYPE
            return uniform_particles(patch, 10, dtype=dtype, rank=rank)

        with pytest.raises(RankFailedError):
            write_dataset(nprocs=8, batch_fn=batches)

    def test_particles_outside_patch_fail_aligned_write(self):
        """Aligned writes trust patch containment; a particle leaking out of
        the domain is caught by the partition-box invariantcheck on read, or
        by the grid when binning is involved."""
        from repro.particles import ParticleBatch
        from repro.particles.dtype import MINIMAL_DTYPE
        from repro.core import WriterConfig

        def batches(rank, patch):
            arr = np.zeros(4, dtype=MINIMAL_DTYPE)
            arr["position"] = 5.0  # way outside the unit domain
            return ParticleBatch(arr)

        cfg = WriterConfig(partition_factor=(2, 2, 2), align_to_patches=False)
        with pytest.raises(RankFailedError):
            write_dataset(nprocs=8, config=cfg, batch_fn=batches)
